//! Real end-to-end tuning: ASHA drives actual neural-network training (the
//! `asha-ml` MLP on the two-spirals task) across a pool of worker threads.
//! Resource = training epochs; checkpoints are the trainer itself, so rung
//! promotions resume instead of retraining — the Section 3.2 property that
//! lets ASHA return an answer in roughly `time(R)`.
//!
//! Run with: `cargo run --release --example real_parallel_tuning`

use asha::core::{Asha, AshaConfig};
use asha::exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
use asha::ml::{Activation, Dataset, Mlp, TrainConfig, Trainer};
use asha::space::{Scale, SearchSpace};

fn main() {
    let space = SearchSpace::builder()
        .continuous("learning_rate", 1e-3, 1.0, Scale::Log)
        .continuous("weight_decay", 1e-6, 1e-2, Scale::Log)
        .ordinal("hidden", &[4.0, 8.0, 16.0, 32.0])
        .ordinal("batch_size", &[16.0, 32.0, 64.0])
        .categorical("activation", &["relu", "tanh"])
        .build()
        .expect("valid space");

    let data = Dataset::two_spirals(300, 0.08, 42).split(0.6, 0.2);
    let space_for_obj = space.clone();
    let train = data.train.clone();
    let val = data.validation.clone();

    // The objective trains an MLP to the requested cumulative epoch count,
    // resuming from the checkpointed trainer when one exists.
    let objective = FnObjective::new(
        move |config: &asha::space::Config, resource: f64, ckpt: Option<Trainer>| {
            let mut trainer = ckpt.unwrap_or_else(|| {
                let hidden = space_for_obj
                    .spec_at(space_for_obj.index_of("hidden").expect("exists"))
                    .numeric(&config.values()[2]) as usize;
                let act = match config
                    .index("activation", &space_for_obj)
                    .expect("categorical")
                {
                    0 => Activation::Relu,
                    _ => Activation::Tanh,
                };
                let batch = space_for_obj
                    .spec_at(space_for_obj.index_of("batch_size").expect("exists"))
                    .numeric(&config.values()[3]) as usize;
                Trainer::new(
                    Mlp::new(2, &[hidden, hidden], 2, act, 0.5, 7),
                    TrainConfig {
                        learning_rate: config
                            .float("learning_rate", &space_for_obj)
                            .expect("float"),
                        weight_decay: config.float("weight_decay", &space_for_obj).expect("float"),
                        batch_size: batch,
                        ..TrainConfig::default()
                    },
                )
            });
            let target_epochs = resource.round() as usize;
            if target_epochs > trainer.epochs_done() {
                trainer.train_epochs(&train, target_epochs - trainer.epochs_done());
            }
            // Validation loss drives the search; report error rate as the "test"
            // metric so the trace is human-readable.
            let (val_loss, val_acc) = trainer.evaluate(&val);
            (Evaluation::with_test(val_loss, 1.0 - val_acc), trainer)
        },
    );

    // ASHA: eta = 3, r = 3 epochs, R = 81 epochs, 80 configurations.
    let asha = Asha::new(
        space.clone(),
        AshaConfig::new(3.0, 81.0, 3.0).with_max_trials(80),
    );
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    println!("tuning a real MLP on two-spirals with ASHA across {workers} threads...");
    let result = ParallelTuner::new(ExecConfig::new(workers)).run(asha, &objective, 11);

    println!(
        "completed {} training jobs in {:.2?} ({} finished; best val loss {:.4})",
        result.jobs_completed,
        result.elapsed,
        if result.scheduler_finished {
            "scheduler"
        } else {
            "cap"
        },
        result.best.map(|(_, l)| l).unwrap_or(f64::NAN),
    );
    let curve = result.trace.incumbent_curve();
    println!("incumbent validation error-rate trajectory:");
    let points = curve.points();
    for &(t, err) in points.iter().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!("  t = {t:6.3}s  incumbent val error = {err:.3}");
    }
    let (best_trial, best_loss) = result.best.expect("at least one job");
    println!(
        "best trial: {best_trial:?} with validation loss {best_loss:.4} and error {:.3}",
        points.last().map(|&(_, e)| e).unwrap_or(f64::NAN)
    );
}

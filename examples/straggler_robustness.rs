//! Why asynchrony matters: ASHA vs synchronous SHA under stragglers and
//! dropped jobs (a compact version of the paper's Appendix A.1 study).
//!
//! Run with: `cargo run --release --example straggler_robustness`

use asha::core::{Asha, AshaConfig, ShaConfig, SyncSha};
use asha::sim::{ClusterSim, ResumePolicy, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::{BenchmarkModel, CurveBenchmark};
use rand::SeedableRng;

const R: f64 = 256.0;

fn benchmark() -> CurveBenchmark {
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    // Cost = 1 time unit per resource unit, the Appendix A.1 workload.
    CurveBenchmark::builder("unit-cost", space, R, 7)
        .cost(R, &[0.0])
        .build()
}

fn main() {
    let bench = benchmark();
    println!("configs trained to R within 2000 time units (25 workers, mean of 5 sims)\n");
    println!(
        "{:>14} {:>12} {:>10} {:>10}",
        "straggler std", "drop prob", "ASHA", "SHA"
    );
    for (std, p) in [
        (0.0, 0.0),
        (0.5, 0.0),
        (1.5, 0.0),
        (0.0, 2e-3),
        (0.5, 2e-3),
        (1.5, 4e-3),
    ] {
        let mut asha_total = 0usize;
        let mut sha_total = 0usize;
        for seed in 0..5 {
            let sim = ClusterSim::new(
                SimConfig::new(25, 2000.0)
                    .with_stragglers(std)
                    .with_drops(p)
                    .with_resume(ResumePolicy::FromScratch),
            );
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, R, 4.0));
            asha_total += sim
                .run(asha, &bench, &mut rng)
                .trace
                .configs_trained_to(R, 2000.0);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let sha = SyncSha::new(
                bench.space().clone(),
                ShaConfig::new(256, 1.0, R, 4.0).growing(),
            );
            sha_total += sim
                .run(sha, &bench, &mut rng)
                .trace
                .configs_trained_to(R, 2000.0);
        }
        println!(
            "{:>14.2} {:>12.4} {:>10.1} {:>10.1}",
            std,
            p,
            asha_total as f64 / 5.0,
            sha_total as f64 / 5.0
        );
    }
    println!("\nSynchronous SHA stalls behind the slowest job in every rung; ASHA promotes");
    println!("whenever possible, so stragglers and drops cost it far less throughput.");
}

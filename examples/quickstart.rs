//! Quickstart: tune a surrogate CIFAR-10 benchmark with ASHA on a simulated
//! 25-worker cluster, and inspect the incumbent trajectory.
//!
//! Run with: `cargo run --release --example quickstart`

use asha::core::{Asha, AshaConfig};
use asha::sim::{ClusterSim, SimConfig};
use asha::surrogate::{presets, BenchmarkModel};
use rand::SeedableRng;

fn main() {
    // 1. Pick a benchmark. Surrogates stand in for real training; swap in
    //    your own `BenchmarkModel` (or use `asha::exec` for real training).
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);

    // 2. Configure ASHA exactly as the paper does for this task:
    //    eta = 4, r = 1, R = 256, s = 0.
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));

    // 3. Simulate 25 workers for 150 minutes.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(asha, &bench, &mut rng);

    println!(
        "completed {} jobs across {} distinct configurations in 150 simulated minutes",
        result.jobs_completed,
        result.trace.distinct_trials()
    );

    println!("\nincumbent trajectory (validation-selected, test error reported):");
    let curve = result.trace.incumbent_curve();
    for &(time, test_error) in curve
        .points()
        .iter()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  t = {time:7.2} min   test error = {test_error:.4}");
    }

    let (best_val, best_test) = result.trace.final_best().expect("jobs completed");
    println!("\nbest: validation {best_val:.4}, test {best_test:.4}");
    println!(
        "time to test error <= 0.21: {:?} minutes (the paper's 'about the time to train a single model')",
        curve.time_to_reach(0.21)
    );
}

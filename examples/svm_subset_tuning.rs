//! The real analogue of the paper's SVM benchmark (Appendix A.2): tune an
//! RBF kernel classifier where the **resource is the number of training
//! points** — small subsets are genuinely cheap (kernel solves are
//! superlinear in n), so ASHA's early stopping buys real wall-clock time.
//!
//! Run with: `cargo run --release --example svm_subset_tuning`

use asha::core::{Asha, AshaConfig, RandomSearch, Scheduler};
use asha::exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
use asha::ml::{Dataset, KernelRidge, KernelRidgeConfig};
use asha::space::{Config, Scale, SearchSpace};

fn main() {
    let space = SearchSpace::builder()
        .continuous("lambda", 1e-6, 1.0, Scale::Log)
        .continuous("gamma", 1e-3, 1e3, Scale::Log)
        .build()
        .expect("valid space");

    // Two noisy moons; 1024 training points, so R = 1024 and r = 16.
    let mut data = Dataset::two_moons(640, 0.18, 3);
    let stats = data.standardize();
    let split = data.split(0.8, 0.1);
    let _ = stats;

    let space_obj = space.clone();
    let train = split.train.clone();
    let val = split.validation.clone();
    let objective = FnObjective::new(move |config: &Config, resource: f64, _ckpt: Option<()>| {
        let cfg = KernelRidgeConfig {
            lambda: config.float("lambda", &space_obj).expect("float"),
            gamma: config.float("gamma", &space_obj).expect("float"),
        };
        let subset = resource.round() as usize;
        let eval = match KernelRidge::fit(&train, subset, cfg) {
            Ok(model) => Evaluation::of(model.error_rate(&val)),
            // Numerically singular kernels count as failed trials.
            Err(_) => Evaluation::of(1.0),
        };
        (eval, ())
    });

    let max_r = split.train.len() as f64;
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));

    // ASHA with eta = 4: subsets of 16, 64, 256, 1024 points.
    let run = |name: &str, scheduler: Box<dyn Scheduler + Send>, cap: usize| {
        let result = ParallelTuner::new(ExecConfig::new(workers).with_max_jobs(cap))
            .run(scheduler, &objective, 5);
        let (_, best) = result.best.expect("jobs ran");
        println!(
            "{name:<8} {:>5} fits in {:>8.3?}  -> best validation error {best:.4}",
            result.jobs_completed, result.elapsed
        );
        best
    };

    println!("tuning an RBF kernel classifier on two-moons ({workers} threads, resource = subset size)\n");
    let asha_best = run(
        "ASHA",
        Box::new(Asha::new(
            space.clone(),
            AshaConfig::new(max_r / 64.0, max_r, 4.0).with_max_trials(64),
        )),
        500,
    );
    // Random search gets the same number of *full-size* fits as ASHA had
    // full-budget slots — the classic comparison.
    let random_best = run(
        "Random",
        Box::new(RandomSearch::new(space.clone(), max_r)),
        16,
    );
    println!(
        "\nASHA explored 64 configurations for roughly the cost of 16 full fits \
         (best {asha_best:.4} vs random's {random_best:.4})."
    );
}

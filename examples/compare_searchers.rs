//! Race every searcher in the workspace — ASHA, synchronous SHA, Hyperband
//! (sync and async), BOHB, PBT, Vizier-like GP-EI, and random search — on
//! the small-CNN architecture benchmark with 16 simulated workers.
//!
//! Run with: `cargo run --release --example compare_searchers`

use asha::baselines::{bohb, Pbt, PbtConfig, Vizier, VizierConfig};
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, Hyperband, HyperbandConfig, RandomSearch, Scheduler,
    ShaConfig, SyncSha,
};
use asha::sim::{ClusterSim, SimConfig};
use asha::surrogate::{presets, BenchmarkModel};
use rand::SeedableRng;

const R: f64 = 256.0;
const ETA: f64 = 4.0;
const WORKERS: usize = 16;
const HORIZON: f64 = 200.0; // minutes

fn main() {
    let bench = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED);
    let space = bench.space().clone();

    let searchers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Asha::new(space.clone(), AshaConfig::new(1.0, R, ETA))),
        Box::new(SyncSha::new(
            space.clone(),
            ShaConfig::new(256, 1.0, R, ETA).growing(),
        )),
        Box::new(Hyperband::new(
            space.clone(),
            HyperbandConfig::new(1.0, R, ETA),
        )),
        Box::new(AsyncHyperband::new(
            space.clone(),
            HyperbandConfig::new(1.0, R, ETA),
        )),
        Box::new(bohb(
            space.clone(),
            ShaConfig::new(256, 1.0, R, ETA).growing(),
        )),
        Box::new(Pbt::new(
            space.clone(),
            PbtConfig::new(16, R, R / 30.0)
                .with_frozen(&["batch_size", "n_layers", "n_filters"])
                .spawning(),
        )),
        Box::new(Vizier::new(space.clone(), VizierConfig::new(R))),
        Box::new(RandomSearch::new(space.clone(), R)),
    ];

    println!(
        "racing {} searchers on `{}` ({WORKERS} workers, {HORIZON} simulated minutes)\n",
        searchers.len(),
        bench.name()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12}",
        "searcher", "jobs", "configs", "best test", "t(<=0.23)"
    );
    for searcher in searchers {
        let name = searcher.name().to_owned();
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        let result =
            ClusterSim::new(SimConfig::new(WORKERS, HORIZON)).run(searcher, &bench, &mut rng);
        let curve = result.trace.incumbent_curve();
        let best = curve.last_value().unwrap_or(f64::NAN);
        let reach = curve
            .time_to_reach(0.23)
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "—".into());
        println!(
            "{:<22} {:>10} {:>10} {:>12.4} {:>12}",
            name,
            result.jobs_completed,
            result.trace.distinct_trials(),
            best,
            reach
        );
    }
    println!("\nLower test error and earlier t(<=0.23) are better; note how the");
    println!("asynchronous methods evaluate far more configurations in the same budget.");
}

//! Should you early-stop aggressively on *your* workload? This example runs
//! ASHA on two surrogate benchmarks and uses `asha::metrics::analysis` to
//! quantify how informative partial training is: rung-to-rung rank
//! correlations and promotion agreement.
//!
//! Run with: `cargo run --release --example early_stopping_diagnostics`

use asha::metrics::analysis;
use asha::surrogate::{presets, BenchmarkModel};
use asha::tune::{Searcher, SimTune};

fn diagnose(bench: &dyn BenchmarkModel, horizon: f64) {
    let outcome = SimTune::new(bench)
        .searcher(Searcher::default_asha(bench.max_resource()))
        .workers(25)
        .horizon(horizon)
        .seed(17)
        .run();
    println!(
        "\n{} — {} jobs, {} configs",
        bench.name(),
        outcome.jobs_completed,
        outcome.configs_evaluated
    );
    println!(
        "{:>6} {:>8} {:>12} {:>22}",
        "rung", "pairs", "spearman", "promotion agreement"
    );
    for (rung, pairs, rho) in analysis::rung_rank_correlation(&outcome.trace, 10) {
        let agree = analysis::promotion_agreement(&outcome.trace, rung, 4.0)
            .map(|a| format!("{:.0}%", a * 100.0))
            .unwrap_or_else(|| "—".into());
        println!("{rung:>6} {pairs:>8} {rho:>12.3} {agree:>22}");
    }
}

fn main() {
    println!("Rank structure of partial vs deeper training under ASHA (eta = 4):");
    println!("high spearman / agreement => aggressive early stopping (s = 0) is safe.");
    diagnose(
        &presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED),
        150.0,
    );
    diagnose(&presets::ptb_lstm(presets::DEFAULT_SURFACE_SEED), 4.0);
    println!("\nNote the caveat: these are *conditional* correlations among survivors —");
    println!("the rungs only contain configurations ASHA already considered promising.");
}

//! Section 3.3's infinite-horizon ASHA: no maximum resource — the
//! per-configuration budget grows naturally as configurations keep being
//! promoted up an unbounded ladder, with no doubling-trick reruns.
//!
//! Run with: `cargo run --release --example infinite_horizon`

use asha::core::{Asha, AshaConfig, Decision, Observation, Scheduler};
use asha::space::{Scale, SearchSpace};
use rand::SeedableRng;

fn main() {
    let space = SearchSpace::builder()
        .continuous("lr", 1e-4, 1.0, Scale::Log)
        .build()
        .expect("valid space");

    // Infinite horizon: the `max_resource` in the config is ignored.
    let mut asha = Asha::new(
        space.clone(),
        AshaConfig::new(1.0, f64::INFINITY, 3.0).infinite(),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);

    // Serial execution with a synthetic objective: loss improves with both
    // configuration quality and training budget.
    let mut deepest: (usize, f64) = (0, 0.0);
    for step in 0..3000 {
        let Decision::Run(job) = asha.suggest(&mut rng) else {
            unreachable!("infinite-horizon ASHA always has work");
        };
        let lr = job.config.float("lr", &space).expect("float param");
        let quality = (lr.ln() - (-4.0f64)).abs() / 5.0;
        let loss = quality + 1.0 / (1.0 + job.resource);
        if job.rung > deepest.0 {
            deepest = (job.rung, job.resource);
            println!(
                "step {step:>5}: first promotion to rung {:>2} (cumulative resource {:>8})",
                job.rung, job.resource
            );
        }
        asha.observe(Observation::for_job(&job, loss));
    }

    println!(
        "\nafter 3000 jobs the ladder reached rung {} (resource {}), with rung sizes:",
        deepest.0, deepest.1
    );
    for (k, rung) in asha.ladder().rungs().iter().enumerate() {
        println!(
            "    rung {k:>2}: {:>5} trials ({} promoted)",
            rung.len(),
            rung.promoted_count()
        );
    }
    println!("\nEach rung holds ≈ 1/eta of the rung below, indefinitely — no R, no reruns.");
}

#!/usr/bin/env bash
# Service-layer smoke test: boot asha-serve, drive a chaos experiment
# through asha-ctl, scrape the /metrics endpoint mid-run, SIGKILL the
# daemon mid-run, restart it, re-attach, and require the recovered run
# report to be byte-identical to an uninterrupted reference run.
#
# Usage: scripts/service_smoke.sh
#   BIN_DIR  (default target/release)  where asha-serve / asha-ctl live
#   WORK_DIR (default mktemp -d)       scratch directory, kept on failure
set -euo pipefail

BIN="${BIN_DIR:-target/release}"
WORK="${WORK_DIR:-$(mktemp -d)}"
mkdir -p "$WORK"
CTL="$BIN/asha-ctl"
CREATE_ARGS=(--preset svm_mnist --bench-seed 11 --seed 11 --workers 16
             --max-time 8000 --straggler-std 0.3 --drop-prob 0.05)
SERVE_PID=

start_serve() { # root sock log
  # Every daemon gets an HTTP metrics listener on an ephemeral port and a
  # zero-threshold slow-request log, so each request leaves a traced row.
  "$BIN/asha-serve" --root "$1" --unix "$2" \
      --metrics-addr 127.0.0.1:0 \
      --slow-log "${3%.log}.slow.jsonl" --slow-ms 0 >"$3" 2>&1 &
  SERVE_PID=$!
}

metrics_addr() { # log -> host:port of the bound metrics listener
  sed -n 's|.*metrics on http://\([^/]*\)/metrics.*|\1|p' "$1" | head -n 1
}

scrape() { # host:port -> exposition body on stdout
  if command -v curl >/dev/null 2>&1; then
    curl -sf "http://$1/metrics"
  else
    # Dependency-free fallback: HTTP/1.0 over bash's /dev/tcp.
    exec 9<>"/dev/tcp/${1%:*}/${1##*:}"
    printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
    sed -e '1,/^\r\{0,1\}$/d' <&9
    exec 9>&- 9<&-
  fi
}

wait_sock() { # sock
  for _ in $(seq 1 100); do
    if [ -S "$1" ] && "$CTL" --unix "$1" ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "daemon did not come up on $1" >&2
  return 1
}

echo "== reference run (uninterrupted) =="
REF_SOCK="$WORK/ref.sock"
start_serve "$WORK/root-ref" "$REF_SOCK" "$WORK/serve-ref.log"
wait_sock "$REF_SOCK"
"$CTL" --unix "$REF_SOCK" create exp "${CREATE_ARGS[@]}"
"$CTL" --unix "$REF_SOCK" start exp

echo "== scrape /metrics mid-run =="
MADDR=$(metrics_addr "$WORK/serve-ref.log")
[ -n "$MADDR" ] || { echo "daemon did not report a metrics address" >&2; exit 1; }
scrape "$MADDR" >"$WORK/metrics-midrun.txt"
# Exposition-format check: every line is a comment or `name[{labels}] value`.
BAD=$(grep -cvE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$' \
      "$WORK/metrics-midrun.txt" || true)
if [ "$BAD" -ne 0 ]; then
  echo "invalid exposition lines in /metrics output:" >&2
  grep -vE '^(# |[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? )' "$WORK/metrics-midrun.txt" >&2 || true
  exit 1
fi
# The request histogram must be live: the pings/create/start above landed.
REQS=$(sed -n 's/^asha_request_execute_seconds_count{op="ping"} //p' "$WORK/metrics-midrun.txt")
[ "${REQS:-0}" -gt 0 ] || { echo "ping request histogram is empty" >&2; exit 1; }
for family in asha_worker_queue_depth asha_wal_fsync_seconds \
              asha_requests_total asha_tailer_lag_records; do
  grep -q "^# TYPE $family" "$WORK/metrics-midrun.txt" \
    || { echo "missing family $family in /metrics" >&2; exit 1; }
done
echo "scrape OK: $(wc -l <"$WORK/metrics-midrun.txt") exposition lines, $REQS pings in histogram"

"$CTL" --unix "$REF_SOCK" watch exp --workers 16 --out "$WORK/report-ref.json" >/dev/null
"$CTL" --unix "$REF_SOCK" stats
"$CTL" --unix "$REF_SOCK" top --count 1 >/dev/null
"$CTL" --unix "$REF_SOCK" shutdown
wait "$SERVE_PID"
# Zero threshold: every request must have left a slow-trace row.
[ -s "$WORK/serve-ref.slow.jsonl" ] \
  || { echo "slow-request log is empty despite --slow-ms 0" >&2; exit 1; }
echo "slow log: $(wc -l <"$WORK/serve-ref.slow.jsonl") traced requests"

echo "== victim run (SIGKILL mid-run) =="
VIC_ROOT="$WORK/root-victim"
VIC_SOCK="$WORK/victim.sock"
start_serve "$VIC_ROOT" "$VIC_SOCK" "$WORK/serve-victim-1.log"
wait_sock "$VIC_SOCK"
"$CTL" --unix "$VIC_SOCK" create exp "${CREATE_ARGS[@]}"
"$CTL" --unix "$VIC_SOCK" start exp
sleep 1.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "killed daemon with $(wc -l <"$VIC_ROOT/exp/wal.jsonl") WAL lines written"

echo "== restart, recover, re-attach =="
start_serve "$VIC_ROOT" "$VIC_SOCK" "$WORK/serve-victim-2.log"
wait_sock "$VIC_SOCK"
STATUS=$("$CTL" --unix "$VIC_SOCK" status exp)
echo "status after restart: $STATUS"
case "$STATUS" in
  *interrupted*) ;;
  *) echo "expected interrupted status after SIGKILL, got: $STATUS" >&2; exit 1 ;;
esac
"$CTL" --unix "$VIC_SOCK" start exp # re-runs through store recovery
"$CTL" --unix "$VIC_SOCK" watch exp --workers 16 --out "$WORK/report-victim.json" >/dev/null
"$CTL" --unix "$VIC_SOCK" shutdown
wait "$SERVE_PID"

cmp "$WORK/report-ref.json" "$WORK/report-victim.json"
echo "OK: recovered report byte-identical to uninterrupted reference"
echo "workdir: $WORK"

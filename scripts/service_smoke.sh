#!/usr/bin/env bash
# Service-layer smoke test: boot asha-serve, drive a chaos experiment
# through asha-ctl, SIGKILL the daemon mid-run, restart it, re-attach, and
# require the recovered run report to be byte-identical to an
# uninterrupted reference run.
#
# Usage: scripts/service_smoke.sh
#   BIN_DIR  (default target/release)  where asha-serve / asha-ctl live
#   WORK_DIR (default mktemp -d)       scratch directory, kept on failure
set -euo pipefail

BIN="${BIN_DIR:-target/release}"
WORK="${WORK_DIR:-$(mktemp -d)}"
mkdir -p "$WORK"
CTL="$BIN/asha-ctl"
CREATE_ARGS=(--preset svm_mnist --bench-seed 11 --seed 11 --workers 16
             --max-time 8000 --straggler-std 0.3 --drop-prob 0.05)
SERVE_PID=

start_serve() { # root sock log
  "$BIN/asha-serve" --root "$1" --unix "$2" >"$3" 2>&1 &
  SERVE_PID=$!
}

wait_sock() { # sock
  for _ in $(seq 1 100); do
    if [ -S "$1" ] && "$CTL" --unix "$1" ping >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "daemon did not come up on $1" >&2
  return 1
}

echo "== reference run (uninterrupted) =="
REF_SOCK="$WORK/ref.sock"
start_serve "$WORK/root-ref" "$REF_SOCK" "$WORK/serve-ref.log"
wait_sock "$REF_SOCK"
"$CTL" --unix "$REF_SOCK" create exp "${CREATE_ARGS[@]}"
"$CTL" --unix "$REF_SOCK" start exp
"$CTL" --unix "$REF_SOCK" watch exp --workers 16 --out "$WORK/report-ref.json" >/dev/null
"$CTL" --unix "$REF_SOCK" stats
"$CTL" --unix "$REF_SOCK" shutdown
wait "$SERVE_PID"

echo "== victim run (SIGKILL mid-run) =="
VIC_ROOT="$WORK/root-victim"
VIC_SOCK="$WORK/victim.sock"
start_serve "$VIC_ROOT" "$VIC_SOCK" "$WORK/serve-victim-1.log"
wait_sock "$VIC_SOCK"
"$CTL" --unix "$VIC_SOCK" create exp "${CREATE_ARGS[@]}"
"$CTL" --unix "$VIC_SOCK" start exp
sleep 1.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
echo "killed daemon with $(wc -l <"$VIC_ROOT/exp/wal.jsonl") WAL lines written"

echo "== restart, recover, re-attach =="
start_serve "$VIC_ROOT" "$VIC_SOCK" "$WORK/serve-victim-2.log"
wait_sock "$VIC_SOCK"
STATUS=$("$CTL" --unix "$VIC_SOCK" status exp)
echo "status after restart: $STATUS"
case "$STATUS" in
  *interrupted*) ;;
  *) echo "expected interrupted status after SIGKILL, got: $STATUS" >&2; exit 1 ;;
esac
"$CTL" --unix "$VIC_SOCK" start exp # re-runs through store recovery
"$CTL" --unix "$VIC_SOCK" watch exp --workers 16 --out "$WORK/report-victim.json" >/dev/null
"$CTL" --unix "$VIC_SOCK" shutdown
wait "$SERVE_PID"

cmp "$WORK/report-ref.json" "$WORK/report-victim.json"
echo "OK: recovered report byte-identical to uninterrupted reference"
echo "workdir: $WORK"

//! Integration of the real-execution path: ASHA and PBT drive actual
//! `asha-ml` training through the multi-threaded executor, with checkpoint
//! resume and weight inheritance.

use asha::baselines::{Pbt, PbtConfig};
use asha::core::{Asha, AshaConfig};
use asha::exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
use asha::ml::{Activation, Dataset, Mlp, Split, TrainConfig, Trainer};
use asha::space::{Config, Scale, SearchSpace};

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-3, 1.0, Scale::Log)
        .continuous("weight_decay", 1e-6, 1e-2, Scale::Log)
        .build()
        .expect("valid space")
}

fn data() -> Split {
    Dataset::gaussian_blobs(3, 2, 150, 0.5, 77).split(0.6, 0.2)
}

fn objective(space: SearchSpace, split: Split) -> impl asha::exec::Objective<Checkpoint = Trainer> {
    FnObjective::new(
        move |config: &Config, resource: f64, ckpt: Option<Trainer>| {
            let mut trainer = ckpt.unwrap_or_else(|| {
                Trainer::new(
                    Mlp::new(2, &[12], 3, Activation::Relu, 0.3, 5),
                    TrainConfig {
                        learning_rate: config.float("lr", &space).expect("float param"),
                        weight_decay: config.float("weight_decay", &space).expect("float param"),
                        batch_size: 16,
                        ..TrainConfig::default()
                    },
                )
            });
            let target = resource.round() as usize;
            if target > trainer.epochs_done() {
                trainer.train_epochs(&split.train, target - trainer.epochs_done());
            }
            let (val_loss, _) = trainer.evaluate(&split.validation);
            (Evaluation::of(val_loss), trainer)
        },
    )
}

#[test]
fn asha_tunes_a_real_mlp_in_parallel() {
    let space = space();
    let split = data();
    let obj = objective(space.clone(), split.clone());
    let asha = Asha::new(space, AshaConfig::new(2.0, 18.0, 3.0).with_max_trials(18));
    let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &obj, 1);
    assert!(result.scheduler_finished);
    // 18 trials at rung 0, ~6 at rung 1, ~2 at rung 2; late record-breaking
    // arrivals may promote a couple extra (Algorithm 2's exact semantics).
    assert!(
        (26..=30).contains(&result.jobs_completed),
        "unexpected job count {}",
        result.jobs_completed
    );
    let (_, best) = result.best.expect("jobs ran");
    // Random guessing on 3 balanced classes gives ln(3) ≈ 1.0986; a tuned
    // MLP on well-separated blobs must do much better.
    assert!(best < 0.7, "best validation loss {best}");
    // Checkpoint resume: the rung-2 trials trained 18 cumulative epochs.
    let deepest = result
        .trace
        .events()
        .iter()
        .map(|e| e.resource)
        .fold(0.0f64, f64::max);
    assert_eq!(deepest, 18.0);
}

#[test]
fn pbt_inherits_real_weights_across_threads() {
    let space = space();
    let split = data();
    let obj = objective(space.clone(), split.clone());
    let pbt = Pbt::new(space, PbtConfig::new(6, 12.0, 3.0));
    let result = ParallelTuner::new(ExecConfig::new(3)).run(pbt, &obj, 2);
    // 6 members x 4 segments, minus segments skipped when a child inherits
    // from a parent that is already ahead. How many skips happen depends on
    // thread completion order, but every member runs its founding segment
    // plus at least one continuation to reach the full budget.
    assert!(result.jobs_completed >= 6 * 2, "{}", result.jobs_completed);
    // Every population slot trained to the full budget.
    let deepest = result
        .trace
        .events()
        .iter()
        .map(|e| e.resource)
        .fold(0.0f64, f64::max);
    assert_eq!(deepest, 12.0);
    let (_, best) = result.best.expect("jobs ran");
    assert!(best < 0.9, "best validation loss {best}");
    // Inherited children exist: trial ids beyond the founding population.
    assert!(result.trace.events().iter().any(|e| e.trial >= 6));
}

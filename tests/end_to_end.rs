//! Cross-crate integration: every scheduler in the workspace runs against
//! every surrogate benchmark under the discrete-event simulator, produces a
//! well-formed trace, and is deterministic given its seed.

use asha::baselines::{bohb, Fabolas, FabolasConfig, Pbt, PbtConfig, Vizier, VizierConfig};
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, Hyperband, HyperbandConfig, RandomSearch, Scheduler,
    ShaConfig, SyncSha,
};
use asha::sim::{ClusterSim, SimConfig};
use asha::space::SearchSpace;
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use rand::SeedableRng;

fn all_schedulers(space: &SearchSpace, max_r: f64) -> Vec<Box<dyn Scheduler>> {
    let eta = 4.0;
    let n = 64;
    let r = max_r / 64.0;
    vec![
        Box::new(Asha::new(space.clone(), AshaConfig::new(r, max_r, eta))),
        Box::new(SyncSha::new(
            space.clone(),
            ShaConfig::new(n, r, max_r, eta).growing(),
        )),
        Box::new(Hyperband::new(
            space.clone(),
            HyperbandConfig::new(r, max_r, eta),
        )),
        Box::new(AsyncHyperband::new(
            space.clone(),
            HyperbandConfig::new(r, max_r, eta),
        )),
        Box::new(bohb(
            space.clone(),
            ShaConfig::new(n, r, max_r, eta).growing(),
        )),
        Box::new(Pbt::new(
            space.clone(),
            PbtConfig::new(8, max_r, max_r / 16.0).spawning(),
        )),
        Box::new(Vizier::new(space.clone(), VizierConfig::new(max_r))),
        Box::new(Fabolas::new(space.clone(), FabolasConfig::new(max_r))),
        Box::new(RandomSearch::new(space.clone(), max_r)),
    ]
}

fn benchmarks() -> Vec<CurveBenchmark> {
    let seed = presets::DEFAULT_SURFACE_SEED;
    vec![
        presets::cifar10_cuda_convnet(seed),
        presets::cifar10_small_cnn(seed),
        presets::ptb_lstm(seed),
        presets::svm_vehicle(seed),
    ]
}

#[test]
fn every_scheduler_runs_on_every_benchmark() {
    for bench in benchmarks() {
        let max_r = bench.max_resource();
        // A short horizon relative to each benchmark's cost scale.
        let horizon = bench.time_full(&bench.space().default_config()) * 3.0;
        for scheduler in all_schedulers(bench.space(), max_r) {
            let name = scheduler.name().to_owned();
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let result = ClusterSim::new(SimConfig::new(8, horizon).with_max_jobs(3000))
                .run(scheduler, &bench, &mut rng);
            assert!(
                result.jobs_completed > 0,
                "{name} completed nothing on {}",
                bench.name()
            );
            let events = result.trace.events();
            assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
            assert!(
                events
                    .iter()
                    .all(|e| e.val_loss.is_finite() && e.resource > 0.0),
                "{name} produced malformed events on {}",
                bench.name()
            );
            // Resources never exceed R.
            assert!(
                events.iter().all(|e| e.resource <= max_r + 1e-9),
                "{name} over-allocated resources on {}",
                bench.name()
            );
        }
    }
}

#[test]
fn runs_are_deterministic_given_seed() {
    let bench = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED);
    let run = |seed: u64| {
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        ClusterSim::new(SimConfig::new(16, 60.0))
            .run(asha, &bench, &mut rng)
            .trace
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn early_stopping_methods_evaluate_many_more_configs_than_full_budget_ones() {
    let bench = presets::cifar10_small_cnn(presets::DEFAULT_SURFACE_SEED);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
    let asha_configs = ClusterSim::new(SimConfig::new(25, 100.0))
        .run(asha, &bench, &mut rng)
        .trace
        .distinct_trials();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let random = RandomSearch::new(bench.space().clone(), 256.0);
    let random_configs = ClusterSim::new(SimConfig::new(25, 100.0))
        .run(random, &bench, &mut rng)
        .trace
        .distinct_trials();
    assert!(
        asha_configs > random_configs * 10,
        "ASHA {asha_configs} vs random {random_configs}: the large-scale-regime \
         premise (orders of magnitude more configurations) failed"
    );
}

#[test]
fn pbt_inheritance_flows_through_the_simulator() {
    // A PBT run on a surrogate must end with a population whose best loss
    // beats the best *initial* sample, which requires weight inheritance to
    // actually transfer curve state through the simulator's checkpoint map.
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let pbt = Pbt::new(bench.space().clone(), PbtConfig::new(10, 256.0, 16.0));
    let result = ClusterSim::new(SimConfig::new(10, 500.0)).run(pbt, &bench, &mut rng);
    let events = result.trace.events();
    // First generation: the 10 founding trials' first observations.
    let first_gen_best = events
        .iter()
        .filter(|e| e.trial < 10)
        .map(|e| e.val_loss)
        .fold(f64::INFINITY, f64::min);
    let overall_best = result.trace.final_best().expect("events exist").0;
    assert!(
        overall_best < first_gen_best,
        "PBT never improved on its founding population: {overall_best} vs {first_gen_best}"
    );
    // Inherited trials exist (trial ids beyond the founding population).
    assert!(events.iter().any(|e| e.trial >= 10));
}

//! Deterministic-replay smoke tests for run telemetry: the JSONL event log
//! is a pure function of the seed (byte-identical across runs), parses back
//! into the identical event stream, and the executor's telemetry stays
//! consistent under chaos.

use asha::core::{Asha, AshaConfig};
use asha::exec::{ExecConfig, FaultPolicy, JobCtx, ParallelTuner};
use asha::obs::{parse_jsonl, RunRecorder, RunReport};
use asha::sim::{ClusterSim, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::{presets, BenchmarkModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chaos_jsonl(seed: u64) -> (String, RunRecorder) {
    let bench = presets::cifar10_cuda_convnet(1);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
    let sim = ClusterSim::new(
        SimConfig::new(25, 40.0)
            .with_stragglers(0.5)
            .with_drops(0.01),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut recorder = RunRecorder::new();
    sim.run_recorded(asha, &bench, &mut rng, &mut recorder);
    (recorder.to_jsonl(), recorder)
}

#[test]
fn same_seed_produces_byte_identical_jsonl() {
    // Run the identical recorded simulation twice: logs must match byte for
    // byte — the property that makes telemetry diffs meaningful.
    let (first, _) = chaos_jsonl(2020);
    let (second, _) = chaos_jsonl(2020);
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "telemetry must be deterministic given the seed"
    );

    // A different seed must not collide (sanity that the check above is not
    // vacuous).
    let (other, _) = chaos_jsonl(2021);
    assert_ne!(first, other);
}

#[test]
fn log_round_trips_and_reports_sanely() {
    let (text, recorder) = chaos_jsonl(3);
    let events = parse_jsonl(&text).expect("own log must parse");
    assert_eq!(events, recorder.events(), "parse(encode(x)) == x");

    // A report built from the parsed log equals one built live.
    let from_log = RunReport::from_events(&events, Some(25));
    let live = recorder.report(Some(25));
    assert_eq!(from_log.to_json(), live.to_json());

    // Sanity: a 25-worker chaos run promotes, completes jobs, and keeps the
    // pool mostly busy.
    let m = from_log.metrics();
    assert!(m.jobs_completed.get() > 100);
    assert!(m.decisions.promote.get() > 0);
    assert!(m.promotion_wait.count() > 0);
    let mean = from_log.mean_utilization();
    assert!(
        (0.5..=1.0).contains(&mean),
        "ASHA should keep 25 workers busy, got {mean}"
    );
}

#[test]
fn executor_telemetry_is_consistent_under_chaos() {
    // An objective whose first attempt of every job drops its result: the
    // executor retries in place, which is exactly the path where naive
    // busy-worker accounting would go negative.
    struct Flaky;
    impl asha::exec::Objective for Flaky {
        type Checkpoint = f64;
        fn run(
            &self,
            _config: &asha::space::Config,
            resource: f64,
            _ckpt: Option<f64>,
        ) -> (asha::exec::Evaluation, f64) {
            (asha::exec::Evaluation::of(1.0 / resource), resource)
        }
        fn run_ctx(
            &self,
            ctx: JobCtx,
            config: &asha::space::Config,
            resource: f64,
            ckpt: Option<f64>,
        ) -> (asha::exec::Evaluation, f64) {
            if ctx.attempt == 1 && ctx.trial.is_multiple_of(3) {
                std::panic::panic_any(asha::exec::JobDropped);
            }
            self.run(config, resource, ckpt)
        }
    }

    asha::exec::install_quiet_panic_hook();
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .unwrap();
    let workers = 4;
    let asha = Asha::new(space, AshaConfig::new(1.0, 27.0, 3.0).with_max_trials(30));
    let policy = FaultPolicy::default().with_backoff(
        std::time::Duration::from_micros(100),
        std::time::Duration::from_millis(1),
    );
    let mut recorder = RunRecorder::new();
    let result = ParallelTuner::new(ExecConfig::new(workers).with_fault_policy(policy))
        .run_recorded(asha, &Flaky, 1, &mut recorder);

    assert!(result.faults.jobs_dropped > 0, "flaky objective must drop");
    let m = recorder.metrics();
    assert!(m.busy_workers.min() >= 0, "busy gauge went negative");
    assert!(
        m.busy_workers.max() <= workers as i64,
        "busy gauge exceeded the pool"
    );
    assert_eq!(m.busy_workers.value(), 0, "all starts must be balanced");
    assert_eq!(m.jobs_completed.get() as usize, result.jobs_completed);
    assert_eq!(m.jobs_dropped.get() as usize, result.faults.jobs_dropped);
    assert_eq!(m.jobs_retried.get() as usize, result.faults.jobs_retried);

    // Wall-clock timestamps are monotone because they are taken under the
    // scheduler lock.
    let times: Vec<f64> = recorder.events().iter().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));

    // The log round-trips through JSONL like the simulator's.
    let events = parse_jsonl(&recorder.to_jsonl()).expect("own log must parse");
    assert_eq!(events, recorder.events());
}

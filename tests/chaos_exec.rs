//! End-to-end chaos testing of the real executor: deterministic fault
//! injection through [`ChaosObjective`], exercised at the integration level
//! the paper's Section 4.4 reliability claims live at. Two same-seed chaos
//! runs must be identical, the fault tally must match what was injected,
//! faults must never kill the worker pool, and tuning quality must degrade
//! gracefully.

use asha::core::{Asha, AshaConfig, RandomSearch, ShaConfig, SyncSha};
use asha::exec::{
    install_quiet_panic_hook, ChaosConfig, ChaosObjective, Evaluation, ExecConfig, FaultPolicy,
    FnObjective, ParallelTuner,
};
use asha::metrics::RunTrace;
use asha::space::{Config, ParamValue, Scale, SearchSpace};
use std::time::Duration;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

/// Bounded away from zero so "within 2x of the fault-free best" is a
/// meaningful, stable margin for any finite completion.
fn objective() -> impl asha::exec::Objective<Checkpoint = f64> {
    FnObjective::new(|config: &Config, resource: f64, _ckpt: Option<f64>| {
        let x = match config.values()[0] {
            ParamValue::Float(v) => v,
            _ => unreachable!("space is continuous"),
        };
        let loss = 1.0 + (x - 0.3).abs() + 1.0 / (1.0 + resource);
        (Evaluation::of(loss), resource)
    })
}

fn asha(max_trials: usize) -> Asha {
    Asha::new(
        space(),
        AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(max_trials),
    )
}

fn event_key(trace: &RunTrace) -> Vec<(u64, usize, u64, u64)> {
    trace
        .events()
        .iter()
        .map(|e| (e.trial, e.rung, e.resource.to_bits(), e.val_loss.to_bits()))
        .collect()
}

#[test]
fn same_seed_chaos_runs_are_bitwise_identical() {
    install_quiet_panic_hook();
    let run = || {
        let chaos = ChaosObjective::new(
            objective(),
            ChaosConfig::new(99)
                .with_panics(0.1)
                .with_drops(0.15)
                .with_nan_losses(0.05),
        );
        let result = ParallelTuner::new(ExecConfig::new(1)).run(asha(20), &chaos, 7);
        (event_key(&result.trace), result.faults, chaos.injected())
    };
    let (trace_a, faults_a, injected_a) = run();
    let (trace_b, faults_b, injected_b) = run();
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same-seed chaos runs diverged");
    assert_eq!(faults_a, faults_b);
    assert_eq!(injected_a, injected_b);
}

#[test]
fn fault_stats_match_injected_counts() {
    install_quiet_panic_hook();
    let chaos = ChaosObjective::new(
        objective(),
        ChaosConfig::new(4)
            .with_panics(0.1)
            .with_drops(0.2)
            .with_nan_losses(0.1),
    );
    let exec = ExecConfig::new(4).with_fault_policy(FaultPolicy::default().with_max_retries(2));
    let result = ParallelTuner::new(exec).run(asha(40), &chaos, 11);
    assert!(result.scheduler_finished, "chaos run must still finish");
    let injected = chaos.injected();
    assert!(injected.panics > 0 && injected.drops > 0 && injected.nans > 0);
    assert_eq!(result.faults.jobs_panicked, injected.panics);
    assert_eq!(result.faults.jobs_dropped, injected.drops);
    assert_eq!(result.faults.jobs_timed_out, 0, "no timeout configured");
    // Poisonings come from panics, retry-exhausted drops, and NaN losses.
    assert!(result.faults.jobs_poisoned >= injected.panics);
    assert!(
        result.faults.jobs_poisoned
            <= injected.panics + injected.drops + injected.nans + injected.infs
    );
    // Every drop within the retry budget was retried.
    assert!(result.faults.jobs_retried <= result.faults.jobs_dropped);
    assert!(result.faults.jobs_retried > 0);
}

#[test]
fn chaos_best_stays_within_2x_of_fault_free_run() {
    install_quiet_panic_hook();
    for seed in [1u64, 2, 3] {
        let clean = ParallelTuner::new(ExecConfig::new(4)).run(asha(40), &objective(), seed);
        let chaos_obj = ChaosObjective::new(
            objective(),
            ChaosConfig::new(seed)
                .with_panics(0.1)
                .with_drops(0.1)
                .with_nan_losses(0.05),
        );
        let noisy = ParallelTuner::new(ExecConfig::new(4)).run(asha(40), &chaos_obj, seed);
        assert!(noisy.scheduler_finished);
        let clean_best = clean.best.expect("clean run found a config").1;
        let noisy_best = noisy.best.expect("chaos run found a config").1;
        assert!(
            noisy_best <= 2.0 * clean_best,
            "seed {seed}: chaos best {noisy_best} vs clean best {clean_best}"
        );
    }
}

#[test]
fn panics_and_timeouts_never_kill_the_pool() {
    install_quiet_panic_hook();
    // Panic-heavy chaos plus real delays against a tight job timeout: the
    // pool must absorb everything and stop at the job cap (RandomSearch
    // itself never finishes).
    let chaos = ChaosObjective::new(
        objective(),
        ChaosConfig::new(8)
            .with_panics(0.3)
            .with_delays(0.5, Duration::from_millis(20)),
    );
    let exec = ExecConfig::new(4).with_max_jobs(30).with_fault_policy(
        FaultPolicy::default()
            .with_timeout(Duration::from_millis(5))
            .with_max_retries(1)
            .with_backoff(Duration::from_micros(100), Duration::from_millis(1)),
    );
    let result = ParallelTuner::new(exec).run(RandomSearch::new(space(), 3.0), &chaos, 13);
    assert!(!result.scheduler_finished, "random search has no end");
    assert!(result.jobs_completed >= 30, "{}", result.jobs_completed);
    assert!(result.faults.jobs_panicked > 0, "{}", result.faults);
    assert!(result.faults.jobs_timed_out > 0, "{}", result.faults);
    // An abandoned (timed-out) attempt keeps running and may still hit its
    // scripted panic, which counts as injected but was reported as a
    // timeout — so injection is an upper bound here, not an equality.
    assert!(result.faults.jobs_panicked <= chaos.injected().panics);
}

#[test]
fn sync_sha_barrier_survives_poisoned_rungs() {
    install_quiet_panic_hook();
    // A third of all jobs crash. SyncSha's barrier still releases (poisoned
    // jobs are observed as INFINITY), poisoned trials are never promoted,
    // and the bracket terminates.
    let chaos = ChaosObjective::new(objective(), ChaosConfig::new(2).with_panics(0.33));
    let sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
    let result = ParallelTuner::new(ExecConfig::new(3)).run(sha, &chaos, 5);
    assert!(
        result.scheduler_finished,
        "the bracket must run to completion"
    );
    assert!(result.faults.jobs_panicked > 0);
    // No trial that reported INFINITY at rung k ever appears at rung k+1.
    let mut poisoned: Vec<(u64, usize)> = Vec::new();
    for e in result.trace.events() {
        if e.val_loss.is_infinite() {
            poisoned.push((e.trial, e.rung));
        }
    }
    for e in result.trace.events() {
        if e.rung > 0 {
            assert!(
                !poisoned.contains(&(e.trial, e.rung - 1)),
                "poisoned trial {} promoted past rung {}",
                e.trial,
                e.rung - 1
            );
        }
    }
}

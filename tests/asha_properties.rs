//! Property-based tests of the scheduling core: ASHA's invariants must hold
//! under arbitrary interleavings of suggestions, completions, stragglers,
//! and losses — exactly the asynchrony the algorithm is designed for.

use std::collections::{HashMap, HashSet, VecDeque};

use asha::baselines::{TpeConfig, TpeSampler};
use asha::core::{
    Asha, AshaConfig, AsyncHyperband, DAsha, Decision, HyperbandConfig, Job, Observation,
    Scheduler, ShaConfig, SyncSha, TrialId,
};
use asha::space::{Scale, SearchSpace};
use asha_core::reference::{RefAsha, RefAsyncHyperband, RefDAsha, RefSyncSha};
use proptest::prelude::*;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

/// Drive ASHA with a random interleaving: at each step either ask for a job
/// (if below the worker cap) or complete a random outstanding job with a
/// random loss. Returns everything needed to check invariants.
fn drive(
    steps: &[(bool, u8, u16)],
    workers: usize,
    eta: f64,
    max_r: f64,
) -> (Vec<Job>, HashMap<(u64, usize), f64>) {
    let mut asha = Asha::new(space(), AshaConfig::new(1.0, max_r, eta));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    use rand::SeedableRng as _;
    let mut outstanding: VecDeque<Job> = VecDeque::new();
    let mut issued = Vec::new();
    let mut observed = HashMap::new();
    for &(ask, pick, loss) in steps {
        if ask && outstanding.len() < workers {
            if let Decision::Run(job) = asha.suggest(&mut rng) {
                issued.push(job.clone());
                outstanding.push_back(job);
            }
        } else if !outstanding.is_empty() {
            let idx = pick as usize % outstanding.len();
            let job = outstanding.remove(idx).expect("index in range");
            let loss = loss as f64 / 16.0;
            observed.insert((job.trial.0, job.rung), loss);
            asha.observe(Observation::for_job(&job, loss));
        }
    }
    (issued, observed)
}

/// Drive any scheduler with a *hostile* completion stream — the one a faulty
/// executor produces: losses may be `INFINITY`/`-INFINITY`/`NaN` (poisoned
/// or diverged trials), results may be delivered more than once (retries
/// whose first attempt landed), and observations may arrive for trials that
/// were never issued. Returns the issued jobs and the first loss delivered
/// per `(trial, rung)` — the one the scheduler contract says wins.
fn drive_hostile<S: Scheduler>(
    mut sched: S,
    steps: &[(u8, u8, u16)],
    workers: usize,
) -> (Vec<Job>, HashMap<(u64, usize), f64>) {
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut outstanding: VecDeque<Job> = VecDeque::new();
    let mut issued = Vec::new();
    let mut first_loss: HashMap<(u64, usize), f64> = HashMap::new();
    for &(action, pick, raw) in steps {
        let action = action % 8;
        if action < 3 && outstanding.len() < workers {
            if let Decision::Run(job) = sched.suggest(&mut rng) {
                issued.push(job.clone());
                outstanding.push_back(job);
            }
        } else if action == 3 {
            // A report for a trial that was never issued.
            sched.observe(Observation::new(
                TrialId(1_000_000_000 + raw as u64),
                (pick % 4) as usize,
                1.0,
                raw as f64,
            ));
        } else if !outstanding.is_empty() {
            let idx = pick as usize % outstanding.len();
            // action == 4: deliver a duplicate but keep the job outstanding,
            // so its "real" completion arrives again later.
            let job = if action == 4 {
                outstanding[idx].clone()
            } else {
                outstanding.remove(idx).expect("index in range")
            };
            let loss = match raw % 8 {
                0 => f64::INFINITY,
                1 => f64::NAN,
                2 => f64::NEG_INFINITY,
                _ => raw as f64 / 16.0,
            };
            first_loss.entry((job.trial.0, job.rung)).or_insert(loss);
            sched.observe(Observation::for_job(&job, loss));
        }
    }
    (issued, first_loss)
}

/// Drive an indexed scheduler and its linear-scan reference twin through the
/// same hostile event stream (the exact action/loss encoding of
/// [`drive_hostile`]), asserting identical decisions at every `suggest` and
/// identical exported state after every event. The reference implementations
/// (`asha_core::reference`) are the specification: any divergence is a bug
/// in the promotion-index maintenance.
///
/// States are compared by their `Debug` rendering rather than `PartialEq`:
/// f64's Debug output is round-trip exact, and — unlike `PartialEq` — it
/// equates the NaN losses that SyncSHA legitimately holds in a bracket's
/// result buffer until rung completion filters them.
fn assert_differential<A, B, T>(
    mut fast: A,
    mut reference: B,
    steps: &[(u8, u8, u16)],
    workers: usize,
    export_fast: impl Fn(&A) -> T,
    export_ref: impl Fn(&B) -> T,
) -> Result<(), String>
where
    A: Scheduler,
    B: Scheduler,
    T: std::fmt::Debug,
{
    use rand::SeedableRng as _;
    // Twin RNGs with the same seed: both schedulers must consume the stream
    // at exactly the same points, or configs (and thus states) diverge.
    let mut rng_fast = rand::rngs::StdRng::seed_from_u64(21);
    let mut rng_ref = rand::rngs::StdRng::seed_from_u64(21);
    let mut outstanding: VecDeque<Job> = VecDeque::new();
    for (step, &(action, pick, raw)) in steps.iter().enumerate() {
        let action = action % 8;
        if action < 3 && outstanding.len() < workers {
            let fast_decision = fast.suggest(&mut rng_fast);
            let ref_decision = reference.suggest(&mut rng_ref);
            prop_assert_eq!(
                &fast_decision,
                &ref_decision,
                "decision diverged at step {}",
                step
            );
            if let Decision::Run(job) = fast_decision {
                outstanding.push_back(job);
            }
        } else if action == 3 {
            // A report for a trial that was never issued.
            let obs = Observation::new(
                TrialId(1_000_000_000 + raw as u64),
                (pick % 4) as usize,
                1.0,
                raw as f64,
            );
            fast.observe(obs);
            reference.observe(obs);
        } else if !outstanding.is_empty() {
            let idx = pick as usize % outstanding.len();
            let job = if action == 4 {
                outstanding[idx].clone()
            } else {
                outstanding.remove(idx).expect("index in range")
            };
            let loss = match raw % 8 {
                0 => f64::INFINITY,
                1 => f64::NAN,
                2 => f64::NEG_INFINITY,
                _ => raw as f64 / 16.0,
            };
            fast.observe(Observation::for_job(&job, loss));
            reference.observe(Observation::for_job(&job, loss));
        }
        prop_assert_eq!(
            format!("{:?}", export_fast(&fast)),
            format!("{:?}", export_ref(&reference)),
            "exported state diverged after step {}",
            step
        );
    }
    Ok(())
}

/// Trials promoted past a rung where their accepted loss was non-finite.
fn poisoned_promotions(issued: &[Job], first_loss: &HashMap<(u64, usize), f64>) -> Vec<u64> {
    issued
        .iter()
        .filter(|job| job.rung > 0)
        .filter(|job| {
            first_loss
                .get(&(job.trial.0, job.rung - 1))
                .is_some_and(|l| !l.is_finite())
        })
        .map(|job| job.trial.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn asha_survives_hostile_observation_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..16,
    ) {
        let asha = Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let (issued, first_loss) = drive_hostile(asha, &steps, workers);
        let bad = poisoned_promotions(&issued, &first_loss);
        prop_assert!(bad.is_empty(), "poisoned trials promoted: {:?}", bad);
        // Duplicates are idempotent: no (trial, rung) is issued twice.
        let mut seen = HashSet::new();
        for job in &issued {
            prop_assert!(
                seen.insert((job.trial.0, job.rung)),
                "duplicate issue of trial {} rung {}", job.trial.0, job.rung
            );
        }
    }

    #[test]
    fn sync_sha_survives_hostile_observation_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..16,
    ) {
        let sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0).growing());
        let (issued, first_loss) = drive_hostile(sha, &steps, workers);
        let bad = poisoned_promotions(&issued, &first_loss);
        prop_assert!(bad.is_empty(), "poisoned trials promoted: {:?}", bad);
        let mut seen = HashSet::new();
        for job in &issued {
            prop_assert!(
                seen.insert((job.trial.0, job.rung)),
                "duplicate issue of trial {} rung {}", job.trial.0, job.rung
            );
        }
    }

    #[test]
    fn async_hyperband_survives_hostile_observation_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..16,
    ) {
        let hb = AsyncHyperband::new(space(), HyperbandConfig::new(1.0, 27.0, 3.0));
        let (issued, first_loss) = drive_hostile(hb, &steps, workers);
        let bad = poisoned_promotions(&issued, &first_loss);
        prop_assert!(bad.is_empty(), "poisoned trials promoted: {:?}", bad);
    }

    #[test]
    fn dasha_survives_hostile_observation_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..16,
    ) {
        let dasha = DAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let (issued, first_loss) = drive_hostile(dasha, &steps, workers);
        let bad = poisoned_promotions(&issued, &first_loss);
        prop_assert!(bad.is_empty(), "poisoned trials promoted: {:?}", bad);
        let mut seen = HashSet::new();
        for job in &issued {
            prop_assert!(
                seen.insert((job.trial.0, job.rung)),
                "duplicate issue of trial {} rung {}", job.trial.0, job.rung
            );
        }
    }

    #[test]
    fn dasha_promotions_never_exceed_the_quota(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..16,
    ) {
        // The delayed rule's defining property, and what separates it from
        // eager ASHA: at every instant, every rung has promoted at most
        // floor(len / eta) trials — exactly, with no sqrt-scale excess.
        let mut dasha = DAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut outstanding: VecDeque<Job> = VecDeque::new();
        let eta = 3.0f64;
        for &(action, pick, raw) in &steps {
            if action % 2 == 0 && outstanding.len() < workers {
                if let Decision::Run(job) = dasha.suggest(&mut rng) {
                    outstanding.push_back(job);
                }
            } else if !outstanding.is_empty() {
                let idx = pick as usize % outstanding.len();
                let job = outstanding.remove(idx).expect("index in range");
                dasha.observe(Observation::for_job(&job, raw as f64 / 16.0));
            }
            for (k, rung) in dasha.ladder().rungs().iter().enumerate() {
                let quota = (rung.len() as f64 / eta).floor() as usize;
                prop_assert!(
                    rung.promoted_count() <= quota,
                    "rung {k} promoted {} of {} (quota {quota})",
                    rung.promoted_count(), rung.len()
                );
            }
        }
    }

    #[test]
    fn indexed_dasha_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        let fast = DAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let reference = RefDAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        assert_differential(
            fast, reference, &steps, workers,
            DAsha::export_state, RefDAsha::export_state,
        )?;
    }

    #[test]
    fn asha_tpe_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        // Model-based sampling on the indexed hot path: both twins carry an
        // independent TPE instance fed the identical observation stream, so
        // proposals — and the serialized sampler cursors — must stay equal.
        let tpe = || Box::new(TpeSampler::new(space(), TpeConfig::default()));
        let fast = Asha::with_sampler(space(), AshaConfig::new(1.0, 27.0, 3.0), tpe());
        let reference = RefAsha::with_sampler(space(), AshaConfig::new(1.0, 27.0, 3.0), tpe());
        assert_differential(
            fast, reference, &steps, workers,
            |a: &Asha| (a.export_state(), a.export_sampler_cursor()),
            |r: &RefAsha| (r.export_state(), r.export_sampler_cursor()),
        )?;
    }

    #[test]
    fn dasha_tpe_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        let tpe = || Box::new(TpeSampler::new(space(), TpeConfig::default()));
        let fast = DAsha::with_sampler(space(), AshaConfig::new(1.0, 27.0, 3.0), tpe());
        let reference =
            RefDAsha::with_sampler(space(), AshaConfig::new(1.0, 27.0, 3.0), tpe());
        assert_differential(
            fast, reference, &steps, workers,
            |a: &DAsha| (a.export_state(), a.export_sampler_cursor()),
            |r: &RefDAsha| (r.export_state(), r.export_sampler_cursor()),
        )?;
    }

    #[test]
    fn indexed_asha_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        let fast = Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let reference = RefAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        assert_differential(
            fast, reference, &steps, workers,
            Asha::export_state, RefAsha::export_state,
        )?;
    }

    #[test]
    fn indexed_sync_sha_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        let config = ShaConfig::new(9, 1.0, 9.0, 3.0).growing();
        let fast = SyncSha::new(space(), config.clone());
        let reference = RefSyncSha::new(space(), config);
        assert_differential(
            fast, reference, &steps, workers,
            SyncSha::export_state, RefSyncSha::export_state,
        )?;
    }

    #[test]
    fn indexed_async_hyperband_matches_reference_on_hostile_streams(
        steps in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..300),
        workers in 1usize..16,
    ) {
        let config = HyperbandConfig::new(1.0, 27.0, 3.0);
        let fast = AsyncHyperband::new(space(), config.clone());
        let reference = RefAsyncHyperband::new(space(), config);
        assert_differential(
            fast, reference, &steps, workers,
            AsyncHyperband::export_state, RefAsyncHyperband::export_state,
        )?;
    }

    #[test]
    fn asha_invariants_under_arbitrary_interleavings(
        steps in prop::collection::vec((any::<bool>(), any::<u8>(), any::<u16>()), 1..400),
        workers in 1usize..32,
    ) {
        let eta = 3.0;
        let max_r = 27.0;
        let (issued, _observed) = drive(&steps, workers, eta, max_r);

        // 1. No (trial, rung) pair is ever issued twice.
        let mut seen = HashSet::new();
        for job in &issued {
            prop_assert!(
                seen.insert((job.trial.0, job.rung)),
                "duplicate issue of trial {} rung {}", job.trial.0, job.rung
            );
        }

        // 2. Resources follow the geometric rung schedule and never exceed R.
        for job in &issued {
            let expected = (1.0 * eta.powi(job.rung as i32)).min(max_r);
            prop_assert_eq!(job.resource, expected);
        }

        // 3. A trial appears at rung k+1 only after appearing at rung k.
        let mut rungs_of: HashMap<u64, Vec<usize>> = HashMap::new();
        for job in &issued {
            rungs_of.entry(job.trial.0).or_default().push(job.rung);
        }
        for (trial, rungs) in &rungs_of {
            for (i, &r) in rungs.iter().enumerate() {
                prop_assert_eq!(
                    r, i,
                    "trial {} visited rungs {:?} out of order", trial, rungs
                );
            }
        }

        // 4. Plain ASHA never issues jobs beyond the top rung.
        let top = 3; // log_3(27)
        prop_assert!(issued.iter().all(|j| j.rung <= top));
    }

    #[test]
    fn promotions_only_take_top_fraction_candidates(
        losses in prop::collection::vec(0u16..1000, 30..300),
    ) {
        // The exact Algorithm 2 invariant: whenever a trial is promoted out
        // of rung k, it is at that moment among the top floor(|rung k|/eta)
        // of rung k by loss.
        let eta = 3.0;
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 27.0, eta));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng as _;
        for &loss in &losses {
            // Snapshot rung contents before suggesting.
            let tops: Vec<Vec<u64>> = asha
                .ladder()
                .rungs()
                .iter()
                .map(|r| {
                    let k = (r.len() as f64 / eta).floor() as usize;
                    r.top_k(k).into_iter().map(|(t, _)| t.0).collect()
                })
                .collect();
            let job = match asha.suggest(&mut rng) {
                Decision::Run(job) => job,
                other => { prop_assert!(false, "unexpected {other:?}"); unreachable!() }
            };
            if job.rung > 0 {
                let from = job.rung - 1;
                prop_assert!(
                    tops[from].contains(&job.trial.0),
                    "promoted trial {} was not in the top 1/eta of rung {from}",
                    job.trial.0
                );
            }
            asha.observe(Observation::for_job(&job, loss as f64));
        }
        // And mispromotion *count* stays sane: promoted out of rung 0 is at
        // most len/eta plus a sqrt(len)-scale excess (the paper's Section
        // 3.3 law-of-large-numbers argument).
        let rung0 = &asha.ladder().rungs()[0];
        let bound = rung0.len() as f64 / eta + 2.5 * (rung0.len() as f64).sqrt() + 2.0;
        prop_assert!(
            (rung0.promoted_count() as f64) <= bound,
            "rung0 promoted {} of {} (bound {bound})",
            rung0.promoted_count(),
            rung0.len()
        );
    }

    #[test]
    fn rung_sizes_form_a_geometric_pyramid(
        losses in prop::collection::vec(0u16..1000, 100..400),
    ) {
        // After a serial run, each rung holds roughly 1/eta of the rung
        // below (Figure 2's "simple rule").
        let eta = 3.0;
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 27.0, eta));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        use rand::SeedableRng as _;
        for &loss in &losses {
            if let Decision::Run(job) = asha.suggest(&mut rng) {
                asha.observe(Observation::for_job(&job, loss as f64));
            }
        }
        let rungs = asha.ladder().rungs();
        for k in 1..rungs.len() {
            let below = rungs[k - 1].len() as f64;
            let here = rungs[k].len() as f64;
            // Each rung holds ~1/eta of the rung below; late record-breaking
            // arrivals can promote past the quota (and cascade), but only
            // by a sqrt-scale excess (Section 3.3's argument).
            prop_assert!(
                here <= below / eta + 2.5 * below.sqrt() + 2.0,
                "rung {k} has {here} with {below} below"
            );
        }
    }
}

//! Fast regression tests of the paper's headline *comparative* claims, at
//! reduced scale so they run in CI. The full-scale versions live in the
//! `asha-bench` figure binaries; these guard against changes that would
//! silently break the reproduction's shape.

use asha::core::{Asha, AshaConfig, ShaConfig, SyncSha};
use asha::sim::{ClusterSim, ResumePolicy, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::{presets, BenchmarkModel, CurveBenchmark};
use asha::tune::{Searcher, SimTune};
use rand::SeedableRng;

/// Mean final incumbent over a few seeds (keeps single-run noise out of CI).
fn mean_final(bench: &CurveBenchmark, searcher: Searcher, workers: usize, horizon: f64) -> f64 {
    let mut total = 0.0;
    let seeds = [11, 22, 33, 44, 55];
    for &seed in &seeds {
        let outcome = SimTune::new(bench)
            .searcher(searcher.clone())
            .workers(workers)
            .horizon(horizon)
            .seed(seed)
            .run();
        total += outcome
            .trace
            .incumbent_curve()
            .last_value()
            .unwrap_or(f64::INFINITY);
    }
    total / seeds.len() as f64
}

#[test]
fn asha_beats_random_search_clearly_on_benchmark1() {
    // Section 4.2's regime: the same parallel budget, vastly more configs.
    let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
    let asha = mean_final(&bench, Searcher::default_asha(256.0), 25, 100.0);
    let random = mean_final(&bench, Searcher::Random, 25, 100.0);
    assert!(
        asha + 0.01 < random,
        "ASHA {asha:.4} should clearly beat random {random:.4}"
    );
}

#[test]
fn asha_withstands_stragglers_better_than_sync_sha() {
    // The Appendix A.1 claim at small scale: under heavy stragglers ASHA
    // pushes more configurations to the full budget.
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    let bench = CurveBenchmark::builder("unit", space, 64.0, 3)
        .cost(64.0, &[0.0])
        .build();
    let mut asha_total = 0usize;
    let mut sha_total = 0usize;
    for seed in 0..4 {
        let sim = ClusterSim::new(
            SimConfig::new(8, 600.0)
                .with_stragglers(1.0)
                .with_drops(2e-3)
                .with_resume(ResumePolicy::FromScratch),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 64.0, 4.0));
        asha_total += sim
            .run(asha, &bench, &mut rng)
            .trace
            .configs_trained_to(64.0, 600.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sha = SyncSha::new(
            bench.space().clone(),
            ShaConfig::new(64, 1.0, 64.0, 4.0).growing(),
        );
        sha_total += sim
            .run(sha, &bench, &mut rng)
            .trace
            .configs_trained_to(64.0, 600.0);
    }
    assert!(
        asha_total > sha_total,
        "ASHA completed {asha_total} vs SHA {sha_total} under stragglers+drops"
    );
}

#[test]
fn early_stopping_dominates_full_budget_evaluation_under_time_pressure() {
    // The large-scale-regime premise on the PTB surrogate: in ~2x time(R),
    // ASHA must beat the no-early-stopping model-based baseline.
    let bench = presets::ptb_lstm(presets::DEFAULT_SURFACE_SEED);
    let asha = mean_final(&bench, Searcher::default_asha(64.0), 50, 2.0);
    let vizier = mean_final(&bench, Searcher::Vizier, 50, 2.0);
    assert!(
        asha < vizier,
        "ASHA {asha:.2} should beat Vizier {vizier:.2} at 2 x time(R)"
    );
}

#[test]
fn by_rung_accounting_never_trails_by_bracket() {
    // Appendix A.2: using intermediate losses can only reveal the incumbent
    // earlier. Structural property of the two accountings on any trace.
    let bench = presets::svm_vehicle(presets::DEFAULT_SURFACE_SEED);
    let outcome = SimTune::new(&bench)
        .searcher(Searcher::Hyperband {
            min_resource: 1.0,
            reduction_factor: 4.0,
        })
        .workers(1)
        .horizon(500.0)
        .seed(4)
        .run();
    let by_rung = outcome.trace.incumbent_curve();
    let by_bracket = outcome.trace.incumbent_curve_by_bracket();
    // "Earlier" is about *when* the incumbent is revealed, not a pointwise
    // ordering of test losses: both curves plot the test loss of the best
    // *validation* config, so observation noise can make a newer incumbent's
    // test loss momentarily worse than a stale one's. The invariant that does
    // hold on any trace: every value by-bracket reveals was already revealed
    // by-rung at an earlier (or equal) time.
    assert!(!by_bracket.points().is_empty(), "by-bracket curve is empty");
    for &(tb, v) in by_bracket.points() {
        let revealed_earlier = by_rung
            .points()
            .iter()
            .any(|&(tr, vr)| tr <= tb && vr.to_bits() == v.to_bits());
        assert!(
            revealed_earlier,
            "by-bracket value {v} at t={tb} was never revealed earlier by-rung"
        );
    }
    // Both accountings agree on the final incumbent.
    assert_eq!(
        by_rung.last_value().map(f64::to_bits),
        by_bracket.last_value().map(f64::to_bits),
        "final incumbents disagree"
    );
}

#[test]
fn divergent_configs_never_reach_high_rungs() {
    // ASHA's robustness to pathological configurations (Section 4.3): a
    // diverged trial's capped loss keeps it in the bottom rungs.
    let bench = presets::ptb_lstm(presets::DEFAULT_SURFACE_SEED);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 64.0, 4.0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let result = ClusterSim::new(SimConfig::new(25, 2.0)).run(asha, &bench, &mut rng);
    for e in result.trace.events() {
        if e.val_loss >= 1000.0 {
            assert!(
                e.rung <= 1,
                "a capped-loss trial reached rung {} (loss {})",
                e.rung,
                e.val_loss
            );
        }
    }
}

//! The wall-clock claims of Sections 3.1–3.2, verified in simulation rather
//! than just arithmetic: with `eta^(log_eta(R/r) - s)` workers, ASHA returns
//! a configuration trained to completion within `2 x time(R)`, while
//! synchronous SHA needs one `time(R)` per rung.

use asha::core::{budget, Asha, AshaConfig, ShaConfig, SyncSha};
use asha::sim::{ClusterSim, ResumePolicy, SimConfig};
use asha::space::{Scale, SearchSpace};
use asha::surrogate::{BenchmarkModel, CurveBenchmark};
use rand::SeedableRng;

/// A benchmark whose cost is exactly `time(R) = 1`: one resource unit takes
/// `1/R` time units for every configuration.
fn linear_cost_benchmark(max_resource: f64) -> CurveBenchmark {
    let space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    CurveBenchmark::builder("linear-cost", space, max_resource, 3)
        .cost(1.0, &[0.0])
        .noise(0.001, 0.001)
        .build()
}

fn first_full_r_time(
    scheduler: impl asha::core::Scheduler,
    bench: &CurveBenchmark,
    workers: usize,
) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let sim =
        ClusterSim::new(SimConfig::new(workers, 100.0).with_resume(ResumePolicy::FromScratch));
    let result = sim.run(scheduler, bench, &mut rng);
    result
        .trace
        .first_time_trained_to(bench.max_resource())
        .expect("a configuration must reach R")
}

#[test]
fn asha_bracket0_returns_in_13_ninths_time_r() {
    // Section 3.2: "ASHA returns a fully trained configuration in
    // 13/9 x time(R)" for bracket 0 of Figure 1 with 9 machines.
    let bench = linear_cost_benchmark(9.0);
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 9.0, 3.0));
    let t = first_full_r_time(asha, &bench, 9);
    let expected = budget::asha_time_to_completion(1.0, 9.0, 3.0, 0);
    assert!((expected - 13.0 / 9.0).abs() < 1e-12);
    assert!(
        (t - expected).abs() < 0.02,
        "ASHA produced a full-R config at {t}, expected ≈ {expected}"
    );
}

#[test]
fn asha_stays_under_two_time_r_across_settings() {
    for (r, max_r, eta) in [(1.0, 9.0, 3.0), (1.0, 64.0, 4.0), (1.0, 16.0, 2.0)] {
        let bench = linear_cost_benchmark(max_r);
        let workers = budget::asha_workers_for_full_throughput(r, max_r, eta, 0);
        let asha = Asha::new(bench.space().clone(), AshaConfig::new(r, max_r, eta));
        let t = first_full_r_time(asha, &bench, workers);
        assert!(
            t <= 2.0 + 0.05,
            "ASHA took {t} x time(R) with {workers} workers (eta={eta}, R={max_r})"
        );
    }
}

#[test]
fn sync_sha_needs_one_time_r_per_rung() {
    // Section 3.1: "the minimum time to return a configuration trained to
    // completion is (log_eta(R/r) - s + 1) x time(R)" — each rung costs a
    // full time(R) because its budget equals n_i * r_i = n * r0 resources.
    let bench = linear_cost_benchmark(9.0);
    let sha = SyncSha::new(bench.space().clone(), ShaConfig::new(9, 1.0, 9.0, 3.0));
    // Plenty of workers: the bound is structural, not throughput-limited.
    let t = first_full_r_time(sha, &bench, 9);
    let expected = budget::sha_time_to_completion(1.0, 9.0, 3.0, 0);
    assert_eq!(expected, 3.0);
    // Rung 0: 9 jobs of 1/9 time(R) on 9 workers = 1/9 x time(R)... but SHA
    // trains each rung from scratch here (FromScratch), so rungs cost
    // 1/9 + 3/9 + 9/9. The structural claim is the serial chain of rungs:
    // the final job alone costs time(R), and rungs cannot overlap.
    assert!(t >= 1.0, "SHA cannot beat time(R): got {t}");
    // And ASHA with the same worker count is strictly faster.
    let asha = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 9.0, 3.0));
    let t_asha = first_full_r_time(asha, &bench, 9);
    assert!(
        t_asha <= t + 1e-9,
        "ASHA ({t_asha}) should not be slower than SHA ({t})"
    );
}

#[test]
fn promotion_tables_are_self_consistent() {
    // The sum of rung budgets equals the bracket budget, and rung sizes
    // decay by eta, for every bracket of the paper-scale setting.
    for s in 0..=4 {
        let rows = budget::promotion_table(256, 1.0, 256.0, 4.0, s);
        let total: f64 = rows.iter().map(|r| r.budget).sum();
        assert_eq!(total, budget::bracket_budget(256, 1.0, 256.0, 4.0, s));
        for w in rows.windows(2) {
            assert_eq!(w[1].num_configs, w[0].num_configs / 4);
            assert!(w[1].resource > w[0].resource);
        }
    }
}

//! Parity between the two execution layers: with one worker, no noise, and
//! the same seed, the real thread-pool executor (`asha-exec`) and the
//! discrete-event simulator (`asha-sim`) must drive a scheduler through the
//! *same* sequence of jobs — the scheduler cannot tell which layer it is
//! running on.
//!
//! The benchmark/objective pair below computes an identical closed-form loss
//! on both sides and never draws from the RNG, so the only randomness is the
//! scheduler's own sampling stream, which both layers seed identically.

use std::collections::HashMap;

use asha::core::{Asha, AshaConfig, ShaConfig, SyncSha};
use asha::exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
use asha::metrics::RunTrace;
use asha::sim::{ClusterSim, SimConfig};
use asha::space::{Config, ParamValue, Scale, SearchSpace};
use asha::surrogate::{BenchmarkModel, TrainingState};
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

fn x_of(config: &Config) -> f64 {
    match config.values()[0] {
        ParamValue::Float(v) => v,
        _ => unreachable!("space is continuous"),
    }
}

/// The shared closed-form loss: strictly improving in resource, fully
/// determined by `(x, resource)`.
fn loss_fn(x: f64, resource: f64) -> f64 {
    (x - 0.3).abs() + 1.0 / (1.0 + resource)
}

/// An rng-free [`BenchmarkModel`]: every method is a pure function of the
/// configuration and target resource, so the simulator's RNG stream is
/// consumed only by the scheduler under test.
struct DeterministicBenchmark {
    space: SearchSpace,
}

impl BenchmarkModel for DeterministicBenchmark {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn max_resource(&self) -> f64 {
        9.0
    }

    fn init_state(&self, config: &Config, _rng: &mut dyn rand::RngCore) -> TrainingState {
        TrainingState {
            resource: 0.0,
            loss: loss_fn(x_of(config), 0.0),
            asym_jitter: 0.0,
            rate_jitter: 0.0,
            divergence_draw: 0.0,
            diverged: false,
        }
    }

    fn advance(
        &self,
        config: &Config,
        state: &mut TrainingState,
        target_resource: f64,
        _rng: &mut dyn rand::RngCore,
    ) {
        if target_resource > state.resource {
            state.resource = target_resource;
        }
        state.loss = loss_fn(x_of(config), state.resource);
    }

    fn validation_loss(
        &self,
        _config: &Config,
        state: &TrainingState,
        _rng: &mut dyn rand::RngCore,
    ) -> f64 {
        state.loss
    }

    fn test_loss(&self, _config: &Config, state: &TrainingState) -> f64 {
        state.loss
    }

    fn time_per_unit(&self, _config: &Config) -> f64 {
        1.0
    }
}

/// The same loss through the real executor's objective interface.
fn objective() -> impl asha::exec::Objective<Checkpoint = f64> {
    FnObjective::new(|config: &Config, resource: f64, _ckpt: Option<f64>| {
        (Evaluation::of(loss_fn(x_of(config), resource)), resource)
    })
}

/// The multiset of completed jobs and the loss each one reported, keyed by
/// `(trial, rung, resource bits)`.
fn job_multiset(trace: &RunTrace) -> HashMap<(u64, usize, u64), (usize, u64)> {
    let mut jobs: HashMap<(u64, usize, u64), (usize, u64)> = HashMap::new();
    for e in trace.events() {
        let entry = jobs
            .entry((e.trial, e.rung, e.resource.to_bits()))
            .or_insert((0, e.val_loss.to_bits()));
        entry.0 += 1;
        assert_eq!(
            entry.1,
            e.val_loss.to_bits(),
            "same job reported two losses"
        );
    }
    jobs
}

fn assert_parity(exec_trace: &RunTrace, sim_trace: &RunTrace) {
    let exec_jobs = job_multiset(exec_trace);
    let sim_jobs = job_multiset(sim_trace);
    assert!(!exec_jobs.is_empty(), "executor completed no jobs");
    assert_eq!(
        exec_jobs, sim_jobs,
        "executor and simulator completed different job multisets"
    );
}

#[test]
fn asha_sees_the_same_run_on_both_layers() {
    let seed = 17;
    let mk = || Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(12));

    let exec = ParallelTuner::new(ExecConfig::new(1)).run(mk(), &objective(), seed);
    assert!(exec.scheduler_finished);

    let bench = DeterministicBenchmark { space: space() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sim = ClusterSim::new(SimConfig::new(1, 1e9)).run(mk(), &bench, &mut rng);
    assert!(sim.scheduler_finished);

    assert_parity(&exec.trace, &sim.trace);
    // The layers also agree on the winner, bit for bit.
    let exec_best = exec.best.expect("jobs ran").1;
    let sim_best = sim.best_config.expect("jobs ran").1;
    assert_eq!(exec_best.to_bits(), sim_best.to_bits());
}

#[test]
fn sync_sha_sees_the_same_run_on_both_layers() {
    let seed = 23;
    let mk = || SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));

    let exec = ParallelTuner::new(ExecConfig::new(1)).run(mk(), &objective(), seed);
    assert!(exec.scheduler_finished);
    // Figure 1 bracket: 9 + 3 + 1 jobs.
    assert_eq!(exec.jobs_completed, 13);

    let bench = DeterministicBenchmark { space: space() };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let sim = ClusterSim::new(SimConfig::new(1, 1e9)).run(mk(), &bench, &mut rng);
    assert!(sim.scheduler_finished);

    assert_parity(&exec.trace, &sim.trace);
}

//! High-level tuning front end: pick a searcher by name, point it at a
//! benchmark (simulated) or an objective (real threads), set a budget, run.
//!
//! This is the "system" layer over the algorithmic crates: everything it
//! does can also be done by wiring `asha_core` + `asha_sim`/`asha_exec`
//! together by hand, but downstream users mostly want exactly this:
//!
//! ```
//! use asha::tune::{Searcher, SimTune};
//! use asha::surrogate::presets;
//!
//! let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
//! let outcome = SimTune::new(&bench)
//!     .searcher(Searcher::Asha { min_resource: 1.0, reduction_factor: 4.0, stop_rate: 0 })
//!     .workers(25)
//!     .horizon(60.0)
//!     .seed(7)
//!     .run();
//! let best = outcome.best.expect("jobs completed");
//! println!("best validation loss {:.4}: {}", best.val_loss, best.summary);
//! ```

use asha_baselines::{bohb, Fabolas, FabolasConfig, Pbt, PbtConfig, Vizier, VizierConfig};
use asha_core::{
    Asha, AshaConfig, AsyncHyperband, Hyperband, HyperbandConfig, RandomSearch, Scheduler,
    ShaConfig, SyncSha,
};
use asha_metrics::{FaultStats, RunTrace};
use asha_sim::{ClusterSim, ResumePolicy, SimConfig, SimResult, TraceMode};
use asha_space::{Config, SearchSpace};
use asha_surrogate::BenchmarkModel;
use rand::SeedableRng;

/// Searcher selection for the high-level front ends. Each variant carries
/// only the knobs the paper tunes; everything else uses the paper's
/// defaults.
#[derive(Debug, Clone, PartialEq)]
pub enum Searcher {
    /// Asynchronous Successive Halving (Algorithm 2).
    Asha {
        /// Minimum resource `r`.
        min_resource: f64,
        /// Reduction factor `eta`.
        reduction_factor: f64,
        /// Early-stopping rate `s`.
        stop_rate: usize,
    },
    /// Synchronous SHA with bracket growing.
    Sha {
        /// Base-rung size `n`.
        num_configs: usize,
        /// Minimum resource `r`.
        min_resource: f64,
        /// Reduction factor `eta`.
        reduction_factor: f64,
    },
    /// Synchronous Hyperband looping over brackets.
    Hyperband {
        /// Minimum resource `r`.
        min_resource: f64,
        /// Reduction factor `eta`.
        reduction_factor: f64,
    },
    /// Asynchronous Hyperband (Section 3.2).
    AsyncHyperband {
        /// Minimum resource `r`.
        min_resource: f64,
        /// Reduction factor `eta`.
        reduction_factor: f64,
        /// Number of brackets to loop (`s = 0..brackets`).
        brackets: usize,
    },
    /// BOHB: synchronous SHA + TPE sampling.
    Bohb {
        /// Base-rung size `n`.
        num_configs: usize,
        /// Minimum resource `r`.
        min_resource: f64,
        /// Reduction factor `eta`.
        reduction_factor: f64,
    },
    /// Population Based Training (Appendix A.3 settings).
    Pbt {
        /// Population size.
        population: usize,
        /// Resource between exploit/explore rounds.
        interval: f64,
    },
    /// Vizier-like GP-EI without early stopping.
    Vizier,
    /// Fabolas-like cost-aware BO over (config, subset) space.
    Fabolas,
    /// Random search at full budget.
    Random,
}

impl Searcher {
    /// The paper's default ASHA settings for a maximum resource `R`:
    /// `r = R/256` (floored at 1), `eta = 4`, `s = 0`.
    pub fn default_asha(max_resource: f64) -> Self {
        Searcher::Asha {
            min_resource: (max_resource / 256.0).max(1.0),
            reduction_factor: 4.0,
            stop_rate: 0,
        }
    }

    /// Instantiate a scheduler over `space` with maximum resource `R`.
    ///
    /// # Panics
    ///
    /// Panics if the variant's parameters are invalid for `max_resource`
    /// (same preconditions as the underlying constructors).
    pub fn build(&self, space: &SearchSpace, max_resource: f64) -> Box<dyn Scheduler> {
        match *self {
            Searcher::Asha {
                min_resource,
                reduction_factor,
                stop_rate,
            } => Box::new(Asha::new(
                space.clone(),
                AshaConfig::new(min_resource, max_resource, reduction_factor)
                    .with_stop_rate(stop_rate),
            )),
            Searcher::Sha {
                num_configs,
                min_resource,
                reduction_factor,
            } => Box::new(SyncSha::new(
                space.clone(),
                ShaConfig::new(num_configs, min_resource, max_resource, reduction_factor).growing(),
            )),
            Searcher::Hyperband {
                min_resource,
                reduction_factor,
            } => Box::new(Hyperband::new(
                space.clone(),
                HyperbandConfig::new(min_resource, max_resource, reduction_factor),
            )),
            Searcher::AsyncHyperband {
                min_resource,
                reduction_factor,
                brackets,
            } => Box::new(AsyncHyperband::new(
                space.clone(),
                HyperbandConfig::new(min_resource, max_resource, reduction_factor)
                    .with_brackets(brackets),
            )),
            Searcher::Bohb {
                num_configs,
                min_resource,
                reduction_factor,
            } => Box::new(bohb(
                space.clone(),
                ShaConfig::new(num_configs, min_resource, max_resource, reduction_factor).growing(),
            )),
            Searcher::Pbt {
                population,
                interval,
            } => Box::new(Pbt::new(
                space.clone(),
                PbtConfig::new(population, max_resource, interval).spawning(),
            )),
            Searcher::Vizier => {
                Box::new(Vizier::new(space.clone(), VizierConfig::new(max_resource)))
            }
            Searcher::Fabolas => Box::new(Fabolas::new(
                space.clone(),
                FabolasConfig::new(max_resource),
            )),
            Searcher::Random => Box::new(RandomSearch::new(space.clone(), max_resource)),
        }
    }

    /// Parse a searcher from its CLI name (`asha`, `sha`, `hyperband`,
    /// `async-hyperband`, `bohb`, `pbt`, `vizier`, `fabolas`, `random`),
    /// using paper defaults scaled to `max_resource`.
    pub fn from_name(name: &str, max_resource: f64) -> Option<Self> {
        let r = (max_resource / 256.0).max(1.0);
        let n = (max_resource / r).round() as usize;
        Some(match name {
            "asha" => Searcher::default_asha(max_resource),
            "sha" => Searcher::Sha {
                num_configs: n,
                min_resource: r,
                reduction_factor: 4.0,
            },
            "hyperband" => Searcher::Hyperband {
                min_resource: r,
                reduction_factor: 4.0,
            },
            "async-hyperband" => Searcher::AsyncHyperband {
                min_resource: r,
                reduction_factor: 4.0,
                brackets: 4,
            },
            "bohb" => Searcher::Bohb {
                num_configs: n,
                min_resource: r,
                reduction_factor: 4.0,
            },
            "pbt" => Searcher::Pbt {
                population: 25,
                interval: (max_resource / 30.0).max(1.0),
            },
            "vizier" => Searcher::Vizier,
            "fabolas" => Searcher::Fabolas,
            "random" => Searcher::Random,
            _ => return None,
        })
    }
}

/// The best configuration a tuning run found.
#[derive(Debug, Clone, PartialEq)]
pub struct BestConfig {
    /// The winning hyperparameter configuration.
    pub config: Config,
    /// Its validation loss.
    pub val_loss: f64,
    /// The cumulative resource it was trained for when observed.
    pub resource: f64,
    /// `name=value` rendering of the configuration.
    pub summary: String,
}

/// Outcome of a [`SimTune`] run.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The best configuration found, if any job completed.
    pub best: Option<BestConfig>,
    /// The full completion trace.
    pub trace: RunTrace,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Fault tally of the simulated cluster (drops are always retried), in
    /// the same format the real executor reports.
    pub faults: FaultStats,
    /// Distinct configurations evaluated.
    pub configs_evaluated: usize,
    /// Simulated end time.
    pub end_time: f64,
}

impl TuneOutcome {
    fn from_sim(result: SimResult, space: &SearchSpace) -> Self {
        // The simulator's online counter is exact in every trace mode; the
        // trace itself may be thinned (IncumbentOnly) or empty (Aggregated).
        let configs_evaluated = result.distinct_trials;
        let best = result.best_config.map(|(config, val_loss, resource)| {
            let summary = space
                .display(&config)
                .unwrap_or_else(|_| "<foreign config>".to_owned());
            BestConfig {
                config,
                val_loss,
                resource,
                summary,
            }
        });
        TuneOutcome {
            best,
            trace: result.trace,
            jobs_completed: result.jobs_completed,
            faults: result.faults,
            configs_evaluated,
            end_time: result.end_time,
        }
    }
}

/// Builder for a simulated tuning run over a [`BenchmarkModel`]; see the
/// module docs for an example.
pub struct SimTune<'a> {
    bench: &'a dyn BenchmarkModel,
    searcher: Searcher,
    workers: usize,
    horizon: f64,
    straggler_std: f64,
    drop_prob: f64,
    resume: ResumePolicy,
    trace_mode: TraceMode,
    seed: u64,
}

impl<'a> SimTune<'a> {
    /// Tune `bench` with the paper-default ASHA on 25 workers for 10 full
    /// training times; override anything via the builder methods.
    pub fn new(bench: &'a dyn BenchmarkModel) -> Self {
        let horizon = bench.time_full(&bench.space().default_config()) * 10.0;
        SimTune {
            searcher: Searcher::default_asha(bench.max_resource()),
            bench,
            workers: 25,
            horizon,
            straggler_std: 0.0,
            drop_prob: 0.0,
            resume: ResumePolicy::Checkpoint,
            trace_mode: TraceMode::Full,
            seed: 0,
        }
    }

    /// Select the searcher.
    pub fn searcher(mut self, searcher: Searcher) -> Self {
        self.searcher = searcher;
        self
    }

    /// Number of simulated workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Simulated-time budget.
    pub fn horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Straggler noise (Appendix A.1's `1 + |z|` multiplier).
    pub fn stragglers(mut self, std: f64) -> Self {
        self.straggler_std = std;
        self
    }

    /// Per-time-unit job-drop probability.
    pub fn drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Resume policy for promotions.
    pub fn resume(mut self, resume: ResumePolicy) -> Self {
        self.resume = resume;
        self
    }

    /// How much of the completion stream to keep. [`TraceMode::Full`] (the
    /// default) records every job; [`TraceMode::IncumbentOnly`] keeps
    /// O(incumbent-updates) memory on long horizons with the identical
    /// incumbent curve; [`TraceMode::Aggregated`] keeps scalars only.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// RNG seed (sampling, noise, stragglers).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run the simulation.
    ///
    /// # Panics
    ///
    /// Panics if the searcher parameters are invalid for the benchmark's
    /// resource scale, or `workers == 0` / `horizon <= 0`.
    pub fn run(self) -> TuneOutcome {
        let space = self.bench.space().clone();
        let scheduler = self.searcher.build(&space, self.bench.max_resource());
        let sim = ClusterSim::new(
            SimConfig::new(self.workers, self.horizon)
                .with_stragglers(self.straggler_std)
                .with_drops(self.drop_prob)
                .with_resume(self.resume)
                .with_trace_mode(self.trace_mode),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        TuneOutcome::from_sim(sim.run(scheduler, self.bench, &mut rng), &space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_surrogate::presets;

    #[test]
    fn every_named_searcher_builds_and_runs() {
        let bench = presets::svm_vehicle(presets::DEFAULT_SURFACE_SEED);
        for name in [
            "asha",
            "sha",
            "hyperband",
            "async-hyperband",
            "bohb",
            "pbt",
            "vizier",
            "fabolas",
            "random",
        ] {
            let searcher = Searcher::from_name(name, bench.max_resource()).expect("known name");
            let outcome = SimTune::new(&bench)
                .searcher(searcher)
                .workers(4)
                .horizon(120.0)
                .seed(1)
                .run();
            assert!(outcome.jobs_completed > 0, "{name} did nothing");
            let best = outcome.best.expect("at least one completion");
            assert!(best.val_loss.is_finite());
            assert!(best.summary.contains('='), "summary: {}", best.summary);
        }
        assert!(Searcher::from_name("nope", 64.0).is_none());
    }

    #[test]
    fn default_asha_matches_paper_settings() {
        match Searcher::default_asha(256.0) {
            Searcher::Asha {
                min_resource,
                reduction_factor,
                stop_rate,
            } => {
                assert_eq!(min_resource, 1.0);
                assert_eq!(reduction_factor, 4.0);
                assert_eq!(stop_rate, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn outcome_reports_the_best_config_consistently() {
        let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
        let outcome = SimTune::new(&bench).workers(9).horizon(100.0).seed(3).run();
        let best = outcome.best.expect("jobs completed");
        // The reported best must agree with the trace's final best.
        let (trace_val, _) = outcome.trace.final_best().expect("events exist");
        assert_eq!(best.val_loss, trace_val);
        assert!(best.resource > 0.0);
        assert!(outcome.configs_evaluated > 10);
    }

    #[test]
    fn trace_modes_preserve_outcome_scalars() {
        let bench = presets::cifar10_cuda_convnet(presets::DEFAULT_SURFACE_SEED);
        let run = |mode| {
            SimTune::new(&bench)
                .workers(9)
                .horizon(80.0)
                .seed(4)
                .trace_mode(mode)
                .run()
        };
        let full = run(TraceMode::Full);
        let lean = run(TraceMode::IncumbentOnly);
        let agg = run(TraceMode::Aggregated);
        assert_eq!(full.trace.incumbent_curve(), lean.trace.incumbent_curve());
        assert!(lean.trace.len() < full.trace.len());
        assert!(agg.trace.is_empty());
        for other in [&lean, &agg] {
            assert_eq!(full.jobs_completed, other.jobs_completed);
            assert_eq!(full.configs_evaluated, other.configs_evaluated);
            assert_eq!(full.end_time, other.end_time);
            assert_eq!(
                full.best.as_ref().map(|b| b.val_loss),
                other.best.as_ref().map(|b| b.val_loss)
            );
        }
    }

    #[test]
    fn stragglers_and_drops_are_plumbed_through() {
        let bench = presets::svm_vehicle(presets::DEFAULT_SURFACE_SEED);
        let clean = SimTune::new(&bench).workers(4).horizon(300.0).seed(5).run();
        let noisy = SimTune::new(&bench)
            .workers(4)
            .horizon(300.0)
            .stragglers(1.0)
            .drops(5e-3)
            .seed(5)
            .run();
        assert!(noisy.faults.jobs_dropped > 0);
        assert!(noisy.jobs_completed < clean.jobs_completed);
    }
}

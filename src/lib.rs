//! # asha — massively parallel hyperparameter tuning
//!
//! A from-scratch Rust reproduction of *Li et al., "A System for Massively
//! Parallel Hyperparameter Tuning" (MLSys 2020)*: the **Asynchronous
//! Successive Halving Algorithm (ASHA)**, its synchronous relatives, the
//! baselines the paper compares against, a discrete-event cluster simulator
//! for the paper's experiments, and a real thread-pool executor for tuning
//! actual training jobs.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module of the same name.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`space`] | `asha-space` | search-space DSL + the paper's spaces |
//! | [`core`] | `asha-core` | ASHA, SHA, Hyperband, async Hyperband, random search |
//! | [`baselines`] | `asha-baselines` | PBT, BOHB/TPE, Vizier-like, Fabolas-like |
//! | [`surrogate`] | `asha-surrogate` | synthetic learning-curve benchmarks |
//! | [`sim`] | `asha-sim` | discrete-event cluster simulator |
//! | [`exec`] | `asha-exec` | real multi-threaded executor |
//! | [`metrics`] | `asha-metrics` | traces, incumbent curves, aggregation |
//! | [`obs`] | `asha-obs` | JSONL event logs, metrics registry, run reports |
//! | [`math`] | `asha-math` | GP, KDE, distributions, stats, Cholesky |
//! | [`ml`] | `asha-ml` | tiny MLP/SGD substrate for real tuning demos |
//!
//! # Quickstart
//!
//! Tune a surrogate CIFAR-10 benchmark with ASHA on a simulated 25-worker
//! cluster:
//!
//! ```
//! use asha::core::{Asha, AshaConfig};
//! use asha::sim::{ClusterSim, SimConfig};
//! use asha::surrogate::{presets, BenchmarkModel};
//! use rand::SeedableRng;
//!
//! let bench = presets::cifar10_cuda_convnet(2020);
//! let tuner = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(tuner, &bench, &mut rng);
//! let (best_val, best_test) = result.trace.final_best().expect("jobs completed");
//! assert!(best_val.is_finite() && best_test.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tune;

pub use asha_baselines as baselines;
pub use asha_core as core;
pub use asha_exec as exec;
pub use asha_math as math;
pub use asha_metrics as metrics;
pub use asha_ml as ml;
pub use asha_obs as obs;
pub use asha_sim as sim;
pub use asha_space as space;
pub use asha_surrogate as surrogate;

//! # asha — massively parallel hyperparameter tuning
//!
//! A from-scratch Rust reproduction of *Li et al., "A System for Massively
//! Parallel Hyperparameter Tuning" (MLSys 2020)*: the **Asynchronous
//! Successive Halving Algorithm (ASHA)**, its synchronous relatives, the
//! baselines the paper compares against, a discrete-event cluster simulator
//! for the paper's experiments, and a real thread-pool executor for tuning
//! actual training jobs.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a module of the same name.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`space`] | `asha-space` | search-space DSL + the paper's spaces |
//! | [`core`] | `asha-core` | ASHA, SHA, Hyperband, async Hyperband, random search |
//! | [`baselines`] | `asha-baselines` | PBT, BOHB/TPE, Vizier-like, Fabolas-like |
//! | [`surrogate`] | `asha-surrogate` | synthetic learning-curve benchmarks |
//! | [`sim`] | `asha-sim` | discrete-event cluster simulator |
//! | [`exec`] | `asha-exec` | real multi-threaded executor |
//! | [`metrics`] | `asha-metrics` | traces, incumbent curves, aggregation |
//! | [`obs`] | `asha-obs` | JSONL event logs, metrics registry, run reports |
//! | [`math`] | `asha-math` | GP, KDE, distributions, stats, Cholesky |
//! | [`ml`] | `asha-ml` | tiny MLP/SGD substrate for real tuning demos |
//! | [`store`] | `asha-store` | durable WAL + snapshots, crash recovery, supervisor |
//! | [`service`] | `asha-service` | `asha-serve` daemon, wire protocol, client |
//!
//! The blessed, stability-tracked surface is this facade plus
//! [`prelude`]; paths *inside* the re-exported crates (e.g.
//! `asha::core::rung::...`) are implementation detail and may move
//! between minor versions.
//!
//! # Quickstart
//!
//! Tune a surrogate CIFAR-10 benchmark with ASHA on a simulated 25-worker
//! cluster:
//!
//! ```
//! use asha::core::{Asha, AshaConfig};
//! use asha::sim::{ClusterSim, SimConfig};
//! use asha::surrogate::{presets, BenchmarkModel};
//! use rand::SeedableRng;
//!
//! let bench = presets::cifar10_cuda_convnet(2020);
//! let tuner = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 256.0, 4.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let result = ClusterSim::new(SimConfig::new(25, 150.0)).run(tuner, &bench, &mut rng);
//! let (best_val, best_test) = result.trace.final_best().expect("jobs completed");
//! assert!(best_val.is_finite() && best_test.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tune;

pub use asha_baselines as baselines;
pub use asha_core as core;
pub use asha_exec as exec;
pub use asha_math as math;
pub use asha_metrics as metrics;
pub use asha_ml as ml;
pub use asha_obs as obs;
pub use asha_service as service;
pub use asha_sim as sim;
pub use asha_space as space;
pub use asha_store as store;
pub use asha_surrogate as surrogate;

/// The curated import surface: everything a typical tuning program needs,
/// one `use` away.
///
/// ```
/// use asha::prelude::*;
/// use rand::SeedableRng;
///
/// let bench = presets::svm_vehicle(7);
/// let tuner = Asha::new(bench.space().clone(), AshaConfig::new(1.0, 27.0, 3.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let result = ClusterSim::new(SimConfig::new(4, 40.0)).run(tuner, &bench, &mut rng);
/// assert!(result.jobs_completed > 0);
/// ```
pub mod prelude {
    pub use asha_core::{
        Asha, AshaConfig, AsyncHyperband, Decision, Durability, DurabilityBuilder, Error,
        ErrorKind, Hyperband, HyperbandConfig, Job, Observation, RandomSearch, ResultContext,
        Scheduler, ShaConfig, SyncSha, TrialId,
    };
    pub use asha_exec::{ExecConfig, FnObjective, Objective, ParallelTuner};
    pub use asha_obs::{RunRecorder, RunReport};
    pub use asha_service::{Client, Daemon, ServeOptions};
    pub use asha_sim::{ClusterSim, SimConfig};
    pub use asha_space::SearchSpace;
    #[allow(deprecated)]
    pub use asha_store::SyncPolicy;
    pub use asha_store::{
        BenchSpec, DurableRun, ExperimentMeta, ExperimentSupervisor, RunOptions, SchedulerState,
        StoreFormat,
    };
    pub use asha_surrogate::{presets, BenchmarkModel, CurveBenchmark};

    pub use crate::tune::{BestConfig, SimTune, TuneOutcome};
}

//! Offline, API-compatible subset of the [`criterion`] benchmarking crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion's API its benches use: [`Criterion`] with
//! `bench_function` / `benchmark_group`, [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of upstream's statistical engine this stub auto-calibrates an
//! iteration count (~100 ms per benchmark) and prints the mean wall-clock
//! time per iteration. That keeps `cargo bench` useful for relative
//! comparisons while compiling instantly and running with zero dependencies.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spend per benchmark once calibrated.
const TARGET: Duration = Duration::from_millis(100);

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named family of benchmarks (`group/id` naming).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, &mut f);
        self
    }

    /// Accepted for API compatibility; the stub calibrates automatically.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only form (the group provides the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `self.iterations` times, timing the whole batch.
    pub fn iter<R, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count against [`TARGET`], then run and report.
fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // One probe iteration (also the warmup).
    let mut probe = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iterations = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64;
    println!("{name:<48} {:>12.1} ns/iter ({iterations} iters)", mean);
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run_to_completion() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}

//! Offline marker-trait subset of [`serde`].
//!
//! The build environment has no network access, and nothing in the workspace
//! actually serializes data — `serde` appears only as derive attributes and
//! generic trait bounds (e.g. `T: Serialize + DeserializeOwned`). This stub
//! therefore implements `Serialize` and `Deserialize` as blanket marker
//! traits and re-exports no-op derive macros, which is exactly enough for
//! every bound and `#[derive(..)]` in the tree to compile. If a future PR
//! needs a real wire format, it should vendor a real implementation.
//!
//! [`serde`]: https://crates.io/crates/serde

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`; blanket-implemented for
/// every type since no serialization format is exercised offline.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize<'de>`; blanket-implemented
/// for every type since no deserialization is exercised offline.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Mirror of `serde::de` with the `DeserializeOwned` convenience bound.
pub mod de {
    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}

    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}

    pub use super::Deserialize;
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

//! Offline, API-compatible subset of the [`rand`] crate (version 0.8 line).
//!
//! The build environment has no network access and no crates-io mirror, so
//! the workspace vendors the small slice of `rand`'s API that it actually
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but with the same contract the workspace
//! relies on: deterministic given the seed, uniform, and fast. Everything in
//! the workspace that depends on exact reproducibility derives it from the
//! seed, never from a particular generator family.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

/// The core of a random number generator, object-safe so schedulers can take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material (byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it over the full seed via
    /// SplitMix64 (mirrors upstream's behaviour of never mapping two inputs
    /// to the same state).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public only within the crate).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

mod sample {
    //! `gen_range` support: uniform sampling over the primitive ranges the
    //! workspace uses.

    use super::RngCore;

    /// Types that can be drawn uniformly from a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Draw uniformly from `[low, high)`.
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Draw uniformly from `[low, high]`.
        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    /// Draw a `u64` uniformly below `bound` (Lemire-style rejection, without
    /// the 128-bit multiply fast path — this is not a hot loop).
    fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    macro_rules! impl_int_uniform {
        ($($t:ty => $wide:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    (low as $wide).wrapping_add(u64_below(rng, span) as $wide) as $t
                }

                fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as $wide).wrapping_add(u64_below(rng, span + 1) as $wide) as $t
                }
            }
        )*};
    }

    impl_int_uniform!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    );

    impl SampleUniform for f64 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
            assert!(low < high, "gen_range: empty range");
            let u = super::unit_f64(rng.next_u64());
            low + u * (high - low)
        }

        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
            assert!(low <= high, "gen_range: empty range");
            let u = super::unit_f64(rng.next_u64());
            low + u * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
            f64::sample_half_open(rng, low as f64, high as f64) as f32
        }

        fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
            f64::sample_closed(rng, low as f64, high as f64) as f32
        }
    }

    /// A range usable with [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw a value from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_closed(rng, low, high)
        }
    }
}

pub use sample::{SampleRange, SampleUniform};

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of upstream
/// `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods on every [`RngCore`]; mirrors upstream's `Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform over the type's standard domain;
    /// `f64` is uniform on `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draw uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand`'s `StdRng` (ChaCha12), but the
    /// workspace never depends on a particular stream — only on determinism
    /// given the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing. Restoring
        /// them with [`StdRng::from_state`] reproduces the exact remaining
        /// stream, which durable-run recovery relies on.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state words captured by
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point,
        /// never produced by `state()` but possible in hand-written input)
        /// is nudged exactly like `from_seed` does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::from_seed([0u8; 32]);
            }
            StdRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xB7E1_5162_8AED_2A6B,
                    0x243F_6A88_85A3_08D3,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for code written against `rand`'s `SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_f64_stays_in_range_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.01));
        assert!(draws.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn gen_range_is_uniform_enough_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800 && c < 1200), "{counts:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.gen_range(-10i64..-3);
            assert!((-10..-3).contains(&x));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&x));
        let mut bytes = [0u8; 13];
        dyn_rng.fill_bytes(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..17 {
            rng.next_u64();
        }
        let saved = rng.state();
        let mut restored = StdRng::from_state(saved);
        assert_eq!(restored, rng);
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        // The all-zero guard matches from_seed's nudge.
        assert_eq!(StdRng::from_state([0; 4]), StdRng::from_seed([0u8; 32]));
    }

    #[test]
    fn seed_expansion_avoids_zero_state() {
        // from_seed on an all-zero seed must still produce a working rng.
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }
}

//! Offline, API-compatible subset of the [`proptest`] crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `Just`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the case number and the
//!   assertion message; it is not minimized. Every `proptest!` run is seeded
//!   deterministically from the test's name, so a failure reproduces exactly
//!   under `cargo test`.
//! * **No persistence.** `.proptest-regressions` files are neither read nor
//!   written.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand;

use rand::{Rng as _, RngCore, SampleUniform};

/// Strategy combinators and supporting types.
pub mod strategy {
    use super::*;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree: a strategy simply draws a
    /// value from an RNG (no shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// around it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Discard generated values failing `f` (regenerates, bounded).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut dyn RngCore) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut dyn RngCore) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut dyn RngCore) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 straight candidates: {}",
                self.whence
            );
        }
    }

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut dyn RngCore) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies; built by [`prop_oneof!`].
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the (non-empty) list of branches.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut dyn RngCore) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut dyn RngCore) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut dyn RngCore) -> T {
            T::sample_closed(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut dyn RngCore) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A => 0);
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw one value from the type's full domain.
        fn arbitrary(rng: &mut dyn RngCore) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut dyn RngCore) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut dyn RngCore) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut dyn RngCore) -> f64 {
            // Finite values only: uniform sign/magnitude over a wide span.
            let mag = rng.gen::<f64>() * 1e9;
            if rng.next_u64() & 1 == 1 {
                mag
            } else {
                -mag
            }
        }
    }

    /// Strategy returned by [`any`](super::any).
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut dyn RngCore) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The whole-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng as _, RngCore};

    /// A length specification: an exact `usize` or a `Range<usize>`.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut dyn RngCore) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Controls how many cases each `proptest!` test runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works after a glob
    /// import, as it does with upstream's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a `proptest!` body; on failure the case (not the whole
/// process) fails with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} vs {:?})",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Assert two values differ inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ..) { .. }`
/// becomes a normal test running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($body:tt)*) => {
        $crate::__proptest_impl!($config; $($body)*);
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($body)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            // Deterministic per-test seed: FNV-1a over the test name.
            let __seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1_0000_0000_01b3)
                });
            let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0, z in 5u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((5..=9).contains(&z));
        }

        #[test]
        fn combinators_compose(xs in prop::collection::vec(evens(), 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in xs {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn tuples_and_any(t in (any::<bool>(), any::<u8>(), 0u16..99), mut n in 0usize..4) {
            n += 1;
            prop_assert!(n >= 1);
            prop_assert!(t.2 < 99);
        }

        #[test]
        fn oneof_union_covers_branches(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let strat = (1usize..6)
            .prop_flat_map(|n| prop::collection::vec(0u8..10, n))
            .boxed();
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
        }
    }

    #[test]
    fn failing_case_panics_with_message() {
        // No #[test] attribute on the inner fn: it is invoked directly below
        // (a nested #[test] would be unrunnable anyway).
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x >= 10, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("always_fails"), "{msg}");
    }
}

//! No-op `#[derive(Serialize, Deserialize)]` macros for the vendored serde
//! stub. The workspace's vendored `serde` implements `Serialize` and
//! `Deserialize` as blanket marker traits, so the derives have nothing to
//! generate — they only need to exist (and accept `#[serde(...)]` attributes)
//! so that `#[derive(..)]` and field attributes compile.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to
/// nothing (the vendored `serde::Serialize` is blanket-implemented).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands to
/// nothing (the vendored `serde::Deserialize` is blanket-implemented).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

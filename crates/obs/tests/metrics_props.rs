//! Property-based tests of the telemetry metrics: histogram bookkeeping and
//! gauge non-negativity must hold for arbitrary observation sets and
//! arbitrary (even hostile) event streams.

use asha_obs::{Event, EventKind, Histogram, IdleKind, MetricsRegistry};
use proptest::prelude::*;

/// One arbitrary event kind, biased toward the job lifecycle (the events
/// that move gauges). Trials and rungs are drawn from small ranges so
/// streams frequently produce matched and mismatched pairs.
fn arb_kind() -> impl Strategy<Value = EventKind> {
    (0u8..8, 0u64..4, 0usize..3, 0.0f64..10.0).prop_map(|(tag, trial, rung, x)| match tag {
        0 => EventKind::Suggest {
            decision: if trial % 2 == 0 {
                IdleKind::Wait
            } else {
                IdleKind::Finished
            },
        },
        1 => EventKind::Promote {
            trial,
            bracket: 0,
            from: rung,
            to: rung + 1,
            resource: x,
        },
        2 => EventKind::GrowBottom {
            trial,
            bracket: 0,
            resource: x,
        },
        3 => EventKind::JobStart {
            trial,
            bracket: 0,
            rung,
            resource: x,
        },
        4 => EventKind::JobEnd {
            trial,
            rung,
            resource: x,
            loss: x,
        },
        5 => EventKind::Drop {
            trial,
            rung,
            cause: asha_obs::DropCause::Dropped,
        },
        6 => EventKind::Retry { trial, rung },
        _ => EventKind::WorkerIdle { idle: rung },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_bucket_counts_sum_to_observation_count(
        values in prop::collection::vec(-1e6f64..1e6, 0..200),
        extremes in prop::collection::vec(0usize..3, 0..5),
    ) {
        let mut h = Histogram::latency();
        for &v in &values {
            h.observe(v);
        }
        // Mix in values outside any finite bucket.
        for &e in &extremes {
            h.observe([f64::INFINITY, f64::NEG_INFINITY, f64::NAN][e]);
        }
        let total = values.len() + extremes.len();
        prop_assert_eq!(h.count(), total as u64);
        let bucket_sum: u64 = h.buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum, total as u64);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded_by_max(
        values in prop::collection::vec(0.0f64..1e4, 1..200),
    ) {
        let mut h = Histogram::latency();
        for &v in &values {
            h.observe(v);
        }
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.95, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &q in &qs {
            prop_assert!(q <= max, "quantile {q} above exact max {max}");
        }
        prop_assert_eq!(h.quantile(1.0), max);
    }

    #[test]
    fn gauges_never_go_negative_on_arbitrary_streams(
        kinds in prop::collection::vec(arb_kind(), 0..300),
    ) {
        let mut m = MetricsRegistry::new();
        for (i, kind) in kinds.iter().enumerate() {
            m.apply(&Event { seq: i as u64, time: i as f64, kind: *kind });
            // The invariant holds at every prefix, not just at the end.
            prop_assert!(m.busy_workers.value() >= 0);
        }
        prop_assert!(m.busy_workers.min() >= 0, "busy dipped to {}", m.busy_workers.min());
        for g in &m.rung_occupancy {
            prop_assert!(g.min() >= 0);
        }
        for g in &m.pending_promotions {
            prop_assert!(g.min() >= 0);
        }
    }

    #[test]
    fn latency_histogram_counts_match_matched_pairs(
        kinds in prop::collection::vec(arb_kind(), 0..300),
    ) {
        // Whatever the stream, each latency observation requires a matched
        // pair, so counts are bounded by the rarer side.
        let mut m = MetricsRegistry::new();
        for (i, kind) in kinds.iter().enumerate() {
            m.apply(&Event { seq: i as u64, time: i as f64, kind: *kind });
        }
        prop_assert!(m.job_latency.count() <= m.jobs_started.get().min(m.jobs_completed.get()));
        prop_assert!(m.promotion_wait.count() <= m.decisions.promote.get().min(m.jobs_completed.get()));
        prop_assert!(m.queue_delay.count() <= m.jobs_dropped.get().min(m.jobs_retried.get()));
    }
}

//! Property-based tests of the concurrent metrics plane: whatever the
//! thread interleaving, a sharded histogram must agree *exactly* with a
//! single-threaded reference fill. The cells record durations in integer
//! nanoseconds, and integer addition is order-independent, so equality
//! here is `==`, not "within epsilon".

use std::sync::Arc;
use std::thread;

use asha_obs::{HistogramSnapshot, SharedCounter, SharedGauge, SharedHistogram};
use proptest::prelude::*;

/// Observation values spanning the latency buckets (1us .. ~1min) plus
/// out-of-range extremes that land in the +Inf bucket or clamp at zero.
fn arb_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (0u8..10, 1e-7f64..100.0).prop_map(|(tag, x)| match tag {
            0 => 0.0,     // clamps at the first bucket
            1 => x * 1e4, // up to 1e6 s: lands in the +Inf bucket
            _ => x,       // the normal latency range
        }),
        0..400,
    )
}

fn reference_fill(values: &[f64]) -> HistogramSnapshot {
    let h = SharedHistogram::latency();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn concurrent_fill_equals_sequential_reference(
        values in arb_values(),
        threads in 1usize..6,
    ) {
        let shared = Arc::new(SharedHistogram::latency());
        let chunk = values.len().div_ceil(threads).max(1);
        thread::scope(|s| {
            for part in values.chunks(chunk) {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for &v in part {
                        shared.observe(v);
                    }
                });
            }
        });
        prop_assert_eq!(shared.snapshot(), reference_fill(&values));
    }

    #[test]
    fn merged_partition_snapshots_equal_one_fill(
        values in arb_values(),
        parts in 1usize..5,
    ) {
        // Split the stream across independent histograms (as per-op cells
        // do), merge the snapshots, and require exact agreement with one
        // histogram that saw everything.
        let chunk = values.len().div_ceil(parts).max(1);
        let mut merged = HistogramSnapshot::empty(SharedHistogram::latency().bounds().to_vec());
        for part in values.chunks(chunk) {
            merged.merge(&reference_fill(part));
        }
        prop_assert_eq!(merged, reference_fill(&values));
    }

    #[test]
    fn snapshot_survives_json_round_trip(values in arb_values()) {
        let snap = reference_fill(&values);
        let back = HistogramSnapshot::from_json(&snap.to_json());
        prop_assert_eq!(back.as_ref(), Some(&snap));
    }

    #[test]
    fn concurrent_counter_and_gauge_totals_are_exact(
        increments in prop::collection::vec(1u64..100, 0..64),
        threads in 1usize..6,
    ) {
        let counter = Arc::new(SharedCounter::new());
        let gauge = Arc::new(SharedGauge::new());
        let chunk = increments.len().div_ceil(threads).max(1);
        thread::scope(|s| {
            for part in increments.chunks(chunk) {
                let counter = Arc::clone(&counter);
                let gauge = Arc::clone(&gauge);
                s.spawn(move || {
                    for &n in part {
                        counter.add(n);
                        gauge.add(n as i64);
                        gauge.dec();
                    }
                });
            }
        });
        let total: u64 = increments.iter().sum();
        prop_assert_eq!(counter.get(), total);
        prop_assert_eq!(gauge.get(), total as i64 - increments.len() as i64);
    }
}

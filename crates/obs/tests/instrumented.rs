//! The decorator must be invisible: `InstrumentedScheduler<Asha>` on a
//! shared seed makes exactly the decisions bare `Asha` makes, and the
//! metrics its recorder accumulates agree with the scheduler's own rung
//! state.

use asha_core::{Asha, AshaConfig, Decision, Observation, Scheduler};
use asha_obs::{InstrumentedScheduler, RunRecorder};
use asha_space::{Scale, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-4, 1.0, Scale::Log)
        .discrete("layers", 2, 8)
        .build()
        .unwrap()
}

fn asha() -> Asha {
    Asha::new(space(), AshaConfig::new(1.0, 64.0, 4.0))
}

/// A deterministic synthetic loss: varies by trial and rung but needs no
/// benchmark model.
fn loss(trial: u64, rung: usize) -> f64 {
    ((trial * 7919) % 1009) as f64 / (rung + 1) as f64
}

#[test]
fn instrumented_asha_matches_bare_asha_decision_for_decision() {
    let mut bare = asha();
    let mut wrapped = InstrumentedScheduler::new(asha(), RunRecorder::new());
    let mut bare_rng = StdRng::seed_from_u64(42);
    let mut wrapped_rng = StdRng::seed_from_u64(42);

    for step in 0..500 {
        wrapped.set_time(step as f64);
        let a = bare.suggest(&mut bare_rng);
        let b = wrapped.suggest(&mut wrapped_rng);
        match (&a, &b) {
            (Decision::Run(ja), Decision::Run(jb)) => {
                assert_eq!(ja.trial, jb.trial, "step {step}");
                assert_eq!(ja.rung, jb.rung, "step {step}");
                assert_eq!(ja.resource, jb.resource, "step {step}");
                assert_eq!(ja.config, jb.config, "step {step}");
                let l = loss(ja.trial.0, ja.rung);
                bare.observe(Observation::for_job(ja, l));
                wrapped.observe(Observation::for_job(jb, l));
            }
            (Decision::Wait, Decision::Wait) | (Decision::Finished, Decision::Finished) => {}
            other => panic!("decisions diverged at step {step}: {other:?}"),
        }
    }

    // Two events per completed round trip (decision + job_start) plus one
    // job_end per observation.
    let (inner, recorder) = wrapped.into_parts();
    assert_eq!(inner.name(), bare.name());
    assert!(!recorder.is_empty());
}

#[test]
fn recorded_metrics_agree_with_ladder_state() {
    let mut wrapped = InstrumentedScheduler::new(asha(), RunRecorder::new());
    let mut rng = StdRng::seed_from_u64(7);
    for step in 0..400 {
        wrapped.set_time(step as f64);
        let Some(job) = wrapped.suggest(&mut rng).job() else {
            break;
        };
        let l = loss(job.trial.0, job.rung);
        wrapped.observe(Observation::for_job(&job, l));
    }

    let (inner, recorder) = wrapped.into_parts();
    let m = recorder.metrics();

    // Every decision issued a job (this setup never waits), and the driver
    // observed each job immediately, so starts == completions.
    assert_eq!(m.jobs_started.get(), m.jobs_completed.get());
    assert_eq!(m.busy_workers.value(), 0);
    assert!(m.busy_workers.min() >= 0);

    // The registry's per-rung occupancy (distinct trials with a completed
    // job) must equal the ladder's own record counts, and promotions out of
    // each rung must equal the ladder's promoted counts.
    let ladder = inner.ladder();
    for (rung_idx, rung) in ladder.rungs().iter().enumerate() {
        let occupancy = m.rung_occupancy.get(rung_idx).map_or(0, |g| g.value());
        assert_eq!(
            occupancy as usize,
            rung.len(),
            "occupancy mismatch at rung {rung_idx}"
        );
        let promoted = m.promotions_per_rung.get(rung_idx).map_or(0, |c| c.get());
        assert_eq!(
            promoted as usize,
            rung.promoted_count(),
            "promotion count mismatch at rung {rung_idx}"
        );
        // Backlog identity: completed = promoted out + still pending.
        let pending = m.pending_promotions.get(rung_idx).map_or(0, |g| g.value());
        assert_eq!(occupancy, promoted as i64 + pending);
    }

    // The decision counters partition the suggest calls.
    let d = &m.decisions;
    assert_eq!(
        d.promote.get() + d.grow_bottom.get(),
        m.jobs_started.get(),
        "every job came from a promote or grow decision"
    );
    assert!(d.promote.get() > 0, "expected some promotions in 400 steps");
}

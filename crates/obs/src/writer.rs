//! Streaming, durability-aware JSONL event-log writing.
//!
//! [`RunRecorder::write_jsonl`](crate::RunRecorder::write_jsonl) serializes
//! a finished in-memory run in one shot; this module covers the other two
//! needs: streaming events to disk *while* a run progresses, and making the
//! written bytes survive a crash. Durability is explicit — [`Durability`]
//! picks between flushing to the OS (survives a process crash) and fsyncing
//! (survives a machine crash) — and the writer flushes on drop so a cleanly
//! exiting process never loses buffered lines.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use asha_core::telemetry::Event;
pub use asha_core::Durability;

use crate::log::encode_event;

/// An append-only JSONL event-log writer with explicit durability.
///
/// Lines are buffered; [`JsonlWriter::commit`] (or drop) makes everything
/// appended so far durable at the configured [`Durability`] level. The
/// encoding matches [`encode_event`], so files written here parse back with
/// [`parse_jsonl`](crate::parse_jsonl) and are byte-identical to
/// [`RunRecorder::write_jsonl`](crate::RunRecorder::write_jsonl) output for
/// the same event stream.
#[derive(Debug)]
pub struct JsonlWriter {
    out: BufWriter<File>,
    path: PathBuf,
    durability: Durability,
    written: u64,
    /// Lines committed since the last fsync (drives
    /// [`Durability::EveryN`]'s cadence).
    since_sync: usize,
}

impl JsonlWriter {
    /// Create (truncating) a JSONL log at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>, durability: Durability) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlWriter {
            out: BufWriter::new(File::create(path)?),
            path: path.to_owned(),
            durability,
            written: 0,
            since_sync: 0,
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events appended so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Append one event as a JSONL line (buffered; see
    /// [`JsonlWriter::commit`]).
    pub fn append(&mut self, event: &Event) -> std::io::Result<()> {
        self.out.write_all(encode_event(event).as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Append one pre-encoded JSONL line (no trailing newline expected).
    ///
    /// For logs that are JSONL but not telemetry events — the service
    /// daemon's request/response trace streams through this, keeping every
    /// durability property of [`JsonlWriter::append`].
    pub fn append_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Make everything appended so far durable at the configured level:
    /// flush to the OS, plus `fsync` on [`Durability`]'s cadence (every
    /// commit under `Sync`, every Nth under `EveryN`, never under `Flush`).
    pub fn commit(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.since_sync += 1;
        if self.durability.fsync_due(self.since_sync) {
            self.out.get_ref().sync_all()?;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Commit and close, surfacing any final I/O error (drop would swallow
    /// it).
    pub fn finish(mut self) -> std::io::Result<()> {
        self.commit()
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        // Best effort: finish() reports errors, drop cannot.
        let _ = self.commit();
    }
}

/// Fsync `path` and its parent directory, upgrading an already-written log
/// to machine-crash durability (used by `RunRecorder::write_jsonl_durable`).
pub(crate) fn sync_file_and_dir(path: &Path) -> std::io::Result<()> {
    File::open(path)?.sync_all()?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Directory fsync is what makes the new file's entry durable on
            // POSIX; platforms that refuse to open directories degrade
            // gracefully to writeback.
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            time: seq as f64,
            kind: EventKind::WorkerIdle { idle: seq as usize },
        }
    }

    #[test]
    fn streamed_log_matches_batch_encoding() {
        let dir = std::env::temp_dir().join(format!("asha-obs-writer-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        let events: Vec<Event> = (0..4).map(ev).collect();
        {
            let mut w = JsonlWriter::create(&path, Durability::Sync).unwrap();
            for e in &events {
                w.append(e).unwrap();
            }
            assert_eq!(w.written(), 4);
            w.finish().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, crate::log::encode_jsonl(&events));
        assert_eq!(crate::log::parse_jsonl(&text).unwrap(), events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let dir = std::env::temp_dir().join(format!("asha-obs-writer-drop-{}", std::process::id()));
        let path = dir.join("events.jsonl");
        {
            let mut w = JsonlWriter::create(&path, Durability::Flush).unwrap();
            w.append(&ev(0)).unwrap();
            // No commit: drop must flush.
        }
        assert_eq!(
            crate::log::parse_jsonl(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The append-only JSONL event log: one compact JSON object per line, in
//! `seq` order, encoding exactly the [`Event`] stream a recorder saw.
//!
//! # Schema
//!
//! Every line carries `seq` (monotone, 0-based), `t` (timestamp on the
//! driving layer's clock), and `ev` (the kind name), followed by the kind's
//! fields in a fixed order:
//!
//! | `ev` | fields after `seq,t,ev` |
//! |---|---|
//! | `suggest` | `decision` (`"wait"` or `"finished"`) |
//! | `promote` | `trial, bracket, from, to, resource` |
//! | `grow_bottom` | `trial, bracket, resource` |
//! | `job_start` | `trial, bracket, rung, resource` |
//! | `job_end` | `trial, rung, resource, loss` (`null` = infinite loss) |
//! | `drop` | `trial, rung, cause` (`"drop"` or `"timeout"`) |
//! | `retry` | `trial, rung` |
//! | `worker_idle` | `idle` |
//!
//! The field order is part of the format: encoding is deterministic, so the
//! same seed produces a byte-identical log, and two logs can be diffed
//! line-by-line. Floats render in Rust's shortest-roundtrip `{}` form.
//! Decoding is by name, so extra fields added by future versions are
//! ignored rather than fatal.

use std::fmt;

use asha_core::telemetry::{DropCause, Event, EventKind, IdleKind};
use asha_metrics::JsonValue;

/// Encode one event as a compact single-line JSON object (no trailing
/// newline).
pub fn encode_event(event: &Event) -> String {
    event_to_json(event).render_compact()
}

/// Encode one event as compact JSON appended to `out` (no trailing
/// newline). Identical bytes to [`encode_event`]; callers on hot paths use
/// this to reuse one buffer across many events.
pub fn encode_event_into(out: &mut String, event: &Event) {
    event_to_json(event).render_compact_into(out);
}

/// Encode a slice of events as a JSONL document (one line per event,
/// trailing newline after the last).
pub fn encode_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        encode_event_into(&mut out, event);
        out.push('\n');
    }
    out
}

/// The [`JsonValue`] form of an event, with the schema's field order.
pub fn event_to_json(event: &Event) -> JsonValue {
    let mut fields = vec![
        ("seq".to_owned(), JsonValue::Int(event.seq)),
        ("t".to_owned(), JsonValue::Num(event.time)),
        (
            "ev".to_owned(),
            JsonValue::Str(event.kind.name().to_owned()),
        ),
    ];
    let mut int = |name: &str, v: u64| fields.push((name.to_owned(), JsonValue::Int(v)));
    match event.kind {
        EventKind::Suggest { decision } => fields.push((
            "decision".to_owned(),
            JsonValue::Str(decision.name().to_owned()),
        )),
        EventKind::Promote {
            trial,
            bracket,
            from,
            to,
            resource,
        } => {
            int("trial", trial);
            int("bracket", bracket as u64);
            int("from", from as u64);
            int("to", to as u64);
            fields.push(("resource".to_owned(), JsonValue::Num(resource)));
        }
        EventKind::GrowBottom {
            trial,
            bracket,
            resource,
        } => {
            int("trial", trial);
            int("bracket", bracket as u64);
            fields.push(("resource".to_owned(), JsonValue::Num(resource)));
        }
        EventKind::JobStart {
            trial,
            bracket,
            rung,
            resource,
        } => {
            int("trial", trial);
            int("bracket", bracket as u64);
            int("rung", rung as u64);
            fields.push(("resource".to_owned(), JsonValue::Num(resource)));
        }
        EventKind::JobEnd {
            trial,
            rung,
            resource,
            loss,
        } => {
            int("trial", trial);
            int("rung", rung as u64);
            fields.push(("resource".to_owned(), JsonValue::Num(resource)));
            // Non-finite losses (poisoned trials) encode as JSON null.
            fields.push(("loss".to_owned(), JsonValue::Num(loss)));
        }
        EventKind::Drop { trial, rung, cause } => {
            int("trial", trial);
            int("rung", rung as u64);
            fields.push(("cause".to_owned(), JsonValue::Str(cause.name().to_owned())));
        }
        EventKind::Retry { trial, rung } => {
            int("trial", trial);
            int("rung", rung as u64);
        }
        EventKind::WorkerIdle { idle } => int("idle", idle as u64),
    }
    JsonValue::Obj(fields)
}

/// Error decoding a JSONL event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event log line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LogError {}

/// Decode a JSONL document (as produced by [`encode_jsonl`]) back into
/// events. Blank lines are skipped; `seq` order is *not* enforced here (the
/// metrics registry and report tolerate arbitrary streams), only per-line
/// validity.
///
/// # Errors
///
/// Returns [`LogError`] with a 1-based line number for unparseable JSON,
/// unknown `ev` kinds, or missing/mistyped fields.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, LogError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_line(line, idx + 1)?);
    }
    Ok(events)
}

fn parse_line(line: &str, lineno: usize) -> Result<Event, LogError> {
    let fail = |msg: String| LogError { line: lineno, msg };
    let value = JsonValue::parse(line).map_err(|e| fail(e.to_string()))?;
    let want = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| fail(format!("missing field `{key}`")))
    };
    let want_u64 = |key: &str| {
        want(key)?
            .as_u64()
            .ok_or_else(|| fail(format!("field `{key}` is not an integer")))
    };
    let want_usize = |key: &str| want_u64(key).map(|v| v as usize);
    let want_f64 = |key: &str| {
        want(key)?
            .as_f64()
            .ok_or_else(|| fail(format!("field `{key}` is not a number")))
    };
    let want_str = |key: &str| {
        want(key)?
            .as_str()
            .ok_or_else(|| fail(format!("field `{key}` is not a string")))
    };

    let seq = want_u64("seq")?;
    let time = want_f64("t")?;
    let kind = match want_str("ev")? {
        "suggest" => EventKind::Suggest {
            decision: match want_str("decision")? {
                "wait" => IdleKind::Wait,
                "finished" => IdleKind::Finished,
                other => return Err(fail(format!("unknown decision `{other}`"))),
            },
        },
        "promote" => EventKind::Promote {
            trial: want_u64("trial")?,
            bracket: want_usize("bracket")?,
            from: want_usize("from")?,
            to: want_usize("to")?,
            resource: want_f64("resource")?,
        },
        "grow_bottom" => EventKind::GrowBottom {
            trial: want_u64("trial")?,
            bracket: want_usize("bracket")?,
            resource: want_f64("resource")?,
        },
        "job_start" => EventKind::JobStart {
            trial: want_u64("trial")?,
            bracket: want_usize("bracket")?,
            rung: want_usize("rung")?,
            resource: want_f64("resource")?,
        },
        "job_end" => EventKind::JobEnd {
            trial: want_u64("trial")?,
            rung: want_usize("rung")?,
            resource: want_f64("resource")?,
            // `null` is how non-finite losses were encoded.
            loss: if want("loss")?.is_null() {
                f64::INFINITY
            } else {
                want_f64("loss")?
            },
        },
        "drop" => EventKind::Drop {
            trial: want_u64("trial")?,
            rung: want_usize("rung")?,
            cause: match want_str("cause")? {
                "drop" => DropCause::Dropped,
                "timeout" => DropCause::Timeout,
                other => return Err(fail(format!("unknown drop cause `{other}`"))),
            },
        },
        "retry" => EventKind::Retry {
            trial: want_u64("trial")?,
            rung: want_usize("rung")?,
        },
        "worker_idle" => EventKind::WorkerIdle {
            idle: want_usize("idle")?,
        },
        other => return Err(fail(format!("unknown event kind `{other}`"))),
    };
    Ok(Event { seq, time, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let kinds = [
            EventKind::GrowBottom {
                trial: 0,
                bracket: 0,
                resource: 1.0,
            },
            EventKind::JobStart {
                trial: 0,
                bracket: 0,
                rung: 0,
                resource: 1.0,
            },
            EventKind::Suggest {
                decision: IdleKind::Wait,
            },
            EventKind::WorkerIdle { idle: 24 },
            EventKind::Drop {
                trial: 0,
                rung: 0,
                cause: DropCause::Dropped,
            },
            EventKind::Retry { trial: 0, rung: 0 },
            EventKind::JobStart {
                trial: 0,
                bracket: 0,
                rung: 0,
                resource: 1.0,
            },
            EventKind::JobEnd {
                trial: 0,
                rung: 0,
                resource: 1.0,
                loss: 0.421875,
            },
            EventKind::Promote {
                trial: 0,
                bracket: 0,
                from: 0,
                to: 1,
                resource: 4.0,
            },
            EventKind::JobEnd {
                trial: 0,
                rung: 1,
                resource: 4.0,
                loss: f64::INFINITY,
            },
            EventKind::Suggest {
                decision: IdleKind::Finished,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                time: i as f64 * 0.5,
                kind,
            })
            .collect()
    }

    #[test]
    fn every_kind_round_trips() {
        let events = sample_events();
        let text = encode_jsonl(&events);
        let back = parse_jsonl(&text).unwrap();
        // Infinite loss encodes as null and decodes as infinity; everything
        // else must round-trip exactly.
        assert_eq!(back, events);
    }

    #[test]
    fn lines_use_the_documented_field_order() {
        let line = encode_event(&Event {
            seq: 8,
            time: 4.0,
            kind: EventKind::Promote {
                trial: 0,
                bracket: 0,
                from: 0,
                to: 1,
                resource: 4.0,
            },
        });
        assert_eq!(
            line,
            r#"{"seq":8,"t":4,"ev":"promote","trial":0,"bracket":0,"from":0,"to":1,"resource":4}"#
        );
    }

    #[test]
    fn infinite_loss_encodes_as_null() {
        let line = encode_event(&Event {
            seq: 0,
            time: 0.0,
            kind: EventKind::JobEnd {
                trial: 3,
                rung: 1,
                resource: 4.0,
                loss: f64::INFINITY,
            },
        });
        assert!(line.ends_with(r#""loss":null}"#), "{line}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let events = sample_events();
        let text = format!("\n{}\n\n", encode_jsonl(&events));
        assert_eq!(parse_jsonl(&text).unwrap(), events);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let good = encode_event(&Event {
            seq: 0,
            time: 0.0,
            kind: EventKind::WorkerIdle { idle: 1 },
        });
        for (text, needle) in [
            (format!("{good}\nnot json"), "line 2"),
            (
                format!("{good}\n{{\"seq\":1,\"t\":0,\"ev\":\"bogus\"}}"),
                "unknown event kind",
            ),
            (
                format!("{good}\n{{\"seq\":1,\"t\":0,\"ev\":\"retry\",\"trial\":0}}"),
                "missing field `rung`",
            ),
            (
                "{\"seq\":-1,\"t\":0,\"ev\":\"worker_idle\",\"idle\":0}".to_owned(),
                "not an integer",
            ),
        ] {
            let err = parse_jsonl(&text).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}

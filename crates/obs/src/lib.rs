//! Structured run telemetry for asha: collect the scheduling-event stream
//! defined in [`asha_core::telemetry`], maintain online metrics over it, and
//! turn event logs into reports.
//!
//! The paper's central claims are about scheduling dynamics — how quickly
//! promotable configurations move up the rungs and how busy a large worker
//! pool stays while they do. This crate makes those dynamics inspectable
//! for any run:
//!
//! * [`RunRecorder`] — the collecting [`Recorder`]: buffers every event,
//!   stamps gap-free sequence numbers, and folds each event into a
//!   [`MetricsRegistry`] as it arrives. Plug it into
//!   `ClusterSim::run_recorded`, `ParallelTuner::run_recorded`, or an
//!   [`InstrumentedScheduler`].
//! * [`log`] — the JSONL event-log codec: deterministic one-line-per-event
//!   encoding (same seed ⇒ byte-identical log) and a strict parser.
//! * [`MetricsRegistry`] — counters (decisions by kind, promotions per
//!   rung), gauges (rung occupancy, pending promotions, busy workers), and
//!   fixed-bucket [`Histogram`]s (promotion wait, job latency, retry queue
//!   delay), all updated in O(1) per event.
//! * [`RunReport`] — replays an event stream into a per-rung promotion
//!   table, latency quantiles, and a worker-utilization timeline, as text
//!   or JSON (consumed by the `run_report` binary in `asha-bench`).
//! * [`LogTail`] — follows a live JSONL log across appends, torn tails,
//!   and crash-recovery rewrites (the service layer's streaming
//!   subscriptions are built on it).
//!
//! # Example
//!
//! Record a simulated run and summarize it:
//!
//! ```
//! use asha_obs::RunRecorder;
//! use asha_core::telemetry::EventKind;
//! use asha_core::Recorder as _;
//!
//! let mut recorder = RunRecorder::new();
//! recorder.record(
//!     0.0,
//!     EventKind::GrowBottom { trial: 0, bracket: 0, resource: 1.0 },
//! );
//! recorder.record(
//!     0.0,
//!     EventKind::JobStart { trial: 0, bracket: 0, rung: 0, resource: 1.0 },
//! );
//! recorder.record(
//!     2.5,
//!     EventKind::JobEnd { trial: 0, rung: 0, resource: 1.0, loss: 0.4 },
//! );
//!
//! let log = recorder.to_jsonl();
//! assert_eq!(log.lines().count(), 3);
//! let report = recorder.report(Some(1));
//! assert_eq!(report.metrics().jobs_completed.get(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod metrics;
mod recorder;
mod report;
pub mod shared;
mod tail;
mod writer;

pub use crate::log::{
    encode_event, encode_event_into, encode_jsonl, event_to_json, parse_jsonl, LogError,
};
pub use crate::metrics::{Counter, DecisionCounters, Gauge, Histogram, MetricsRegistry};
pub use crate::recorder::RunRecorder;
pub use crate::report::{RunReport, REPORT_SCHEMA, TIMELINE_BINS};
pub use crate::shared::{HistogramSnapshot, SharedCounter, SharedGauge, SharedHistogram};
pub use crate::tail::{LogTail, TailChunk};
pub use crate::writer::{Durability, JsonlWriter};

// Re-export the core vocabulary so downstream users need only this crate.
pub use asha_core::telemetry::{
    DropCause, Event, EventKind, IdleKind, InstrumentedScheduler, NoopRecorder, Recorder,
};

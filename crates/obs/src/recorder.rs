//! The collecting recorder: buffers the event stream, stamps sequence
//! numbers, and keeps the online metrics registry up to date as events
//! arrive.

use std::io::Write;
use std::path::Path;

use asha_core::telemetry::{Event, EventKind, Recorder};

use crate::log::encode_jsonl;
use crate::metrics::MetricsRegistry;
use crate::report::RunReport;

/// A [`Recorder`] that collects every event into memory and folds it into a
/// [`MetricsRegistry`] as it arrives.
///
/// Sequence numbers are assigned here (0-based, gap-free), so emitters only
/// supply timestamps. In debug builds the recorder asserts the contract the
/// execution layers promise: timestamps never decrease within one run.
/// Recording performs one `Vec` push and an O(1) registry update per event —
/// no per-event allocation once the buffer has warmed up.
#[derive(Debug, Clone, Default)]
pub struct RunRecorder {
    events: Vec<Event>,
    metrics: MetricsRegistry,
    next_seq: u64,
    last_time: f64,
}

impl RunRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        RunRecorder {
            metrics: MetricsRegistry::new(),
            ..Default::default()
        }
    }

    /// The recorded events, in `seq` order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The online metrics derived from the stream so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Encode the whole run as a JSONL document.
    pub fn to_jsonl(&self) -> String {
        encode_jsonl(&self.events)
    }

    /// Write the JSONL event log to `path`, creating parent directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(self.to_jsonl().as_bytes())?;
        out.flush()
    }

    /// Like [`RunRecorder::write_jsonl`], but also fsync the file and its
    /// parent directory so the log survives a machine crash, not just a
    /// process crash.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_jsonl_durable(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        self.write_jsonl(path)?;
        crate::writer::sync_file_and_dir(path)
    }

    /// Summarize the recorded run (see [`RunReport`]). `workers` sizes the
    /// utilization denominator when the caller knows the pool size.
    pub fn report(&self, workers: Option<usize>) -> RunReport {
        RunReport::from_events(&self.events, workers)
    }

    /// Consume the recorder, returning the raw event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for RunRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, now: f64, kind: EventKind) {
        debug_assert!(
            now >= self.last_time,
            "telemetry clock went backwards: {now} < {}",
            self.last_time
        );
        self.last_time = now;
        let event = Event {
            seq: self.next_seq,
            time: now,
            kind,
        };
        debug_assert!(
            self.events.last().is_none_or(|prev| event.seq > prev.seq),
            "sequence numbers must strictly increase"
        );
        self.next_seq += 1;
        self.metrics.apply(&event);
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::IdleKind;

    #[test]
    fn assigns_gap_free_sequence_numbers() {
        let mut rec = RunRecorder::new();
        assert!(rec.enabled());
        assert!(rec.is_empty());
        for i in 0..5 {
            rec.record(i as f64, EventKind::WorkerIdle { idle: i });
        }
        assert_eq!(rec.len(), 5);
        let seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(rec.metrics().idle_rounds.get(), 5);
    }

    #[test]
    #[should_panic(expected = "clock went backwards")]
    #[cfg(debug_assertions)]
    fn rejects_time_travel_in_debug_builds() {
        let mut rec = RunRecorder::new();
        rec.record(1.0, EventKind::WorkerIdle { idle: 0 });
        rec.record(
            0.5,
            EventKind::Suggest {
                decision: IdleKind::Wait,
            },
        );
    }

    #[test]
    fn jsonl_output_round_trips() {
        let mut rec = RunRecorder::new();
        rec.record(
            0.0,
            EventKind::GrowBottom {
                trial: 0,
                bracket: 0,
                resource: 1.0,
            },
        );
        rec.record(
            0.0,
            EventKind::JobStart {
                trial: 0,
                bracket: 0,
                rung: 0,
                resource: 1.0,
            },
        );
        let text = rec.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = crate::log::parse_jsonl(&text).unwrap();
        assert_eq!(back, rec.events());
    }

    #[test]
    fn writes_log_to_disk() {
        let dir = std::env::temp_dir().join("asha-obs-recorder-test");
        let path = dir.join("events.jsonl");
        let mut rec = RunRecorder::new();
        rec.record(0.0, EventKind::WorkerIdle { idle: 2 });
        rec.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, rec.to_jsonl());
        std::fs::remove_dir_all(&dir).ok();
    }
}

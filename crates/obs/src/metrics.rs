//! Online metrics maintained from the telemetry event stream: counters,
//! gauges, and fixed-bucket histograms, all with O(1) updates so recording a
//! 500-worker simulation stays cheap.

use std::collections::HashMap;

use asha_core::telemetry::{Event, EventKind, IdleKind};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A signed gauge tracking its running minimum and maximum.
///
/// Telemetry gauges (rung occupancy, pending promotions, busy workers) are
/// counts of real things, so a well-formed event stream never drives them
/// negative — `min()` staying `>= 0` is one of the registry's tested
/// invariants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    min: i64,
    max: i64,
}

impl Gauge {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&mut self) {
        self.add(-1);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&mut self, delta: i64) {
        self.value += delta;
        self.min = self.min.min(self.value);
        self.max = self.max.max(self.value);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Lowest value ever held (starts at 0).
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Highest value ever held (starts at 0).
    pub fn max(&self) -> i64 {
        self.max
    }
}

/// A fixed-bucket histogram: cumulative counts over a static set of upper
/// bucket bounds, plus exact count/sum/min/max. `observe` is O(log buckets)
/// (a binary search over ~24 bounds); no allocation after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper (inclusive) bound of each bucket, strictly increasing.
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "need at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bounds `first * factor^i` for `i in 0..n` — the default
    /// shape for latency-like quantities whose scale is unknown a priori.
    ///
    /// # Panics
    ///
    /// Panics if `first <= 0`, `factor <= 1`, or `n == 0`.
    pub fn exponential(first: f64, factor: f64, n: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0 && n > 0, "invalid bucket spec");
        Histogram::new((0..n).map(|i| first * factor.powi(i as i32)).collect())
    }

    /// Latency buckets spanning 1e-3 .. ~4e3 time units (24 doubling
    /// buckets), used for every duration histogram in the registry.
    pub fn latency() -> Self {
        Histogram::exponential(1e-3, 2.0, 24)
    }
}

impl Default for Histogram {
    /// The default latency buckets ([`Histogram::latency`]).
    fn default() -> Self {
        Histogram::latency()
    }
}

impl Histogram {
    /// Record one observation. Non-finite values land in the overflow
    /// bucket (and are excluded from `sum`, like NaN cells in CSV export).
    pub fn observe(&mut self, value: f64) {
        let idx = if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.bounds.partition_point(|&b| b < value)
        } else {
            self.counts.len() - 1
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest finite observation (infinite when none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest finite observation (`-inf` when none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-bucket `(upper_bound, count)` pairs; the final entry is the
    /// overflow bucket with an infinite bound.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`): the bound of
    /// the first bucket whose cumulative count reaches `ceil(q * n)`,
    /// clamped to the exact observed maximum. NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bound, count) in self.buckets() {
            cumulative += count;
            if cumulative >= target {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// Per-kind decision counters (the four outcomes of a suggest call).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    /// Suggest calls that promoted a trial.
    pub promote: Counter,
    /// Suggest calls that grew the bottom rung.
    pub grow_bottom: Counter,
    /// Suggest calls that returned `Wait`.
    pub wait: Counter,
    /// Suggest calls that returned `Finished`.
    pub finished: Counter,
}

/// The online metrics registry: every gauge, counter, and histogram the
/// telemetry layer maintains, updated in O(1) per event by
/// [`MetricsRegistry::apply`].
///
/// The registry is derived *only* from the event stream, so replaying a
/// JSONL log through it reproduces exactly the metrics the live run saw —
/// that is what makes `run_report` trustworthy.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Suggest outcomes by kind.
    pub decisions: DecisionCounters,
    /// Promotions out of each rung (index = source rung).
    pub promotions_per_rung: Vec<Counter>,
    /// Distinct trials with a completed job at each rung.
    pub rung_occupancy: Vec<Gauge>,
    /// Trials completed at a rung and not (yet) promoted out of it — the
    /// depth of the promotion backlog per rung. The top rung never promotes,
    /// so its backlog grows for the whole run by construction.
    pub pending_promotions: Vec<Gauge>,
    /// Workers currently executing a job.
    pub busy_workers: Gauge,
    /// Job attempts started (including retries).
    pub jobs_started: Counter,
    /// Jobs completed (a loss reached the scheduler).
    pub jobs_completed: Counter,
    /// Attempts whose result was lost (drop or timeout).
    pub jobs_dropped: Counter,
    /// Re-issues of dropped attempts.
    pub jobs_retried: Counter,
    /// Scheduling rounds that left workers idle.
    pub idle_rounds: Counter,
    /// Time from a trial's first completion at a rung to its promotion out
    /// of that rung — the paper's "how long do promotable configs wait".
    pub promotion_wait: Histogram,
    /// Time from an attempt's start to its completion.
    pub job_latency: Histogram,
    /// Time a dropped job waited before being re-issued.
    pub queue_delay: Histogram,
    /// First resource target seen for each rung (for the report table).
    rung_resource: Vec<f64>,
    /// Busy-worker time integral (for mean utilization).
    busy_integral: f64,
    last_time: f64,
    end_time: f64,
    start_times: HashMap<(u64, usize), f64>,
    complete_times: HashMap<(u64, usize), f64>,
    drop_times: HashMap<(u64, usize), f64>,
}

impl MetricsRegistry {
    /// An empty registry with the default latency buckets.
    pub fn new() -> Self {
        MetricsRegistry {
            promotion_wait: Histogram::latency(),
            job_latency: Histogram::latency(),
            queue_delay: Histogram::latency(),
            ..Default::default()
        }
    }

    fn at_rung<T: Default + Clone>(vec: &mut Vec<T>, rung: usize) -> &mut T {
        if rung >= vec.len() {
            vec.resize(rung + 1, T::default());
        }
        &mut vec[rung]
    }

    /// Fold one event into the registry. Events must arrive in `seq` order
    /// with non-decreasing times (what any [`Recorder`] is guaranteed);
    /// malformed streams (promotions without completions, ends without
    /// starts) are tolerated without panicking or driving gauges negative.
    ///
    /// [`Recorder`]: asha_core::telemetry::Recorder
    pub fn apply(&mut self, event: &Event) {
        // Time-weighted busy integral: account the interval since the last
        // event at the old busy level before applying this transition.
        let dt = (event.time - self.last_time).max(0.0);
        self.busy_integral += self.busy_workers.value() as f64 * dt;
        self.last_time = event.time;
        self.end_time = self.end_time.max(event.time);

        match event.kind {
            EventKind::Suggest { decision } => match decision {
                IdleKind::Wait => self.decisions.wait.inc(),
                IdleKind::Finished => self.decisions.finished.inc(),
            },
            EventKind::Promote { trial, from, .. } => {
                self.decisions.promote.inc();
                Self::at_rung(&mut self.promotions_per_rung, from).inc();
                // Promotion latency and backlog only make sense relative to
                // a recorded completion; a promote with no completion (a
                // hostile or truncated log) is counted but otherwise ignored.
                if let Some(done) = self.complete_times.remove(&(trial, from)) {
                    self.promotion_wait.observe(event.time - done);
                    Self::at_rung(&mut self.pending_promotions, from).dec();
                }
            }
            EventKind::GrowBottom { .. } => self.decisions.grow_bottom.inc(),
            EventKind::JobStart {
                trial,
                rung,
                resource,
                ..
            } => {
                self.jobs_started.inc();
                self.busy_workers.inc();
                let slot = Self::at_rung(&mut self.rung_resource, rung);
                if *slot == 0.0 {
                    *slot = resource;
                }
                self.start_times.insert((trial, rung), event.time);
            }
            EventKind::JobEnd { trial, rung, .. } => {
                self.jobs_completed.inc();
                // Only a matched start frees a worker: executors report a
                // poisoned job_end after its final drop already freed it.
                if let Some(started) = self.start_times.remove(&(trial, rung)) {
                    self.busy_workers.dec();
                    self.job_latency.observe(event.time - started);
                }
                if let std::collections::hash_map::Entry::Vacant(slot) =
                    self.complete_times.entry((trial, rung))
                {
                    slot.insert(event.time);
                    Self::at_rung(&mut self.rung_occupancy, rung).inc();
                    Self::at_rung(&mut self.pending_promotions, rung).inc();
                }
            }
            EventKind::Drop { trial, rung, .. } => {
                self.jobs_dropped.inc();
                if self.start_times.remove(&(trial, rung)).is_some() {
                    self.busy_workers.dec();
                }
                self.drop_times.insert((trial, rung), event.time);
            }
            EventKind::Retry { trial, rung } => {
                self.jobs_retried.inc();
                if let Some(dropped) = self.drop_times.remove(&(trial, rung)) {
                    self.queue_delay.observe(event.time - dropped);
                }
            }
            EventKind::WorkerIdle { .. } => self.idle_rounds.inc(),
        }
    }

    /// Timestamp of the last applied event.
    pub fn end_time(&self) -> f64 {
        self.end_time
    }

    /// The busy-worker time integral so far.
    pub fn busy_integral(&self) -> f64 {
        self.busy_integral
    }

    /// Mean worker utilization over `[0, end_time]` for a pool of `workers`
    /// (NaN before any event). Clamped to 1.0: the integral is a sum of
    /// thousands of `busy * dt` terms, so a fully-busy pool can otherwise
    /// land a few ulps above the exact ratio.
    pub fn mean_utilization(&self, workers: usize) -> f64 {
        let mean = self.busy_integral / (workers.max(1) as f64 * self.end_time);
        if mean > 1.0 {
            1.0
        } else {
            mean
        }
    }

    /// First resource target observed at `rung`, if any job started there.
    pub fn rung_resource(&self, rung: usize) -> Option<f64> {
        self.rung_resource.get(rung).copied().filter(|&r| r != 0.0)
    }

    /// Number of rungs any metric has touched.
    pub fn rung_count(&self) -> usize {
        self.promotions_per_rung
            .len()
            .max(self.rung_occupancy.len())
            .max(self.pending_promotions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::DropCause;

    fn ev(seq: u64, time: f64, kind: EventKind) -> Event {
        Event { seq, time, kind }
    }

    #[test]
    fn gauge_tracks_min_and_max() {
        let mut g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        g.dec();
        g.dec();
        assert_eq!(g.value(), -1);
        assert_eq!(g.max(), 2);
        assert_eq!(g.min(), -1);
    }

    #[test]
    fn histogram_counts_sum_to_total() {
        let mut h = Histogram::latency();
        for v in [0.0005, 0.1, 3.0, 1e9, f64::INFINITY, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let bucket_sum: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(bucket_sum, 6);
        assert_eq!(h.min(), 0.0005);
        assert_eq!(h.max(), 1e9);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let mut h = Histogram::exponential(1.0, 2.0, 10);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        assert!((50.0..=64.0).contains(&p50), "p50 {p50}");
        assert!((95.0..=100.0).contains(&p95), "p95 {p95}");
        assert!(p50 <= p95);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantile_is_nan() {
        let h = Histogram::latency();
        assert!(h.quantile(0.5).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn job_lifecycle_updates_gauges_and_latency() {
        let mut m = MetricsRegistry::new();
        m.apply(&ev(
            0,
            0.0,
            EventKind::GrowBottom {
                trial: 0,
                bracket: 0,
                resource: 1.0,
            },
        ));
        m.apply(&ev(
            1,
            0.0,
            EventKind::JobStart {
                trial: 0,
                bracket: 0,
                rung: 0,
                resource: 1.0,
            },
        ));
        assert_eq!(m.busy_workers.value(), 1);
        m.apply(&ev(
            2,
            2.0,
            EventKind::JobEnd {
                trial: 0,
                rung: 0,
                resource: 1.0,
                loss: 0.4,
            },
        ));
        assert_eq!(m.busy_workers.value(), 0);
        assert_eq!(m.job_latency.count(), 1);
        assert_eq!(m.job_latency.max(), 2.0);
        assert_eq!(m.rung_occupancy[0].value(), 1);
        assert_eq!(m.pending_promotions[0].value(), 1);
        m.apply(&ev(
            3,
            5.0,
            EventKind::Promote {
                trial: 0,
                bracket: 0,
                from: 0,
                to: 1,
                resource: 4.0,
            },
        ));
        assert_eq!(m.pending_promotions[0].value(), 0);
        assert_eq!(m.promotion_wait.count(), 1);
        assert_eq!(m.promotion_wait.max(), 3.0);
        assert_eq!(m.promotions_per_rung[0].get(), 1);
        // Busy for 2 of 5 time units on 1 worker.
        assert!((m.mean_utilization(1) - 0.4).abs() < 1e-12);
        assert_eq!(m.rung_resource(0), Some(1.0));
        assert_eq!(m.rung_resource(1), None);
    }

    #[test]
    fn drop_retry_cycle_keeps_gauges_non_negative() {
        let mut m = MetricsRegistry::new();
        let start = |trial| EventKind::JobStart {
            trial,
            bracket: 0,
            rung: 0,
            resource: 1.0,
        };
        m.apply(&ev(0, 0.0, start(0)));
        m.apply(&ev(
            1,
            1.0,
            EventKind::Drop {
                trial: 0,
                rung: 0,
                cause: DropCause::Dropped,
            },
        ));
        assert_eq!(m.busy_workers.value(), 0);
        m.apply(&ev(2, 1.5, EventKind::Retry { trial: 0, rung: 0 }));
        m.apply(&ev(3, 1.5, start(0)));
        m.apply(&ev(
            4,
            3.0,
            EventKind::JobEnd {
                trial: 0,
                rung: 0,
                resource: 1.0,
                loss: 0.2,
            },
        ));
        assert_eq!(m.busy_workers.value(), 0);
        assert_eq!(m.busy_workers.min(), 0);
        assert_eq!(m.queue_delay.count(), 1);
        assert_eq!(m.queue_delay.max(), 0.5);
        assert_eq!(m.jobs_dropped.get(), 1);
        assert_eq!(m.jobs_retried.get(), 1);
    }

    #[test]
    fn hostile_streams_never_drive_gauges_negative() {
        // Ends without starts, promotes without completions, double drops.
        let mut m = MetricsRegistry::new();
        m.apply(&ev(
            0,
            0.0,
            EventKind::JobEnd {
                trial: 9,
                rung: 3,
                resource: 1.0,
                loss: 0.1,
            },
        ));
        m.apply(&ev(
            1,
            0.0,
            EventKind::Promote {
                trial: 42,
                bracket: 0,
                from: 5,
                to: 6,
                resource: 8.0,
            },
        ));
        m.apply(&ev(
            2,
            0.0,
            EventKind::Drop {
                trial: 1,
                rung: 0,
                cause: DropCause::Timeout,
            },
        ));
        assert!(m.busy_workers.min() >= 0);
        assert!(m.pending_promotions.iter().all(|g| g.min() >= 0));
        assert!(m.rung_occupancy.iter().all(|g| g.min() >= 0));
    }
}

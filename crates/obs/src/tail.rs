//! Incremental tailing of a live JSONL log.
//!
//! A [`LogTail`] follows a JSONL file that another process (or thread) is
//! appending to — an experiment's WAL, a streamed event log — and yields
//! each *complete* line exactly once. Two realities of live logs shape the
//! API:
//!
//! * **Torn tails.** The writer may be mid-append when we poll, leaving a
//!   final partial line. The tail never yields a line until its trailing
//!   newline has landed, so a torn tail is simply "not yet".
//! * **Truncation / rewrite.** Crash recovery rewrites a WAL in place
//!   (temp file + rename), discarding a suffix. The tail detects the file
//!   shrinking below its read offset, rewinds to the start, and reports the
//!   rewind so the consumer can reset any derived state.
//!
//! The tail re-opens the file on every poll, so it also survives the
//! rename-over-inode pattern used by crash-safe rewriters.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// What one [`LogTail::poll`] observed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TailChunk {
    /// Complete lines (without their trailing newline), in file order.
    pub lines: Vec<String>,
    /// True when the file shrank below the previous offset (it was
    /// truncated or rewritten) and the tail rewound to the start: `lines`
    /// begins at byte 0 again and the consumer should reset derived state.
    pub rewound: bool,
}

/// Follows a JSONL file across appends, truncations, and rewrites.
#[derive(Debug)]
pub struct LogTail {
    path: PathBuf,
    /// Byte offset of the first byte not yet consumed as a complete line.
    offset: u64,
    /// Bytes read past `offset` that do not yet end in a newline.
    partial: Vec<u8>,
}

impl LogTail {
    /// Tail `path` from the beginning (the first poll yields every complete
    /// line already in the file).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        LogTail {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of the next unconsumed line start.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read any new complete lines. A missing file is not an error — the
    /// writer may not have created it yet — and yields an empty chunk.
    pub fn poll(&mut self) -> std::io::Result<TailChunk> {
        self.poll_to(u64::MAX)
    }

    /// Like [`LogTail::poll`], but never reads past byte offset `limit`.
    ///
    /// Used when several tails follow one file and a lagging reader must
    /// not overtake the lead reader's offset (e.g. a subscriber catching up
    /// to a shared cursor). Rewind detection still compares against the
    /// file's *real* length, so a truncating rewrite is noticed even when
    /// it happens beyond the limit.
    pub fn poll_to(&mut self, limit: u64) -> std::io::Result<TailChunk> {
        let mut file = match std::fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(TailChunk::default()),
            Err(e) => return Err(e),
        };
        let real_len = file.metadata()?.len();
        let len = real_len.min(limit);
        let mut chunk = TailChunk::default();
        if real_len < self.offset {
            // The file was truncated or rewritten shorter: start over.
            self.offset = 0;
            self.partial.clear();
            chunk.rewound = true;
        }
        if len <= self.offset {
            return Ok(chunk);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut buf)?;

        // Consume complete lines; anything after the last newline is a torn
        // tail that stays pending until a later poll completes it.
        let mut start = 0usize;
        for (i, &b) in buf.iter().enumerate() {
            if b == b'\n' {
                let mut line = std::mem::take(&mut self.partial);
                line.extend_from_slice(&buf[start..i]);
                self.offset += (i + 1 - start) as u64;
                start = i + 1;
                let text = String::from_utf8_lossy(&line).into_owned();
                if !text.trim().is_empty() {
                    chunk.lines.push(text);
                }
            }
        }
        if start < buf.len() {
            // A torn tail was read but not consumed: remember the bytes and
            // advance the offset past them so the next poll reads only what
            // the writer appends after this point.
            self.partial.extend_from_slice(&buf[start..]);
            self.offset += (buf.len() - start) as u64;
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("asha-obs-tail-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.jsonl")
    }

    #[test]
    fn yields_lines_incrementally_and_holds_torn_tail() {
        let path = tmpfile("incremental");
        let mut tail = LogTail::new(&path);
        assert_eq!(tail.poll().unwrap(), TailChunk::default(), "missing file");

        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"torn").unwrap();
        let chunk = tail.poll().unwrap();
        assert_eq!(chunk.lines, vec!["{\"a\":1}", "{\"b\":2}"]);
        assert!(!chunk.rewound);
        assert!(tail.poll().unwrap().lines.is_empty(), "torn tail pending");

        // Completing the torn line releases it in one piece.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"\":3}\n").unwrap();
        drop(f);
        assert_eq!(tail.poll().unwrap().lines, vec!["{\"torn\":3}"]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn bounded_poll_stops_at_the_limit() {
        let path = tmpfile("bounded");
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n").unwrap();
        let mut tail = LogTail::new(&path);
        // The limit cuts mid-line: only the complete lines before it yield,
        // and the cut prefix stays pending as a torn tail.
        let chunk = tail.poll_to(10).unwrap();
        assert_eq!(chunk.lines, vec!["{\"a\":1}"]);
        assert_eq!(tail.offset(), 10);
        // Raising the limit releases the rest, including the held prefix.
        let chunk = tail.poll_to(u64::MAX).unwrap();
        assert_eq!(chunk.lines, vec!["{\"b\":2}", "{\"c\":3}"]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn rewinds_after_truncating_rewrite() {
        let path = tmpfile("rewind");
        let mut tail = LogTail::new(&path);
        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n").unwrap();
        assert_eq!(tail.poll().unwrap().lines.len(), 3);

        // Crash recovery rewrites the log shorter (rename-over pattern).
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "{\"a\":1}\n").unwrap();
        std::fs::rename(&tmp, &path).unwrap();
        let chunk = tail.poll().unwrap();
        assert!(chunk.rewound);
        assert_eq!(chunk.lines, vec!["{\"a\":1}"]);

        // Appends after the rewind flow normally again.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"d\":4}\n").unwrap();
        drop(f);
        let chunk = tail.poll().unwrap();
        assert!(!chunk.rewound);
        assert_eq!(chunk.lines, vec!["{\"d\":4}"]);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}

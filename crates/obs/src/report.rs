//! Run reports: replay an event stream into a human-readable summary and a
//! machine-readable JSON document.
//!
//! A report is derived entirely from the event log, so `run_report` applied
//! to a written JSONL file reproduces exactly what a live
//! [`RunRecorder`](crate::RunRecorder) would have summarized.

use std::fmt::Write as _;

use asha_core::telemetry::Event;
use asha_metrics::JsonValue;

use crate::metrics::{Histogram, MetricsRegistry};

/// Version tag of the JSON report schema.
pub const REPORT_SCHEMA: &str = "asha-run-report-v1";

/// A summarized run: the final metrics registry plus the busy-worker step
/// function needed for the utilization timeline.
#[derive(Debug, Clone)]
pub struct RunReport {
    metrics: MetricsRegistry,
    workers: Option<usize>,
    events: usize,
    /// `(time, busy)` after every change in the busy-worker count.
    busy_steps: Vec<(f64, i64)>,
}

impl RunReport {
    /// Replay `events` (in stream order) into a report. `workers` is the
    /// pool size for utilization percentages; when unknown, the peak
    /// concurrent busy count is used as the denominator.
    pub fn from_events(events: &[Event], workers: Option<usize>) -> Self {
        let mut metrics = MetricsRegistry::new();
        let mut busy_steps = Vec::new();
        let mut last_busy = 0i64;
        for event in events {
            metrics.apply(event);
            let busy = metrics.busy_workers.value();
            if busy != last_busy {
                busy_steps.push((event.time, busy));
                last_busy = busy;
            }
        }
        RunReport {
            metrics,
            workers,
            events: events.len(),
            busy_steps,
        }
    }

    /// The final metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Number of events summarized.
    pub fn event_count(&self) -> usize {
        self.events
    }

    /// The utilization denominator: the configured pool size, or the peak
    /// concurrent busy count when the pool size is unknown.
    pub fn worker_denominator(&self) -> usize {
        self.workers
            .unwrap_or_else(|| self.metrics.busy_workers.max().max(0) as usize)
            .max(1)
    }

    /// Mean fraction of the pool kept busy over `[0, end_time]` (NaN for an
    /// empty run).
    pub fn mean_utilization(&self) -> f64 {
        self.metrics.mean_utilization(self.worker_denominator())
    }

    /// Mean utilization per time bin: `bins` equal slices of
    /// `[0, end_time]`, each the time-weighted average busy fraction within
    /// that slice. Empty when the run has no duration.
    pub fn utilization_timeline(&self, bins: usize) -> Vec<f64> {
        let end = self.metrics.end_time();
        if bins == 0 || end <= 0.0 {
            return Vec::new();
        }
        let width = end / bins as f64;
        let denom = self.worker_denominator() as f64;
        let mut integral = vec![0.0f64; bins];
        // Accumulate each constant-busy interval of the step function into
        // every bin it overlaps. A boundary-walking cursor would be O(n)
        // instead of O(n * bins), but its termination hinges on exact
        // floating-point bin arithmetic; reports are built once per run, so
        // the simple overlap scan wins.
        {
            let mut add = |t0: f64, t1: f64, busy: i64| {
                if busy == 0 || t1 <= t0 {
                    return;
                }
                for (bin, slot) in integral.iter_mut().enumerate() {
                    let lo = width * bin as f64;
                    let hi = if bin + 1 == bins {
                        end
                    } else {
                        width * (bin + 1) as f64
                    };
                    let overlap = t1.min(hi) - t0.max(lo);
                    if overlap > 0.0 {
                        *slot += busy as f64 * overlap;
                    }
                }
            };
            let mut prev_time = 0.0f64;
            let mut busy = 0i64;
            for &(time, next_busy) in &self.busy_steps {
                add(prev_time, time.min(end), busy);
                prev_time = time.min(end);
                busy = next_busy;
            }
            add(prev_time, end, busy);
        }
        integral
            .into_iter()
            .map(|area| area / (width * denom))
            .collect()
    }

    /// Render the human-readable summary.
    pub fn render_text(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let _ = writeln!(out, "asha run report");
        let _ = writeln!(out, "===============");
        let _ = writeln!(
            out,
            "events: {}   end time: {:.3}   workers: {}",
            self.events,
            m.end_time(),
            match self.workers {
                Some(w) => w.to_string(),
                None => format!("unknown (peak busy {})", self.worker_denominator()),
            }
        );
        let _ = writeln!(out);

        let d = &m.decisions;
        let _ = writeln!(
            out,
            "decisions: promote {}  grow_bottom {}  wait {}  finished {}",
            d.promote.get(),
            d.grow_bottom.get(),
            d.wait.get(),
            d.finished.get()
        );
        let _ = writeln!(
            out,
            "jobs: started {}  completed {}  dropped {}  retried {}  idle rounds {}",
            m.jobs_started.get(),
            m.jobs_completed.get(),
            m.jobs_dropped.get(),
            m.jobs_retried.get(),
            m.idle_rounds.get()
        );
        let _ = writeln!(out);

        let _ = writeln!(out, "rung  resource  completed  pending  promoted out");
        let _ = writeln!(out, "----  --------  ---------  -------  ------------");
        for rung in 0..m.rung_count() {
            let resource = m
                .rung_resource(rung)
                .map_or_else(|| "-".to_owned(), |r| format!("{r:.1}"));
            let occupancy = m.rung_occupancy.get(rung).map_or(0, |g| g.value());
            let pending = m.pending_promotions.get(rung).map_or(0, |g| g.value());
            let promoted = m.promotions_per_rung.get(rung).map_or(0, |c| c.get());
            let _ = writeln!(
                out,
                "{rung:>4}  {resource:>8}  {occupancy:>9}  {pending:>7}  {promoted:>12}"
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(
            out,
            "latency (time units)    count      p50      p95      max     mean"
        );
        for (label, hist) in [
            ("promotion wait      ", &m.promotion_wait),
            ("job latency         ", &m.job_latency),
            ("retry queue delay   ", &m.queue_delay),
        ] {
            let _ = writeln!(
                out,
                "{label}{:>9}  {}  {}  {}  {}",
                hist.count(),
                fmt_stat(hist.quantile(0.5)),
                fmt_stat(hist.quantile(0.95)),
                fmt_stat(hist.max()),
                fmt_stat(hist.mean()),
            );
        }
        let _ = writeln!(out);

        let mean = self.mean_utilization();
        let _ = writeln!(
            out,
            "worker utilization: mean {}  peak busy {}",
            fmt_pct(mean),
            m.busy_workers.max()
        );
        let timeline = self.utilization_timeline(TIMELINE_BINS);
        if !timeline.is_empty() {
            let end = m.end_time();
            let width = end / timeline.len() as f64;
            for (i, u) in timeline.iter().enumerate() {
                let bar_len = (u.clamp(0.0, 1.0) * 30.0).round() as usize;
                let _ = writeln!(
                    out,
                    "  [{:>8.2}, {:>8.2})  {:<30}  {}",
                    width * i as f64,
                    width * (i + 1) as f64,
                    "#".repeat(bar_len),
                    fmt_pct(*u)
                );
            }
        }
        out
    }

    /// Build the machine-readable report document (schema
    /// [`REPORT_SCHEMA`]).
    pub fn to_json(&self) -> JsonValue {
        let m = &self.metrics;
        let d = &m.decisions;
        let rungs = (0..m.rung_count())
            .map(|rung| {
                JsonValue::obj([
                    ("rung", JsonValue::Int(rung as u64)),
                    (
                        "resource",
                        m.rung_resource(rung)
                            .map_or(JsonValue::Null, JsonValue::Num),
                    ),
                    (
                        "completed",
                        JsonValue::Int(
                            m.rung_occupancy.get(rung).map_or(0, |g| g.value().max(0)) as u64
                        ),
                    ),
                    (
                        "pending",
                        JsonValue::Int(
                            m.pending_promotions
                                .get(rung)
                                .map_or(0, |g| g.value().max(0)) as u64,
                        ),
                    ),
                    (
                        "promoted_out",
                        JsonValue::Int(m.promotions_per_rung.get(rung).map_or(0, |c| c.get())),
                    ),
                ])
            })
            .collect();
        JsonValue::obj([
            ("schema", JsonValue::Str(REPORT_SCHEMA.to_owned())),
            (
                "workers",
                self.workers
                    .map_or(JsonValue::Null, |w| JsonValue::Int(w as u64)),
            ),
            ("end_time", JsonValue::Num(m.end_time())),
            ("events", JsonValue::Int(self.events as u64)),
            (
                "decisions",
                JsonValue::obj([
                    ("promote", JsonValue::Int(d.promote.get())),
                    ("grow_bottom", JsonValue::Int(d.grow_bottom.get())),
                    ("wait", JsonValue::Int(d.wait.get())),
                    ("finished", JsonValue::Int(d.finished.get())),
                ]),
            ),
            (
                "jobs",
                JsonValue::obj([
                    ("started", JsonValue::Int(m.jobs_started.get())),
                    ("completed", JsonValue::Int(m.jobs_completed.get())),
                    ("dropped", JsonValue::Int(m.jobs_dropped.get())),
                    ("retried", JsonValue::Int(m.jobs_retried.get())),
                    ("idle_rounds", JsonValue::Int(m.idle_rounds.get())),
                ]),
            ),
            ("rungs", JsonValue::Arr(rungs)),
            ("promotion_latency", hist_json(&m.promotion_wait)),
            ("job_latency", hist_json(&m.job_latency)),
            ("queue_delay", hist_json(&m.queue_delay)),
            (
                "utilization",
                JsonValue::obj([
                    ("mean", num_or_null(self.mean_utilization())),
                    (
                        "peak_busy",
                        JsonValue::Int(m.busy_workers.max().max(0) as u64),
                    ),
                    (
                        "timeline",
                        JsonValue::Arr(
                            self.utilization_timeline(TIMELINE_BINS)
                                .into_iter()
                                .map(JsonValue::Num)
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// Number of bins in the utilization timeline (text and JSON).
pub const TIMELINE_BINS: usize = 12;

fn hist_json(h: &Histogram) -> JsonValue {
    JsonValue::obj([
        ("count", JsonValue::Int(h.count())),
        ("p50", num_or_null(h.quantile(0.5))),
        ("p95", num_or_null(h.quantile(0.95))),
        ("max", num_or_null(h.max())),
        ("mean", num_or_null(h.mean())),
    ])
}

/// Non-finite stats (empty histograms, zero-duration runs) have no JSON
/// number representation; encode them as `null` so the document always
/// parses back to itself.
fn num_or_null(v: f64) -> JsonValue {
    if v.is_finite() {
        JsonValue::Num(v)
    } else {
        JsonValue::Null
    }
}

fn fmt_stat(v: f64) -> String {
    if v.is_finite() {
        format!("{v:>7.3}")
    } else {
        format!("{:>7}", "-")
    }
}

fn fmt_pct(v: f64) -> String {
    if v.is_finite() {
        format!("{:.1}%", v * 100.0)
    } else {
        "-".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_core::telemetry::EventKind;

    fn lifecycle_events() -> Vec<Event> {
        // Two workers: trial 0 busy on [0, 2], trial 1 busy on [0, 4];
        // trial 0 promoted at t=4.
        let kinds: Vec<(f64, EventKind)> = vec![
            (
                0.0,
                EventKind::GrowBottom {
                    trial: 0,
                    bracket: 0,
                    resource: 1.0,
                },
            ),
            (
                0.0,
                EventKind::JobStart {
                    trial: 0,
                    bracket: 0,
                    rung: 0,
                    resource: 1.0,
                },
            ),
            (
                0.0,
                EventKind::GrowBottom {
                    trial: 1,
                    bracket: 0,
                    resource: 1.0,
                },
            ),
            (
                0.0,
                EventKind::JobStart {
                    trial: 1,
                    bracket: 0,
                    rung: 0,
                    resource: 1.0,
                },
            ),
            (
                2.0,
                EventKind::JobEnd {
                    trial: 0,
                    rung: 0,
                    resource: 1.0,
                    loss: 0.25,
                },
            ),
            (
                4.0,
                EventKind::JobEnd {
                    trial: 1,
                    rung: 0,
                    resource: 1.0,
                    loss: 0.5,
                },
            ),
            (
                4.0,
                EventKind::Promote {
                    trial: 0,
                    bracket: 0,
                    from: 0,
                    to: 1,
                    resource: 4.0,
                },
            ),
            (
                4.0,
                EventKind::JobStart {
                    trial: 0,
                    bracket: 0,
                    rung: 1,
                    resource: 4.0,
                },
            ),
            (
                8.0,
                EventKind::JobEnd {
                    trial: 0,
                    rung: 1,
                    resource: 4.0,
                    loss: 0.125,
                },
            ),
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, (time, kind))| Event {
                seq: i as u64,
                time,
                kind,
            })
            .collect()
    }

    #[test]
    fn report_summarizes_the_stream() {
        let events = lifecycle_events();
        let report = RunReport::from_events(&events, Some(2));
        let m = report.metrics();
        assert_eq!(m.jobs_completed.get(), 3);
        assert_eq!(m.decisions.promote.get(), 1);
        assert_eq!(m.decisions.grow_bottom.get(), 2);
        assert_eq!(m.promotion_wait.count(), 1);
        assert_eq!(m.promotion_wait.max(), 2.0);
        // Busy worker-time: [0,2]x2 + [2,4]x1 + [4,8]x1 = 10 of 16.
        assert!((report.mean_utilization() - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_integrates_the_step_function() {
        let events = lifecycle_events();
        let report = RunReport::from_events(&events, Some(2));
        let timeline = report.utilization_timeline(4);
        // Bins of width 2 over [0,8]: busy counts 2, 1, 1, 1 of 2 workers.
        let expect = [1.0, 0.5, 0.5, 0.5];
        for (got, want) in timeline.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{timeline:?}");
        }
    }

    #[test]
    fn text_report_mentions_all_sections() {
        let report = RunReport::from_events(&lifecycle_events(), Some(2));
        let text = report.render_text();
        for needle in [
            "asha run report",
            "decisions:",
            "rung  resource",
            "promotion wait",
            "worker utilization",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_report_has_the_stable_schema() {
        let report = RunReport::from_events(&lifecycle_events(), Some(2));
        let json = report.to_json();
        assert_eq!(
            json.get("schema").and_then(|v| v.as_str()),
            Some(REPORT_SCHEMA)
        );
        assert_eq!(json.get("workers").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(json.get("events").and_then(|v| v.as_u64()), Some(9));
        let rungs = json.get("rungs").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rungs.len(), 2);
        assert_eq!(
            rungs[0].get("promoted_out").and_then(|v| v.as_u64()),
            Some(1)
        );
        let promo = json.get("promotion_latency").unwrap();
        assert_eq!(promo.get("count").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(promo.get("max").and_then(|v| v.as_f64()), Some(2.0));
        // The rendered document parses back and re-renders identically
        // (valid JSON end to end; integral floats re-parse as ints, so
        // value equality is checked on the rendering).
        let text = json.render();
        assert_eq!(JsonValue::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn empty_run_reports_gracefully() {
        let report = RunReport::from_events(&[], None);
        assert_eq!(report.event_count(), 0);
        assert!(report.utilization_timeline(8).is_empty());
        let text = report.render_text();
        assert!(text.contains("events: 0"), "{text}");
        let json = report.to_json();
        assert!(json.get("workers").unwrap().is_null());
    }
}

//! Lock-free metrics primitives safe to update from any thread.
//!
//! The run-layer [`MetricsRegistry`](crate::MetricsRegistry) is
//! single-threaded by design: one recorder folds one event stream. The
//! *daemon* layer (reactor loop, worker pool, WAL tailers, store fsyncs)
//! is many threads touching the same cells on hot paths, so this module
//! provides the concurrent counterparts — plain atomics, no locks, no
//! dependencies:
//!
//! * [`SharedCounter`] — monotone `u64` counter.
//! * [`SharedGauge`] — signed instantaneous value (queue depths, open
//!   connections).
//! * [`SharedHistogram`] — fixed-bucket latency histogram, sharded to
//!   keep concurrent `observe` calls from bouncing one cache line, with a
//!   mergeable [`HistogramSnapshot`] for export.
//!
//! # Clock discipline
//!
//! Histograms take observations in **seconds** (`f64`) but store
//! fixed-point **nanoseconds** (`u64`). Integer addition commutes exactly,
//! so a snapshot merged from N shards — or from N processes — equals the
//! single-threaded reference bit-for-bit: `count`, per-bucket counts,
//! `sum_nanos`, `min_nanos`, and `max_nanos` are all order-independent.
//! That exactness is what the concurrency proptests assert.
//!
//! # Compile-time kill switch
//!
//! With the `plane-noop` cargo feature every mutating call compiles to
//! nothing (the structures still exist and snapshot as empty), which is
//! how the `service_load` bench measures the plane's true overhead.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

use asha_metrics::JsonValue;

/// Number of independent shards per [`SharedHistogram`]. Eight covers the
/// daemon's thread count (reactor + workers + tailers) without letting a
/// snapshot scan get expensive.
const SHARDS: usize = 8;

/// A monotone counter updatable from any thread.
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicU64);

impl SharedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        SharedCounter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "plane-noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "plane-noop")]
        let _ = n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. a queue depth) updatable from any
/// thread.
#[derive(Debug, Default)]
pub struct SharedGauge(AtomicI64);

impl SharedGauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        SharedGauge(AtomicI64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "plane-noop"))]
        self.0.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "plane-noop")]
        let _ = delta;
    }

    /// Overwrite with `value`.
    #[inline]
    pub fn set(&self, value: i64) {
        #[cfg(not(feature = "plane-noop"))]
        self.0.store(value, Ordering::Relaxed);
        #[cfg(feature = "plane-noop")]
        let _ = value;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One shard's cells. `min_nanos` starts at `u64::MAX` so `fetch_min`
/// works without a sentinel branch; an empty shard is detected by
/// `count == 0`.
#[derive(Debug)]
struct Shard {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Shard {
    fn new(buckets: usize) -> Self {
        Shard {
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            min_nanos: AtomicU64::new(u64::MAX),
            max_nanos: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram whose `observe` is safe and cheap from any
/// thread.
///
/// Bucket semantics match the single-threaded
/// [`Histogram`](crate::Histogram): `bounds` are strictly increasing
/// upper edges, bucket `i` counts observations `<= bounds[i]` (and above
/// the previous edge), plus one overflow bucket above the last edge.
/// Observations are clamped to `[0, +inf)`; a NaN counts as zero.
#[derive(Debug)]
pub struct SharedHistogram {
    bounds: Vec<f64>,
    shards: Box<[Shard]>,
}

impl SharedHistogram {
    /// A histogram over explicit bucket upper edges.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        SharedHistogram {
            bounds,
            shards: (0..SHARDS).map(|_| Shard::new(buckets)).collect(),
        }
    }

    /// `n` exponentially spaced bounds starting at `first`.
    pub fn exponential(first: f64, factor: f64, n: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = first;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        SharedHistogram::new(bounds)
    }

    /// The standard latency shape used across the daemon: powers of two
    /// from 1µs to ~33s (26 edges). Wide enough for an fsync stall, fine
    /// enough to resolve a microsecond-scale reactor iteration.
    pub fn latency() -> Self {
        SharedHistogram::exponential(1e-6, 2.0, 26)
    }

    /// The bucket upper edges (excluding the implicit `+inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation, in seconds.
    #[inline]
    pub fn observe(&self, seconds: f64) {
        #[cfg(not(feature = "plane-noop"))]
        {
            // NaN.max(0.0) is 0.0, so a NaN lands in the first bucket with
            // zero contribution to the sum instead of poisoning it.
            let v = seconds.max(0.0);
            let nanos = to_nanos(v);
            let idx = self.bounds.partition_point(|&b| b < v);
            let shard = &self.shards[shard_index()];
            shard.counts[idx].fetch_add(1, Ordering::Relaxed);
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
            shard.min_nanos.fetch_min(nanos, Ordering::Relaxed);
            shard.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        }
        #[cfg(feature = "plane-noop")]
        let _ = seconds;
    }

    /// Record a [`std::time::Duration`].
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Merge every shard into one consistent-enough snapshot. Updates
    /// racing with the scan may straddle it (a count landing without its
    /// sum); each cell is individually exact and monotone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty(self.bounds.clone());
        for shard in self.shards.iter() {
            for (dst, src) in snap.counts.iter_mut().zip(shard.counts.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum_nanos += shard.sum_nanos.load(Ordering::Relaxed);
            snap.min_nanos = snap.min_nanos.min(shard.min_nanos.load(Ordering::Relaxed));
            snap.max_nanos = snap.max_nanos.max(shard.max_nanos.load(Ordering::Relaxed));
        }
        snap
    }
}

/// Saturating fixed-point conversion: seconds → whole nanoseconds.
#[inline]
fn to_nanos(seconds: f64) -> u64 {
    let v = seconds * 1e9;
    if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        v as u64
    }
}

/// Stable per-thread shard assignment: each thread gets the next slot
/// from a global counter on first use, then reuses it, so a thread's
/// observations never migrate between shards mid-run.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut v = slot.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(v);
        }
        v % SHARDS
    })
}

/// A point-in-time copy of a [`SharedHistogram`], mergeable across
/// histograms with identical bounds (shards, threads, or processes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last being the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum_nanos: u64,
    /// `u64::MAX` when empty.
    min_nanos: u64,
    max_nanos: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given bounds.
    pub fn empty(bounds: Vec<f64>) -> Self {
        let buckets = bounds.len() + 1;
        HistogramSnapshot {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
        }
    }

    /// The bucket upper edges (excluding the implicit `+inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum_nanos as f64 / 1e9
    }

    /// Exact sum in fixed-point nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos
    }

    /// Mean observation in seconds (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum() / self.count as f64
        }
    }

    /// Smallest observation in seconds (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min_nanos as f64 / 1e9
        }
    }

    /// Largest observation in seconds (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max_nanos as f64 / 1e9
        }
    }

    /// Iterate `(upper_edge, bucket_count)` pairs, ending with the
    /// `+inf` overflow bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper edge of the
    /// bucket containing the target rank, clamped to the largest observed
    /// value so a lone overflow observation does not report `+inf`. NaN
    /// when empty. Matches [`Histogram::quantile`](crate::Histogram).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bound, n) in self.buckets() {
            seen += n;
            if seen >= target {
                return bound.min(self.max());
            }
        }
        self.max()
    }

    /// Fold `other` into `self`.
    ///
    /// # Panics
    ///
    /// If the bucket bounds differ — merging histograms with different
    /// shapes is a caller bug, not a runtime condition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histogram snapshots with different bounds"
        );
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Encode as JSON. Bounds are carried as a finite `le` array (the
    /// `+inf` overflow edge is implicit), so the encoding survives JSON's
    /// lack of infinities; nanosecond cells stay exact integers.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("count", JsonValue::Int(self.count)),
            ("sum_ns", JsonValue::Int(self.sum_nanos)),
            (
                "min_ns",
                if self.count == 0 {
                    JsonValue::Null
                } else {
                    JsonValue::Int(self.min_nanos)
                },
            ),
            ("max_ns", JsonValue::Int(self.max_nanos)),
            (
                "le",
                JsonValue::Arr(self.bounds.iter().map(|&b| JsonValue::Num(b)).collect()),
            ),
            (
                "counts",
                JsonValue::Arr(self.counts.iter().map(|&c| JsonValue::Int(c)).collect()),
            ),
        ])
    }

    /// Decode a snapshot produced by [`HistogramSnapshot::to_json`].
    /// Returns `None` on a malformed or inconsistent value.
    pub fn from_json(v: &JsonValue) -> Option<HistogramSnapshot> {
        let bounds: Vec<f64> = match v.get("le")? {
            JsonValue::Arr(items) => items.iter().map(|b| b.as_f64()).collect::<Option<_>>()?,
            _ => return None,
        };
        let counts: Vec<u64> = match v.get("counts")? {
            JsonValue::Arr(items) => items.iter().map(|c| c.as_u64()).collect::<Option<_>>()?,
            _ => return None,
        };
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        let count = v.get("count")?.as_u64()?;
        let sum_nanos = v.get("sum_ns")?.as_u64()?;
        let min_nanos = match v.get("min_ns") {
            Some(JsonValue::Null) | None => u64::MAX,
            Some(n) => n.as_u64()?,
        };
        let max_nanos = v.get("max_ns")?.as_u64()?;
        Some(HistogramSnapshot {
            bounds,
            counts,
            count,
            sum_nanos,
            min_nanos,
            max_nanos,
        })
    }
}

#[cfg(all(test, not(feature = "plane-noop")))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_and_gauge_basics() {
        let c = SharedCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = SharedGauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = SharedHistogram::new(vec![0.001, 0.01, 0.1]);
        for _ in 0..90 {
            h.observe(0.0005);
        }
        for _ in 0..9 {
            h.observe(0.005);
        }
        h.observe(5.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let counts: Vec<u64> = s.buckets().map(|(_, n)| n).collect();
        assert_eq!(counts, vec![90, 9, 0, 1]);
        assert_eq!(s.quantile(0.5), 0.001);
        assert_eq!(s.quantile(0.99), 0.01);
        // p100 hits the overflow bucket but clamps to the observed max.
        assert_eq!(s.quantile(1.0), 5.0);
        assert!((s.sum() - (90.0 * 0.0005 + 9.0 * 0.005 + 5.0)).abs() < 1e-6);
    }

    #[test]
    fn empty_histogram_is_nan_not_garbage() {
        let s = SharedHistogram::latency().snapshot();
        assert_eq!(s.count(), 0);
        assert!(s.quantile(0.5).is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn nan_observation_counts_as_zero() {
        let h = SharedHistogram::new(vec![1.0]);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum_nanos(), 0);
        assert_eq!(s.quantile(1.0), 0.0);
    }

    #[test]
    fn concurrent_observes_are_all_counted() {
        let h = Arc::new(SharedHistogram::latency());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe(1e-6 * (t * 1000 + i) as f64);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 8000);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let h = SharedHistogram::latency();
        h.observe(0.0023);
        h.observe(1.7);
        h.observe(123.0);
        let s = h.snapshot();
        let back = HistogramSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn merge_matches_single_stream() {
        let a = SharedHistogram::new(vec![0.01, 0.1, 1.0]);
        let b = SharedHistogram::new(vec![0.01, 0.1, 1.0]);
        let all = SharedHistogram::new(vec![0.01, 0.1, 1.0]);
        for i in 0..50 {
            let v = 0.003 * (i + 1) as f64;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }
}

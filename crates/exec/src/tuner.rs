use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use asha_core::telemetry::{DropCause, EventKind, NoopRecorder, Recorder};
use asha_core::{Decision, Job, Observation, Scheduler, TrialId};
use asha_metrics::{FaultStats, RunTrace, TraceEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::objective::{Evaluation, JobCtx, JobDropped, Objective};

/// How the executor reacts when a job misbehaves (see DESIGN.md, "Fault
/// model", and paper Section 4.4).
///
/// * A **panic** inside the objective is always caught (the pool survives)
///   and poisons the trial: the scheduler observes `f64::INFINITY`.
/// * A **timeout** (attempt exceeding [`job_timeout`](Self::job_timeout)) or
///   a **dropped result** ([`JobDropped`] unwind) is retried from the last
///   reported checkpoint, with exponential backoff, up to
///   [`max_retries`](Self::max_retries) times; exhausting the budget poisons
///   the trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Wall-clock budget for one attempt; `None` disables timeouts (and the
    /// per-attempt monitor thread that enforces them).
    pub job_timeout: Option<Duration>,
    /// Retries allowed per job after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for FaultPolicy {
    /// No timeout, two retries, 1 ms initial backoff capped at 100 ms.
    fn default() -> Self {
        FaultPolicy {
            job_timeout: None,
            max_retries: 2,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

impl FaultPolicy {
    /// Enforce a per-attempt wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.job_timeout = Some(timeout);
        self
    }

    /// Allow `max_retries` retries per job after the first attempt.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Set the initial backoff and its cap.
    pub fn with_backoff(mut self, backoff: Duration, cap: Duration) -> Self {
        self.backoff = backoff;
        self.backoff_cap = cap;
        self
    }

    /// Backoff before retry number `retry` (1-based): `backoff * 2^(retry-1)`
    /// capped at `backoff_cap`.
    fn backoff_before(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(1 << shift)
            .min(self.backoff_cap)
    }
}

/// Parallel execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Stop after this many completed jobs.
    pub max_jobs: usize,
    /// Optional wall-clock limit.
    pub wall_limit: Option<Duration>,
    /// Timeout/retry/panic handling.
    pub faults: FaultPolicy,
}

impl ExecConfig {
    /// `workers` threads, a 100k-job cap, no wall-clock limit, and the
    /// default [`FaultPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ExecConfig {
            workers,
            max_jobs: 100_000,
            wall_limit: None,
            faults: FaultPolicy::default(),
        }
    }

    /// Stop after `max_jobs` completions.
    pub fn with_max_jobs(mut self, max_jobs: usize) -> Self {
        self.max_jobs = max_jobs;
        self
    }

    /// Stop after the given wall-clock duration.
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Replace the fault policy.
    pub fn with_fault_policy(mut self, faults: FaultPolicy) -> Self {
        self.faults = faults;
        self
    }

    /// A validating builder: [`ExecConfigBuilder::build`] returns a typed
    /// [`asha_core::Error`] (kind `Config`) instead of panicking.
    /// Defaults match [`ExecConfig::new`]`(1)`.
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder {
            config: ExecConfig::new(1),
        }
    }
}

/// Builder for [`ExecConfig`]; see [`ExecConfig::builder`].
///
/// ```
/// use asha_exec::ExecConfig;
///
/// let config = ExecConfig::builder().workers(8).max_jobs(500).build().unwrap();
/// assert_eq!(config.workers, 8);
/// assert!(ExecConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ExecConfigBuilder {
    config: ExecConfig,
}

impl ExecConfigBuilder {
    /// Number of worker threads (must end up > 0).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Stop after this many completed jobs (must end up > 0).
    pub fn max_jobs(mut self, max_jobs: usize) -> Self {
        self.config.max_jobs = max_jobs;
        self
    }

    /// Stop after the given wall-clock duration.
    pub fn wall_limit(mut self, limit: Duration) -> Self {
        self.config.wall_limit = Some(limit);
        self
    }

    /// Timeout/retry/panic handling.
    pub fn fault_policy(mut self, faults: FaultPolicy) -> Self {
        self.config.faults = faults;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ExecConfig, asha_core::Error> {
        if self.config.workers == 0 {
            return Err(asha_core::Error::config("need at least one worker thread"));
        }
        if self.config.max_jobs == 0 {
            return Err(asha_core::Error::config("max_jobs must be positive"));
        }
        if let Some(limit) = self.config.wall_limit {
            if limit.is_zero() {
                return Err(asha_core::Error::config("wall limit must be positive"));
            }
        }
        Ok(self.config)
    }
}

/// Outcome of a parallel tuning run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Completions in wall-clock order (times in seconds since start).
    pub trace: RunTrace,
    /// Number of completed jobs (including poisoned ones).
    pub jobs_completed: usize,
    /// Best `(trial, validation loss)` observed, if any.
    pub best: Option<(TrialId, f64)>,
    /// The best trial's configuration.
    pub best_config: Option<asha_space::Config>,
    /// Whether the scheduler reported [`Decision::Finished`].
    pub scheduler_finished: bool,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Fault ledger: drops, retries, timeouts, panics, poisonings.
    pub faults: FaultStats,
}

struct Shared<S, C, R> {
    scheduler: S,
    rng: StdRng,
    /// Telemetry sink. Lives under the same lock as the scheduler, and
    /// timestamps are computed while holding it, so recorded times are
    /// monotone even with many workers reporting concurrently.
    recorder: R,
    checkpoints: HashMap<TrialId, C>,
    /// `(seq, event)`: `seq` is assigned under this lock, so sorting by
    /// `(time, seq)` gives a total, reproducible order even when wall-clock
    /// timestamps collide.
    trace: Vec<(u64, TraceEvent)>,
    jobs_completed: usize,
    best: Option<(TrialId, f64)>,
    best_config: Option<asha_space::Config>,
    faults: FaultStats,
    stop: bool,
    finished: bool,
    idle_workers: usize,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Worker panics are caught before they can poison the lock; if one ever
    // slips through, the state is still consistent (mutations are atomic
    // under the lock), so recover rather than cascade.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One execution attempt's outcome, as seen by the retry loop.
enum Attempt<C> {
    Done(Evaluation, C),
    Panicked,
    Dropped,
    TimedOut,
}

fn interpret<C>(result: Result<(Evaluation, C), Box<dyn std::any::Any + Send>>) -> Attempt<C> {
    match result {
        Ok((eval, ckpt)) => Attempt::Done(eval, ckpt),
        Err(payload) if payload.is::<JobDropped>() => Attempt::Dropped,
        Err(_) => Attempt::Panicked,
    }
}

/// Run one attempt, isolating panics and (when configured) enforcing the
/// timeout by running the attempt on a scoped thread and abandoning it if it
/// overruns. An abandoned attempt's late result is discarded — exactly the
/// "job ran but the result was lost" drop semantics — though its thread is
/// still joined when the pool shuts down.
fn run_attempt<'scope, C, F>(
    scope: &'scope thread::Scope<'scope, '_>,
    timeout: Option<Duration>,
    attempt_fn: F,
) -> Attempt<C>
where
    C: Send + 'static,
    F: FnOnce() -> (Evaluation, C) + Send + 'scope,
{
    match timeout {
        None => interpret(catch_unwind(AssertUnwindSafe(attempt_fn))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            scope.spawn(move || {
                // Catch inside the attempt thread: an uncaught panic here
                // would take down the whole scope at join time.
                let result = catch_unwind(AssertUnwindSafe(attempt_fn));
                let _ = tx.send(result);
            });
            match rx.recv_timeout(limit) {
                Ok(result) => interpret(result),
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    Attempt::TimedOut
                }
            }
        }
    }
}

/// What the retry loop settled on for one job.
enum JobOutcome<C> {
    /// The objective returned; loss may still be non-finite.
    Finished(Evaluation, C),
    /// Panic, or retry budget exhausted: observe `f64::INFINITY`.
    Poisoned,
}

fn worker_loop<'scope, 'env, S, O, R>(
    scope: &'scope thread::Scope<'scope, 'env>,
    cfg: &'env ExecConfig,
    start: Instant,
    shared: &'env Mutex<Shared<S, O::Checkpoint, R>>,
    wake: &'env Condvar,
    objective: &'env O,
    // Whether the recorder collects anything, hoisted out of the lock so the
    // fault path can skip its extra lock acquisitions when telemetry is off.
    recording: bool,
) where
    S: Scheduler + Send,
    O: Objective,
    R: Recorder + Send,
{
    loop {
        // Acquire a job (or learn we are done).
        let job: Job = {
            let mut guard = lock(shared);
            loop {
                let s = &mut *guard;
                if s.stop
                    || s.jobs_completed >= cfg.max_jobs
                    || cfg.wall_limit.is_some_and(|limit| start.elapsed() >= limit)
                {
                    s.stop = true;
                    wake.notify_all();
                    return;
                }
                let decision = s.scheduler.suggest(&mut s.rng);
                if s.recorder.enabled() {
                    // Timestamps are taken while holding the lock, so they
                    // are monotone across all workers.
                    let t = start.elapsed().as_secs_f64();
                    s.recorder.record(t, EventKind::of_decision(&decision));
                    if let Decision::Run(job) = &decision {
                        s.recorder.record(t, EventKind::job_start(job));
                    }
                }
                match decision {
                    Decision::Run(job) => break job,
                    Decision::Finished => {
                        s.finished = true;
                        s.stop = true;
                        wake.notify_all();
                        return;
                    }
                    Decision::Wait => {
                        // Block until some completion might unblock the
                        // scheduler. If every worker is waiting, nothing can
                        // ever complete: drain to avoid deadlock.
                        s.idle_workers += 1;
                        if s.idle_workers == cfg.workers {
                            s.stop = true;
                            s.idle_workers -= 1;
                            wake.notify_all();
                            return;
                        }
                        if s.recorder.enabled() {
                            let t = start.elapsed().as_secs_f64();
                            let idle = s.idle_workers;
                            s.recorder.record(t, EventKind::WorkerIdle { idle });
                        }
                        guard = wake.wait(guard).unwrap_or_else(PoisonError::into_inner);
                        guard.idle_workers -= 1;
                    }
                }
            }
        };

        // Fetch (or inherit) the checkpoint. No other worker can hold this
        // trial concurrently, so one fetch serves every retry attempt.
        let checkpoint = {
            let s = lock(shared);
            s.checkpoints
                .get(&job.trial)
                .or_else(|| job.inherit_from.and_then(|src| s.checkpoints.get(&src)))
                .cloned()
        };

        // Train outside the lock, absorbing faults per the policy.
        let mut local_faults = FaultStats::none();
        let mut attempt: u32 = 0;
        let outcome = loop {
            attempt += 1;
            let ctx = JobCtx {
                trial: job.trial.0,
                rung: job.rung,
                bracket: job.bracket,
                attempt,
            };
            // The attempt closure owns everything it touches: on timeout it
            // is abandoned and may outlive this iteration.
            let config = job.config.clone();
            let resource = job.resource;
            let ckpt = checkpoint.clone();
            let result = run_attempt(scope, cfg.faults.job_timeout, move || {
                objective.run_ctx(ctx, &config, resource, ckpt)
            });
            match result {
                Attempt::Done(eval, ckpt) => break JobOutcome::Finished(eval, ckpt),
                Attempt::Panicked => {
                    local_faults.jobs_panicked += 1;
                    break JobOutcome::Poisoned;
                }
                Attempt::Dropped | Attempt::TimedOut => {
                    let cause = if matches!(result, Attempt::Dropped) {
                        local_faults.jobs_dropped += 1;
                        DropCause::Dropped
                    } else {
                        local_faults.jobs_timed_out += 1;
                        DropCause::Timeout
                    };
                    if recording {
                        let mut s = lock(shared);
                        let t = start.elapsed().as_secs_f64();
                        s.recorder.record(
                            t,
                            EventKind::Drop {
                                trial: job.trial.0,
                                rung: job.rung,
                                cause,
                            },
                        );
                    }
                    if attempt <= cfg.faults.max_retries {
                        local_faults.jobs_retried += 1;
                        thread::sleep(cfg.faults.backoff_before(attempt));
                        if recording {
                            // The retry runs on this same worker after the
                            // backoff: re-announce the attempt so busy-worker
                            // accounting balances the drop above.
                            let mut s = lock(shared);
                            let t = start.elapsed().as_secs_f64();
                            s.recorder.record(
                                t,
                                EventKind::Retry {
                                    trial: job.trial.0,
                                    rung: job.rung,
                                },
                            );
                            s.recorder.record(t, EventKind::job_start(&job));
                        }
                        continue;
                    }
                    break JobOutcome::Poisoned;
                }
            }
        };

        // Report. Poisoned jobs still complete — the scheduler's documented
        // contract is that failures arrive as f64::INFINITY observations, so
        // rung bookkeeping (especially SyncSha's barriers) stays consistent.
        let mut s = lock(shared);
        s.faults = s.faults.merge(&local_faults);
        let (val_loss, test_loss) = match outcome {
            JobOutcome::Finished(eval, ckpt) => {
                s.checkpoints.insert(job.trial, ckpt);
                let val = if eval.val_loss.is_nan() {
                    f64::INFINITY
                } else {
                    eval.val_loss
                };
                let test = if eval.test_loss.is_nan() {
                    f64::INFINITY
                } else {
                    eval.test_loss
                };
                if !val.is_finite() {
                    s.faults.jobs_poisoned += 1;
                }
                (val, test)
            }
            JobOutcome::Poisoned => {
                s.faults.jobs_poisoned += 1;
                (f64::INFINITY, f64::INFINITY)
            }
        };
        s.jobs_completed += 1;
        if val_loss.is_finite() && s.best.is_none_or(|(_, l)| val_loss < l) {
            s.best = Some((job.trial, val_loss));
            s.best_config = Some(job.config.clone());
        }
        let seq = s.trace.len() as u64;
        let t = start.elapsed().as_secs_f64();
        s.trace.push((
            seq,
            TraceEvent {
                time: t,
                trial: job.trial.0,
                bracket: job.bracket,
                rung: job.rung,
                resource: job.resource,
                val_loss,
                test_loss,
            },
        ));
        if s.recorder.enabled() {
            // Same timestamp as the TraceEvent: telemetry and traces share
            // this backend's wall-clock-seconds time base.
            s.recorder.record(
                t,
                EventKind::JobEnd {
                    trial: job.trial.0,
                    rung: job.rung,
                    resource: job.resource,
                    loss: val_loss,
                },
            );
        }
        s.scheduler.observe(Observation::for_job(&job, val_loss));
        wake.notify_all();
    }
}

/// A pool of worker threads driving one scheduler; see the crate docs.
#[derive(Debug, Clone)]
pub struct ParallelTuner {
    config: ExecConfig,
}

impl ParallelTuner {
    /// Create a tuner with the given execution parameters.
    pub fn new(config: ExecConfig) -> Self {
        ParallelTuner { config }
    }

    /// Run `scheduler` against `objective` until the scheduler finishes, the
    /// job cap is hit, or the wall-clock limit expires. `seed` drives the
    /// scheduler's sampling RNG.
    ///
    /// Worker threads hold the scheduler lock only while asking for or
    /// reporting work; objective evaluations run in parallel outside it.
    /// Objective panics and timeouts never propagate out of the pool — they
    /// are absorbed per the configured [`FaultPolicy`] and tallied in
    /// [`ExecResult::faults`].
    pub fn run<S, O>(&self, scheduler: S, objective: &O, seed: u64) -> ExecResult
    where
        S: Scheduler + Send,
        O: Objective,
    {
        self.run_recorded(scheduler, objective, seed, &mut NoopRecorder)
    }

    /// Like [`run`](ParallelTuner::run), but emit structured telemetry into
    /// `recorder`: decisions, job lifecycle, fault-policy firings (drops,
    /// timeouts, retries), and idle waits.
    ///
    /// Timestamps are wall-clock seconds since run start — the same clock as
    /// this backend's [`TraceEvent::time`] — and are taken while holding the
    /// scheduler lock, so they are monotone across workers. With the default
    /// [`NoopRecorder`] every telemetry guard folds away and this is exactly
    /// [`run`](ParallelTuner::run).
    pub fn run_recorded<S, O, R>(
        &self,
        scheduler: S,
        objective: &O,
        seed: u64,
        recorder: &mut R,
    ) -> ExecResult
    where
        S: Scheduler + Send,
        O: Objective,
        R: Recorder + Send,
    {
        self.run_resumed(scheduler, objective, StdRng::seed_from_u64(seed), recorder)
    }

    /// Like [`run_recorded`](ParallelTuner::run_recorded), but with an
    /// explicit RNG instead of a fresh seed — the entry point durable-run
    /// recovery uses: a scheduler rebuilt from a snapshot plus the RNG state
    /// captured alongside it continues exactly where the crashed run left
    /// off (the pool's RNG is consumed only by `Scheduler::suggest`, never
    /// by objectives, so scheduler state + RNG state fully determine the
    /// remaining decision stream).
    pub fn run_resumed<S, O, R>(
        &self,
        scheduler: S,
        objective: &O,
        rng: StdRng,
        recorder: &mut R,
    ) -> ExecResult
    where
        S: Scheduler + Send,
        O: Objective,
        R: Recorder + Send,
    {
        let start = Instant::now();
        let name = scheduler.name().to_owned();
        let recording = recorder.enabled();
        let shared = Mutex::new(Shared {
            scheduler,
            rng,
            recorder,
            checkpoints: HashMap::<TrialId, O::Checkpoint>::new(),
            trace: Vec::new(),
            jobs_completed: 0,
            best: None,
            best_config: None,
            faults: FaultStats::none(),
            stop: false,
            finished: false,
            idle_workers: 0,
        });
        let wake = Condvar::new();
        let cfg = &self.config;

        let shared_ref = &shared;
        let wake_ref = &wake;
        thread::scope(|scope| {
            for _ in 0..cfg.workers {
                scope.spawn(move || {
                    worker_loop(
                        scope, cfg, start, shared_ref, wake_ref, objective, recording,
                    )
                });
            }
        });

        let shared = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
        let mut events = shared.trace;
        events.sort_by(|(sa, a), (sb, b)| {
            a.time
                .partial_cmp(&b.time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(sa.cmp(sb))
        });
        let mut trace = RunTrace::new(name);
        for (_, e) in events {
            trace.push(e);
        }
        ExecResult {
            trace,
            jobs_completed: shared.jobs_completed,
            best: shared.best,
            best_config: shared.best_config,
            scheduler_finished: shared.finished,
            elapsed: start.elapsed(),
            faults: shared.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Evaluation, FnObjective};
    use asha_core::{Asha, AshaConfig, RandomSearch};
    use asha_space::{Scale, SearchSpace};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    /// Objective: loss = |x - 0.3| + 1/resource, checkpoint = resource seen.
    type ObjFn = FnObjective<f64, fn(&asha_space::Config, f64, Option<f64>) -> (Evaluation, f64)>;

    fn objective() -> ObjFn {
        fn eval(c: &asha_space::Config, r: f64, ckpt: Option<f64>) -> (Evaluation, f64) {
            // Checkpoints must be cumulative: resource never decreases.
            if let Some(prev) = ckpt {
                assert!(r >= prev, "resource went backwards: {prev} -> {r}");
            }
            let x = match c.values()[0] {
                asha_space::ParamValue::Float(v) => v,
                _ => unreachable!("space is continuous"),
            };
            (Evaluation::of((x - 0.3).abs() + 1.0 / r), r)
        }
        FnObjective::new(eval as fn(&asha_space::Config, f64, Option<f64>) -> (Evaluation, f64))
    }

    #[test]
    fn asha_runs_to_trial_cap_in_parallel() {
        let asha = Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0).with_max_trials(30));
        let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &objective(), 1);
        assert!(result.scheduler_finished);
        assert!(result.jobs_completed >= 30, "{}", result.jobs_completed);
        let (_, best) = result.best.unwrap();
        assert!(best < 0.4, "best loss {best}");
        assert!(!result.trace.is_empty());
        assert!(result.faults.is_clean(), "{}", result.faults);
    }

    #[test]
    fn single_worker_matches_serial_semantics() {
        let asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(9));
        let result = ParallelTuner::new(ExecConfig::new(1)).run(asha, &objective(), 0);
        assert!(result.scheduler_finished);
        // 9 trials at rung 0, 3 promotions to rung 1, 1 to rung 2. The exact
        // count is seed-dependent (a late record-breaker can promote an
        // extra trial under Algorithm 2's incremental promotion); this seed
        // follows the canonical trajectory.
        assert_eq!(result.jobs_completed, 13);
    }

    #[test]
    fn job_cap_stops_random_search() {
        let rs = RandomSearch::new(space(), 10.0);
        let result =
            ParallelTuner::new(ExecConfig::new(4).with_max_jobs(50)).run(rs, &objective(), 3);
        assert!(result.jobs_completed >= 50);
        assert!(!result.scheduler_finished);
    }

    #[test]
    fn trace_times_are_monotone() {
        let rs = RandomSearch::new(space(), 5.0);
        let result =
            ParallelTuner::new(ExecConfig::new(8).with_max_jobs(100)).run(rs, &objective(), 4);
        let times: Vec<f64> = result.trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn drained_wait_does_not_deadlock() {
        // A trial cap of 3 with 4 workers: once all trials are issued the
        // spare workers Wait; after everything completes the scheduler
        // finishes. Must terminate.
        let asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(3));
        let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &objective(), 5);
        assert!(result.jobs_completed >= 3);
    }

    #[test]
    fn same_seed_single_worker_runs_produce_identical_traces() {
        // Regression test for the trace-ordering fix: events now carry a
        // monotonic sequence tiebreak, so two identical runs produce
        // identical traces (wall-clock timestamps aside).
        let run = || {
            let asha = Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0).with_max_trials(20));
            ParallelTuner::new(ExecConfig::new(1)).run(asha, &objective(), 11)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.jobs_completed, b.jobs_completed);
        let key = |r: &ExecResult| -> Vec<(u64, usize, usize, u64, u64)> {
            r.trace
                .events()
                .iter()
                .map(|e| {
                    (
                        e.trial,
                        e.bracket,
                        e.rung,
                        e.resource.to_bits(),
                        e.val_loss.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(
            a.best.map(|(t, l)| (t, l.to_bits())),
            b.best.map(|(t, l)| (t, l.to_bits()))
        );
    }

    /// Objective whose behaviour is keyed off the execution context, for
    /// deterministic fault tests.
    struct CtxObjective<F: Fn(JobCtx) -> Option<f64> + Send + Sync>(F);

    impl<F: Fn(JobCtx) -> Option<f64> + Send + Sync> Objective for CtxObjective<F> {
        type Checkpoint = f64;

        fn run(
            &self,
            _config: &asha_space::Config,
            resource: f64,
            _ckpt: Option<f64>,
        ) -> (Evaluation, f64) {
            (Evaluation::of(1.0 / resource), resource)
        }

        fn run_ctx(
            &self,
            ctx: JobCtx,
            _config: &asha_space::Config,
            resource: f64,
            _ckpt: Option<f64>,
        ) -> (Evaluation, f64) {
            match (self.0)(ctx) {
                Some(loss) => (Evaluation::of(loss), resource),
                None => std::panic::panic_any(JobDropped),
            }
        }
    }

    #[test]
    fn panicking_objective_never_kills_the_pool() {
        struct Bomb;
        impl Objective for Bomb {
            type Checkpoint = f64;
            fn run(&self, c: &asha_space::Config, r: f64, _ckpt: Option<f64>) -> (Evaluation, f64) {
                let x = match c.values()[0] {
                    asha_space::ParamValue::Float(v) => v,
                    _ => 0.0,
                };
                // Half the space detonates.
                if x >= 0.5 {
                    std::panic::panic_any(crate::ChaosPanic);
                }
                (Evaluation::of(x + 1.0 / r), r)
            }
        }
        crate::install_quiet_panic_hook();
        let asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(30));
        let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &Bomb, 6);
        // The run terminated via the scheduler, not a propagated panic, and
        // every panic was tallied and poisoned.
        assert!(result.scheduler_finished);
        assert!(result.faults.jobs_panicked > 0);
        assert_eq!(result.faults.jobs_panicked, result.faults.jobs_poisoned);
        // Survivors still produced a finite best.
        let (_, best) = result.best.expect("some configs are below 0.5");
        assert!(best.is_finite());
    }

    #[test]
    fn dropped_results_are_retried_from_checkpoint() {
        // First attempt of every job drops its result; retries succeed.
        let obj = CtxObjective(|ctx: JobCtx| {
            if ctx.attempt == 1 {
                None
            } else {
                Some(ctx.trial as f64 / 100.0)
            }
        });
        crate::install_quiet_panic_hook();
        let result = ParallelTuner::new(ExecConfig::new(2).with_max_jobs(10)).run(
            RandomSearch::new(space(), 4.0),
            &obj,
            7,
        );
        assert!(result.jobs_completed >= 10);
        assert_eq!(result.faults.jobs_dropped, result.jobs_completed);
        assert_eq!(result.faults.jobs_retried, result.jobs_completed);
        assert_eq!(result.faults.jobs_poisoned, 0);
        assert_eq!(result.faults.jobs_panicked, 0);
    }

    #[test]
    fn exhausted_retries_poison_the_trial() {
        // Every attempt drops: with max_retries = 1 each job consumes two
        // attempts and then poisons.
        let obj = CtxObjective(|_| None);
        crate::install_quiet_panic_hook();
        let policy = FaultPolicy::default()
            .with_max_retries(1)
            .with_backoff(Duration::from_micros(100), Duration::from_millis(1));
        let result = ParallelTuner::new(
            ExecConfig::new(2)
                .with_max_jobs(6)
                .with_fault_policy(policy),
        )
        .run(RandomSearch::new(space(), 4.0), &obj, 8);
        assert!(result.jobs_completed >= 6);
        assert_eq!(result.faults.jobs_poisoned, result.jobs_completed);
        assert_eq!(result.faults.jobs_dropped, 2 * result.jobs_completed);
        assert_eq!(result.faults.jobs_retried, result.jobs_completed);
        // Nothing finite was ever observed.
        assert!(result.best.is_none());
        assert!(result
            .trace
            .events()
            .iter()
            .all(|e| e.val_loss.is_infinite()));
    }

    #[test]
    fn timeouts_retry_then_poison() {
        let obj = FnObjective::new(|_c: &asha_space::Config, r: f64, _ckpt: Option<f64>| {
            std::thread::sleep(Duration::from_millis(50));
            (Evaluation::of(1.0 / r), r)
        });
        let policy = FaultPolicy::default()
            .with_timeout(Duration::from_millis(2))
            .with_max_retries(1)
            .with_backoff(Duration::from_micros(100), Duration::from_millis(1));
        let result = ParallelTuner::new(
            ExecConfig::new(1)
                .with_max_jobs(2)
                .with_fault_policy(policy),
        )
        .run(RandomSearch::new(space(), 4.0), &obj, 9);
        assert_eq!(result.faults.jobs_timed_out, 2 * result.jobs_completed);
        assert_eq!(result.faults.jobs_retried, result.jobs_completed);
        assert_eq!(result.faults.jobs_poisoned, result.jobs_completed);
        assert!(result.best.is_none());
    }

    #[test]
    fn interpret_classifies_panic_payloads() {
        // Arbitrary payloads poison; only the JobDropped marker is retryable.
        let dropped: Attempt<f64> = interpret(Err(Box::new(JobDropped)));
        assert!(matches!(dropped, Attempt::Dropped));
        let arbitrary: Attempt<f64> = interpret(Err(Box::new("boom".to_string())));
        assert!(matches!(arbitrary, Attempt::Panicked));
        let fine: Attempt<f64> = interpret(Ok((Evaluation::of(0.1), 1.0)));
        assert!(matches!(fine, Attempt::Done(_, _)));
    }

    #[test]
    fn nan_losses_are_sanitized_and_counted() {
        let obj = FnObjective::new(|_c: &asha_space::Config, r: f64, _ckpt: Option<f64>| {
            (Evaluation::of(f64::NAN), r)
        });
        let result = ParallelTuner::new(ExecConfig::new(2).with_max_jobs(5)).run(
            RandomSearch::new(space(), 4.0),
            &obj,
            10,
        );
        assert!(result.jobs_completed >= 5);
        assert_eq!(result.faults.jobs_poisoned, result.jobs_completed);
        assert!(result
            .trace
            .events()
            .iter()
            .all(|e| e.val_loss == f64::INFINITY));
        assert!(result.best.is_none());
    }
}

use std::collections::HashMap;
use std::time::{Duration, Instant};

use asha_core::{Decision, Observation, Scheduler, TrialId};
use asha_metrics::{RunTrace, TraceEvent};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::objective::Objective;

/// Parallel execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Stop after this many completed jobs.
    pub max_jobs: usize,
    /// Optional wall-clock limit.
    pub wall_limit: Option<Duration>,
}

impl ExecConfig {
    /// `workers` threads, a 100k-job cap, and no wall-clock limit.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ExecConfig {
            workers,
            max_jobs: 100_000,
            wall_limit: None,
        }
    }

    /// Stop after `max_jobs` completions.
    pub fn with_max_jobs(mut self, max_jobs: usize) -> Self {
        self.max_jobs = max_jobs;
        self
    }

    /// Stop after the given wall-clock duration.
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }
}

/// Outcome of a parallel tuning run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Completions in wall-clock order (times in seconds since start).
    pub trace: RunTrace,
    /// Number of completed jobs.
    pub jobs_completed: usize,
    /// Best `(trial, validation loss)` observed, if any.
    pub best: Option<(TrialId, f64)>,
    /// The best trial's configuration.
    pub best_config: Option<asha_space::Config>,
    /// Whether the scheduler reported [`Decision::Finished`].
    pub scheduler_finished: bool,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

struct Shared<S, C> {
    scheduler: S,
    rng: StdRng,
    checkpoints: HashMap<TrialId, C>,
    trace: Vec<TraceEvent>,
    jobs_completed: usize,
    best: Option<(TrialId, f64)>,
    best_config: Option<asha_space::Config>,
    stop: bool,
    finished: bool,
    idle_workers: usize,
}

/// A pool of worker threads driving one scheduler; see the crate docs.
#[derive(Debug, Clone)]
pub struct ParallelTuner {
    config: ExecConfig,
}

impl ParallelTuner {
    /// Create a tuner with the given execution parameters.
    pub fn new(config: ExecConfig) -> Self {
        ParallelTuner { config }
    }

    /// Run `scheduler` against `objective` until the scheduler finishes, the
    /// job cap is hit, or the wall-clock limit expires. `seed` drives the
    /// scheduler's sampling RNG.
    ///
    /// Worker threads hold the scheduler lock only while asking for or
    /// reporting work; objective evaluations run in parallel outside it.
    pub fn run<S, O>(&self, scheduler: S, objective: &O, seed: u64) -> ExecResult
    where
        S: Scheduler + Send,
        O: Objective,
    {
        let start = Instant::now();
        let name = scheduler.name().to_owned();
        let shared = Mutex::new(Shared {
            scheduler,
            rng: StdRng::seed_from_u64(seed),
            checkpoints: HashMap::<TrialId, O::Checkpoint>::new(),
            trace: Vec::new(),
            jobs_completed: 0,
            best: None,
            best_config: None,
            stop: false,
            finished: false,
            idle_workers: 0,
        });
        let wake = Condvar::new();
        let cfg = &self.config;

        crossbeam::scope(|scope| {
            for _ in 0..cfg.workers {
                scope.spawn(|_| {
                    loop {
                        // Acquire a job (or learn we are done).
                        let job = {
                            let mut guard = shared.lock();
                            loop {
                                let s = &mut *guard;
                                if s.stop
                                    || s.jobs_completed >= cfg.max_jobs
                                    || cfg
                                        .wall_limit
                                        .is_some_and(|limit| start.elapsed() >= limit)
                                {
                                    s.stop = true;
                                    wake.notify_all();
                                    return;
                                }
                                match s.scheduler.suggest(&mut s.rng) {
                                    Decision::Run(job) => break job,
                                    Decision::Finished => {
                                        s.finished = true;
                                        s.stop = true;
                                        wake.notify_all();
                                        return;
                                    }
                                    Decision::Wait => {
                                        // Block until some completion might
                                        // unblock the scheduler. If every
                                        // worker is waiting, nothing can ever
                                        // complete: drain to avoid deadlock.
                                        s.idle_workers += 1;
                                        if s.idle_workers == cfg.workers {
                                            s.stop = true;
                                            s.idle_workers -= 1;
                                            wake.notify_all();
                                            return;
                                        }
                                        wake.wait(&mut guard);
                                        guard.idle_workers -= 1;
                                    }
                                }
                            }
                        };

                        // Fetch (or inherit) the checkpoint.
                        let checkpoint = {
                            let s = shared.lock();
                            s.checkpoints
                                .get(&job.trial)
                                .or_else(|| {
                                    job.inherit_from.and_then(|src| s.checkpoints.get(&src))
                                })
                                .cloned()
                        };

                        // Train outside the lock.
                        let (eval, new_ckpt) = objective.run(&job.config, job.resource, checkpoint);

                        // Report.
                        let mut s = shared.lock();
                        s.checkpoints.insert(job.trial, new_ckpt);
                        s.jobs_completed += 1;
                        if s.best.is_none_or(|(_, l)| eval.val_loss < l) {
                            s.best = Some((job.trial, eval.val_loss));
                            s.best_config = Some(job.config.clone());
                        }
                        s.trace.push(TraceEvent {
                            time: start.elapsed().as_secs_f64(),
                            trial: job.trial.0,
                            bracket: job.bracket,
                            rung: job.rung,
                            resource: job.resource,
                            val_loss: eval.val_loss,
                            test_loss: eval.test_loss,
                        });
                        s.scheduler.observe(Observation::for_job(&job, eval.val_loss));
                        wake.notify_all();
                    }
                });
            }
        })
        .expect("worker thread panicked");

        let shared = shared.into_inner();
        let mut trace = RunTrace::new(name);
        let mut events = shared.trace;
        events.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap_or(std::cmp::Ordering::Equal));
        for e in events {
            trace.push(e);
        }
        ExecResult {
            trace,
            jobs_completed: shared.jobs_completed,
            best: shared.best,
            best_config: shared.best_config,
            scheduler_finished: shared.finished,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Evaluation, FnObjective};
    use asha_core::{Asha, AshaConfig, RandomSearch};
    use asha_space::{Scale, SearchSpace};

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    /// Objective: loss = |x - 0.3| + 1/resource, checkpoint = resource seen.
    type ObjFn = FnObjective<
        f64,
        fn(&asha_space::Config, f64, Option<f64>) -> (Evaluation, f64),
    >;

    fn objective() -> ObjFn {
        fn eval(c: &asha_space::Config, r: f64, ckpt: Option<f64>) -> (Evaluation, f64) {
            // Checkpoints must be cumulative: resource never decreases.
            if let Some(prev) = ckpt {
                assert!(r >= prev, "resource went backwards: {prev} -> {r}");
            }
            let x = match c.values()[0] {
                asha_space::ParamValue::Float(v) => v,
                _ => unreachable!("space is continuous"),
            };
            (Evaluation::of((x - 0.3).abs() + 1.0 / r), r)
        }
        FnObjective::new(eval as fn(&asha_space::Config, f64, Option<f64>) -> (Evaluation, f64))
    }

    #[test]
    fn asha_runs_to_trial_cap_in_parallel() {
        let asha = Asha::new(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0).with_max_trials(30),
        );
        let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &objective(), 1);
        assert!(result.scheduler_finished);
        assert!(result.jobs_completed >= 30, "{}", result.jobs_completed);
        let (_, best) = result.best.unwrap();
        assert!(best < 0.4, "best loss {best}");
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn single_worker_matches_serial_semantics() {
        let asha = Asha::new(
            space(),
            AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(9),
        );
        let result = ParallelTuner::new(ExecConfig::new(1)).run(asha, &objective(), 2);
        assert!(result.scheduler_finished);
        // 9 trials at rung 0, 3 promotions to rung 1, 1 to rung 2.
        assert_eq!(result.jobs_completed, 13);
    }

    #[test]
    fn job_cap_stops_random_search() {
        let rs = RandomSearch::new(space(), 10.0);
        let result = ParallelTuner::new(ExecConfig::new(4).with_max_jobs(50))
            .run(rs, &objective(), 3);
        assert!(result.jobs_completed >= 50);
        assert!(!result.scheduler_finished);
    }

    #[test]
    fn trace_times_are_monotone() {
        let rs = RandomSearch::new(space(), 5.0);
        let result = ParallelTuner::new(ExecConfig::new(8).with_max_jobs(100))
            .run(rs, &objective(), 4);
        let times: Vec<f64> = result.trace.events().iter().map(|e| e.time).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn drained_wait_does_not_deadlock() {
        // A trial cap of 3 with 4 workers: once all trials are issued the
        // spare workers Wait; after everything completes the scheduler
        // finishes. Must terminate.
        let asha = Asha::new(
            space(),
            AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(3),
        );
        let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &objective(), 5);
        assert!(result.jobs_completed >= 3);
    }
}

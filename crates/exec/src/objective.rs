use asha_space::Config;

/// The result of evaluating a trial at some resource level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Validation loss (what schedulers see and minimize).
    pub val_loss: f64,
    /// Test loss (recorded in traces, hidden from schedulers).
    pub test_loss: f64,
}

impl Evaluation {
    /// An evaluation whose test loss equals its validation loss.
    pub fn of(val_loss: f64) -> Self {
        Evaluation {
            val_loss,
            test_loss: val_loss,
        }
    }

    /// An evaluation with distinct validation and test losses.
    pub fn with_test(val_loss: f64, test_loss: f64) -> Self {
        Evaluation {
            val_loss,
            test_loss,
        }
    }
}

/// Identity of one execution attempt, passed to [`Objective::run_ctx`].
///
/// The executor threads this through so wrappers (notably
/// [`ChaosObjective`](crate::ChaosObjective)) can key deterministic
/// per-attempt behaviour off *which* piece of work is running rather than
/// off wall-clock or thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobCtx {
    /// Trial identifier (`TrialId.0`).
    pub trial: u64,
    /// Rung index the trial is being trained at.
    pub rung: usize,
    /// Bracket index (0 outside Hyperband).
    pub bracket: usize,
    /// 1-based attempt number; >1 means this is a retry after a fault.
    pub attempt: u32,
}

/// Panic payload marking a *retryable* lost result.
///
/// An objective (or a fault-injection wrapper) that wants to simulate "the
/// job ran but its result never came back" unwinds with this marker via
/// [`std::panic::panic_any`]. The executor treats it as a dropped result —
/// retried from the last reported checkpoint, per the fault model — whereas
/// any other panic payload marks the trial poisoned.
#[derive(Debug, Clone, Copy)]
pub struct JobDropped;

/// A trainable objective: the real-execution analogue of the paper's
/// `run_then_return_val_loss`.
///
/// `resource` is *cumulative*: implementations restore `checkpoint` (the
/// state after the previous call for this trial, if any) and train until the
/// trial's total consumed resource reaches `resource`. The returned
/// checkpoint is stored by the executor and handed back on the trial's next
/// rung — or cloned into a child trial when PBT inherits weights.
pub trait Objective: Send + Sync {
    /// Serializable-enough training state; cloning it is "copying weights".
    type Checkpoint: Clone + Send + 'static;

    /// Train `config` up to cumulative `resource` and report losses.
    fn run(
        &self,
        config: &Config,
        resource: f64,
        checkpoint: Option<Self::Checkpoint>,
    ) -> (Evaluation, Self::Checkpoint);

    /// [`run`](Objective::run), plus the attempt's identity.
    ///
    /// The executor always calls this entry point. The default forwards to
    /// `run`, so plain objectives ignore the context for free; wrappers that
    /// need determinism per `(trial, rung, attempt)` override it.
    fn run_ctx(
        &self,
        ctx: JobCtx,
        config: &Config,
        resource: f64,
        checkpoint: Option<Self::Checkpoint>,
    ) -> (Evaluation, Self::Checkpoint) {
        let _ = ctx;
        self.run(config, resource, checkpoint)
    }
}

/// Adapter turning a closure into an [`Objective`].
///
/// See the crate-level example.
pub struct FnObjective<C, F> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> C>,
}

impl<C, F> FnObjective<C, F>
where
    C: Clone + Send + 'static,
    F: Fn(&Config, f64, Option<C>) -> (Evaluation, C) + Send + Sync,
{
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnObjective {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<C, F> Objective for FnObjective<C, F>
where
    C: Clone + Send + 'static,
    F: Fn(&Config, f64, Option<C>) -> (Evaluation, C) + Send + Sync,
{
    type Checkpoint = C;

    fn run(&self, config: &Config, resource: f64, checkpoint: Option<C>) -> (Evaluation, C) {
        (self.f)(config, resource, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_constructors() {
        let e = Evaluation::of(0.5);
        assert_eq!(e.val_loss, 0.5);
        assert_eq!(e.test_loss, 0.5);
        let e = Evaluation::with_test(0.5, 0.6);
        assert_eq!(e.test_loss, 0.6);
    }

    #[test]
    fn fn_objective_threads_checkpoints() {
        let obj = FnObjective::new(|_c: &Config, r: f64, ckpt: Option<u32>| {
            let count = ckpt.unwrap_or(0) + 1;
            (Evaluation::of(1.0 / r), count)
        });
        let cfg = Config::default();
        let (e1, c1) = obj.run(&cfg, 1.0, None);
        assert_eq!(c1, 1);
        let (_, c2) = obj.run(&cfg, 2.0, Some(c1));
        assert_eq!(c2, 2);
        assert_eq!(e1.val_loss, 1.0);
    }
}

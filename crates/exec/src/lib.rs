//! Real multi-threaded parallel execution of `asha` schedulers.
//!
//! The simulator (`asha-sim`) replays schedulers against surrogate models in
//! virtual time; this crate runs them for real: a pool of worker threads
//! pulls jobs from any [`asha_core::Scheduler`] behind a mutex, trains an
//! [`Objective`] (e.g. an `asha-ml` network) on each job, checkpoints trial
//! state so rung promotions resume instead of retraining, and records a
//! wall-clock [`asha_metrics::RunTrace`].
//!
//! The asynchronous contract is exactly Algorithm 2's: each worker
//! independently asks `get_job` (here [`asha_core::Scheduler::suggest`]) the
//! moment it frees up, and completions are reported in whatever order they
//! finish. PBT's weight copies are honoured by cloning the parent trial's
//! checkpoint when a job carries `inherit_from`.
//!
//! Faults never escape the pool (paper Section 4.4; DESIGN.md "Fault
//! model"): a panicking objective poisons its trial (the scheduler observes
//! `f64::INFINITY`), timeouts and dropped results are retried from the last
//! reported checkpoint with exponential backoff per the configured
//! [`FaultPolicy`], and every event is tallied in [`ExecResult::faults`].
//! [`ChaosObjective`] injects exactly these faults deterministically for
//! testing.
//!
//! # Examples
//!
//! ```
//! use asha_core::{Asha, AshaConfig};
//! use asha_exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
//! use asha_space::{Scale, SearchSpace};
//!
//! let space = SearchSpace::builder()
//!     .continuous("x", 0.0, 1.0, Scale::Linear)
//!     .build()?;
//! // A cheap synthetic objective: checkpoint is the cumulative resource.
//! let objective = FnObjective::new(|config: &asha_space::Config, resource: f64, _ckpt: Option<f64>| {
//!     let x = config.values()[0].clone();
//!     let loss = match x { asha_space::ParamValue::Float(v) => (v - 0.3).abs(), _ => 1.0 };
//!     (Evaluation::of(loss / resource.max(1.0)), resource)
//! });
//! let asha = Asha::new(space, AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(20));
//! let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &objective, 7);
//! assert!(result.jobs_completed > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod objective;
mod tuner;

pub use chaos::{
    install_quiet_panic_hook, ChaosConfig, ChaosObjective, ChaosPanic, InjectionReport,
};
pub use objective::{Evaluation, FnObjective, JobCtx, JobDropped, Objective};
pub use tuner::{ExecConfig, ExecConfigBuilder, ExecResult, FaultPolicy, ParallelTuner};

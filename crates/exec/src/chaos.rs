//! Deterministic fault injection for any [`Objective`].
//!
//! Section 4.4 of the paper argues ASHA is robust to exactly the failures
//! real clusters produce — stragglers and dropped jobs. The simulator
//! models those in virtual time; [`ChaosObjective`] brings them to the real
//! executor: it wraps any inner objective and injects panics, delays,
//! dropped results, and NaN/Inf losses, with every decision derived purely
//! from `(seed, trial, rung, attempt)`. Two runs with the same seed inject
//! the *same* faults into the *same* jobs regardless of thread interleaving,
//! which is what makes executor fault-handling testable at all.
//!
//! # Examples
//!
//! ```
//! use asha_core::{Asha, AshaConfig};
//! use asha_exec::{
//!     ChaosConfig, ChaosObjective, Evaluation, ExecConfig, FnObjective, ParallelTuner,
//! };
//! use asha_space::{Scale, SearchSpace};
//!
//! asha_exec::install_quiet_panic_hook();
//! let space = SearchSpace::builder()
//!     .continuous("x", 0.0, 1.0, Scale::Linear)
//!     .build()?;
//! let inner = FnObjective::new(|c: &asha_space::Config, r: f64, _ckpt: Option<f64>| {
//!     let x = match c.values()[0] { asha_space::ParamValue::Float(v) => v, _ => 1.0 };
//!     (Evaluation::of((x - 0.3).abs() + 1.0 / r), r)
//! });
//! let chaos = ChaosObjective::new(inner, ChaosConfig::new(42).with_drops(0.2).with_panics(0.1));
//! let asha = Asha::new(space, AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(20));
//! let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &chaos, 7);
//! // The pool survived every injected fault and accounted for them.
//! assert_eq!(result.faults.jobs_panicked, chaos.injected().panics);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::panic::panic_any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::objective::{Evaluation, JobCtx, JobDropped, Objective};

/// Panic payload of an injected (non-retryable) crash.
///
/// The executor treats it like any other panic — the trial is poisoned —
/// but [`install_quiet_panic_hook`] recognises it and keeps test output
/// clean.
#[derive(Debug, Clone, Copy)]
pub struct ChaosPanic;

/// Silence panic-hook output for *injected* faults ([`ChaosPanic`] and
/// [`JobDropped`] payloads), delegating every other panic to the previous
/// hook. Idempotent and safe to call from concurrent tests.
pub fn install_quiet_panic_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<ChaosPanic>() || payload.is::<JobDropped>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Fault-injection rates, all decided per `(trial, rung, attempt)`.
///
/// Rates are probabilities in `[0, 1]`. Injection order per attempt:
/// delay, then panic (before the inner objective runs), then drop (after it
/// ran — the work happened, the result is lost), then NaN/Inf loss
/// corruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed with each attempt's identity; fixes the full fault script.
    pub seed: u64,
    /// Probability an attempt panics before training ([`ChaosPanic`]).
    pub panic_rate: f64,
    /// Probability an attempt's result is dropped after training
    /// ([`JobDropped`]).
    pub drop_rate: f64,
    /// Probability an attempt stalls before training (a straggler).
    pub delay_rate: f64,
    /// Stall duration is uniform in `[0, max_delay]`.
    pub max_delay: Duration,
    /// Probability the reported validation loss is corrupted to NaN.
    pub nan_rate: f64,
    /// Probability the reported validation loss is corrupted to +∞
    /// (evaluated only if the NaN draw did not fire).
    pub inf_rate: f64,
}

fn assert_rate(rate: f64, name: &str) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "{name} = {rate} is not a probability"
    );
}

impl ChaosConfig {
    /// No faults at all; `seed` fixes the script once rates are raised.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            panic_rate: 0.0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(10),
            nan_rate: 0.0,
            inf_rate: 0.0,
        }
    }

    /// Panic (crash the attempt) with probability `rate`.
    pub fn with_panics(mut self, rate: f64) -> Self {
        assert_rate(rate, "panic_rate");
        self.panic_rate = rate;
        self
    }

    /// Drop the attempt's result with probability `rate`.
    pub fn with_drops(mut self, rate: f64) -> Self {
        assert_rate(rate, "drop_rate");
        self.drop_rate = rate;
        self
    }

    /// Stall the attempt with probability `rate`, for up to `max_delay`.
    pub fn with_delays(mut self, rate: f64, max_delay: Duration) -> Self {
        assert_rate(rate, "delay_rate");
        self.delay_rate = rate;
        self.max_delay = max_delay;
        self
    }

    /// Corrupt the validation loss to NaN with probability `rate`.
    pub fn with_nan_losses(mut self, rate: f64) -> Self {
        assert_rate(rate, "nan_rate");
        self.nan_rate = rate;
        self
    }

    /// Corrupt the validation loss to +∞ with probability `rate`.
    pub fn with_inf_losses(mut self, rate: f64) -> Self {
        assert_rate(rate, "inf_rate");
        self.inf_rate = rate;
        self
    }
}

/// Tally of faults a [`ChaosObjective`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionReport {
    /// Attempts crashed before training.
    pub panics: usize,
    /// Attempt results dropped after training.
    pub drops: usize,
    /// Attempts stalled.
    pub delays: usize,
    /// Losses corrupted to NaN.
    pub nans: usize,
    /// Losses corrupted to +∞.
    pub infs: usize,
}

#[derive(Default)]
struct Counters {
    panics: AtomicUsize,
    drops: AtomicUsize,
    delays: AtomicUsize,
    nans: AtomicUsize,
    infs: AtomicUsize,
}

/// Wraps an [`Objective`] and deterministically injects faults into it; see
/// the module docs.
pub struct ChaosObjective<O> {
    inner: O,
    config: ChaosConfig,
    counters: Counters,
}

impl<O> ChaosObjective<O> {
    /// Wrap `inner` with the given fault script.
    pub fn new(inner: O, config: ChaosConfig) -> Self {
        ChaosObjective {
            inner,
            config,
            counters: Counters::default(),
        }
    }

    /// The wrapped objective.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Faults injected so far (exact, not sampled — compare against
    /// [`ExecResult::faults`](crate::ExecResult)).
    pub fn injected(&self) -> InjectionReport {
        InjectionReport {
            panics: self.counters.panics.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
            nans: self.counters.nans.load(Ordering::Relaxed),
            infs: self.counters.infs.load(Ordering::Relaxed),
        }
    }
}

/// Mix the chaos seed with an attempt's identity (SplitMix64-style finalizer
/// per field). The result fully determines the attempt's fault script.
fn attempt_seed(seed: u64, ctx: JobCtx) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [
        ctx.trial,
        ctx.rung as u64,
        ctx.bracket as u64,
        ctx.attempt as u64,
    ] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

impl<O: Objective> Objective for ChaosObjective<O> {
    type Checkpoint = O::Checkpoint;

    /// Context-free entry point: **no injection** (there is no identity to
    /// key the script off), the inner objective runs untouched. The executor
    /// always calls [`run_ctx`](Objective::run_ctx).
    fn run(
        &self,
        config: &asha_space::Config,
        resource: f64,
        checkpoint: Option<O::Checkpoint>,
    ) -> (Evaluation, O::Checkpoint) {
        self.inner.run(config, resource, checkpoint)
    }

    fn run_ctx(
        &self,
        ctx: JobCtx,
        config: &asha_space::Config,
        resource: f64,
        checkpoint: Option<O::Checkpoint>,
    ) -> (Evaluation, O::Checkpoint) {
        let mut rng = StdRng::seed_from_u64(attempt_seed(self.config.seed, ctx));
        // Fixed draw order, every draw consumed unconditionally: enabling
        // one fault class never shifts another's script.
        let delay_draw = rng.gen::<f64>();
        let delay_frac = rng.gen::<f64>();
        let panic_draw = rng.gen::<f64>();
        let drop_draw = rng.gen::<f64>();
        let nan_draw = rng.gen::<f64>();
        let inf_draw = rng.gen::<f64>();

        if delay_draw < self.config.delay_rate {
            self.counters.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.config.max_delay.mul_f64(delay_frac));
        }
        if panic_draw < self.config.panic_rate {
            self.counters.panics.fetch_add(1, Ordering::Relaxed);
            panic_any(ChaosPanic);
        }
        let (mut eval, ckpt) = self.inner.run_ctx(ctx, config, resource, checkpoint);
        if drop_draw < self.config.drop_rate {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            panic_any(JobDropped);
        }
        if nan_draw < self.config.nan_rate {
            self.counters.nans.fetch_add(1, Ordering::Relaxed);
            eval.val_loss = f64::NAN;
        } else if inf_draw < self.config.inf_rate {
            self.counters.infs.fetch_add(1, Ordering::Relaxed);
            eval.val_loss = f64::INFINITY;
        }
        (eval, ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn inner() -> impl Objective<Checkpoint = f64> {
        FnObjective::new(|_c: &asha_space::Config, r: f64, _ckpt: Option<f64>| {
            (Evaluation::of(1.0 / r), r)
        })
    }

    fn ctx(trial: u64, rung: usize, attempt: u32) -> JobCtx {
        JobCtx {
            trial,
            rung,
            bracket: 0,
            attempt,
        }
    }

    /// Classify what one attempt did, absorbing its unwind.
    fn outcome_of<O: Objective<Checkpoint = f64>>(obj: &O, c: JobCtx) -> String {
        install_quiet_panic_hook();
        let config = asha_space::Config::default();
        match catch_unwind(AssertUnwindSafe(|| obj.run_ctx(c, &config, 4.0, None))) {
            Ok((eval, _)) if eval.val_loss.is_nan() => "nan".into(),
            Ok((eval, _)) if eval.val_loss.is_infinite() => "inf".into(),
            Ok(_) => "ok".into(),
            Err(p) if p.is::<JobDropped>() => "drop".into(),
            Err(p) if p.is::<ChaosPanic>() => "panic".into(),
            Err(_) => "other".into(),
        }
    }

    #[test]
    fn zero_rates_are_a_transparent_wrapper() {
        let chaos = ChaosObjective::new(inner(), ChaosConfig::new(1));
        for t in 0..50 {
            assert_eq!(outcome_of(&chaos, ctx(t, 0, 1)), "ok");
        }
        assert_eq!(chaos.injected(), InjectionReport::default());
    }

    #[test]
    fn same_seed_same_script_regardless_of_call_order() {
        let cfg = ChaosConfig::new(99)
            .with_panics(0.2)
            .with_drops(0.2)
            .with_nan_losses(0.1)
            .with_inf_losses(0.1);
        let a = ChaosObjective::new(inner(), cfg);
        let b = ChaosObjective::new(inner(), cfg);
        let ctxs: Vec<JobCtx> = (0..100)
            .flat_map(|t| (1..=2).map(move |k| ctx(t, (t % 3) as usize, k)))
            .collect();
        let forward: Vec<String> = ctxs.iter().map(|&c| outcome_of(&a, c)).collect();
        let backward: Vec<String> = ctxs.iter().rev().map(|&c| outcome_of(&b, c)).collect();
        let backward: Vec<String> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        assert_eq!(a.injected(), b.injected());
        // The rates actually fire somewhere in 200 attempts.
        for kind in ["panic", "drop", "ok"] {
            assert!(
                forward.iter().any(|o| o == kind),
                "no {kind} in {forward:?}"
            );
        }
    }

    #[test]
    fn different_attempts_get_independent_draws() {
        // A drop on attempt 1 must not force a drop on attempt 2, or retries
        // would be pointless. With drop_rate 0.5, some trial has differing
        // outcomes across attempts.
        let cfg = ChaosConfig::new(3).with_drops(0.5);
        let chaos = ChaosObjective::new(inner(), cfg);
        let differs =
            (0..100).any(|t| outcome_of(&chaos, ctx(t, 0, 1)) != outcome_of(&chaos, ctx(t, 0, 2)));
        assert!(differs);
    }

    #[test]
    fn injection_counts_match_outcomes() {
        let cfg = ChaosConfig::new(7).with_panics(0.3).with_drops(0.3);
        let chaos = ChaosObjective::new(inner(), cfg);
        let outcomes: Vec<String> = (0..200).map(|t| outcome_of(&chaos, ctx(t, 0, 1))).collect();
        let report = chaos.injected();
        assert_eq!(
            report.panics,
            outcomes.iter().filter(|o| *o == "panic").count()
        );
        assert_eq!(
            report.drops,
            outcomes.iter().filter(|o| *o == "drop").count()
        );
        assert!(report.panics > 0 && report.drops > 0);
    }

    #[test]
    fn nan_and_inf_corruption_fires() {
        let cfg = ChaosConfig::new(5)
            .with_nan_losses(0.3)
            .with_inf_losses(0.3);
        let chaos = ChaosObjective::new(inner(), cfg);
        let outcomes: Vec<String> = (0..200).map(|t| outcome_of(&chaos, ctx(t, 0, 1))).collect();
        let report = chaos.injected();
        assert_eq!(report.nans, outcomes.iter().filter(|o| *o == "nan").count());
        assert_eq!(report.infs, outcomes.iter().filter(|o| *o == "inf").count());
        assert!(report.nans > 0 && report.infs > 0);
    }

    #[test]
    fn context_free_run_injects_nothing() {
        let cfg = ChaosConfig::new(11).with_panics(1.0);
        let chaos = ChaosObjective::new(inner(), cfg);
        let (eval, _) = chaos.run(&asha_space::Config::default(), 4.0, None);
        assert!(eval.val_loss.is_finite());
        assert_eq!(chaos.injected().panics, 0);
    }
}

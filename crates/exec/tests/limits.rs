//! Stop-condition and stress tests of the parallel executor.

use std::time::Duration;

use asha_core::{Asha, AshaConfig, RandomSearch};
use asha_exec::{Evaluation, ExecConfig, FnObjective, ParallelTuner};
use asha_space::{Config, Scale, SearchSpace};

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space")
}

fn instant_objective() -> impl asha_exec::Objective<Checkpoint = f64> {
    FnObjective::new(|_c: &Config, r: f64, _ckpt: Option<f64>| (Evaluation::of(1.0 / r), r))
}

fn slow_objective() -> impl asha_exec::Objective<Checkpoint = f64> {
    FnObjective::new(|_c: &Config, r: f64, _ckpt: Option<f64>| {
        std::thread::sleep(Duration::from_millis(20));
        (Evaluation::of(1.0 / r), r)
    })
}

#[test]
fn wall_limit_stops_an_endless_scheduler() {
    let rs = RandomSearch::new(space(), 10.0);
    let result = ParallelTuner::new(ExecConfig::new(2).with_wall_limit(Duration::from_millis(150)))
        .run(rs, &slow_objective(), 0);
    assert!(!result.scheduler_finished);
    assert!(result.elapsed < Duration::from_secs(5));
    assert!(result.jobs_completed >= 1);
}

#[test]
fn many_workers_with_instant_jobs_do_not_race() {
    let asha = Asha::new(
        space(),
        AshaConfig::new(1.0, 81.0, 3.0).with_max_trials(200),
    );
    let result = ParallelTuner::new(ExecConfig::new(16)).run(asha, &instant_objective(), 1);
    assert!(result.scheduler_finished);
    // Every trace event is unique per (trial, rung).
    let mut seen = std::collections::HashSet::new();
    for e in result.trace.events() {
        assert!(seen.insert((e.trial, e.rung)), "duplicate completion");
    }
    assert!(result.jobs_completed >= 200);
    assert_eq!(result.jobs_completed, result.trace.len());
    // Best config is reported and consistent with `best`.
    let (_, best_loss) = result.best.expect("jobs ran");
    assert!(result.best_config.is_some());
    assert!(best_loss <= 1.0);
}

#[test]
fn single_job_cap_is_respected_exactly_enough() {
    let rs = RandomSearch::new(space(), 10.0);
    let result =
        ParallelTuner::new(ExecConfig::new(4).with_max_jobs(10)).run(rs, &instant_objective(), 2);
    // Workers can overshoot by at most the number of in-flight jobs.
    assert!(result.jobs_completed >= 10);
    assert!(result.jobs_completed <= 14, "{}", result.jobs_completed);
}

#[test]
fn trace_is_sorted_and_names_survive() {
    let asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(9));
    let result = ParallelTuner::new(ExecConfig::new(4)).run(asha, &instant_objective(), 3);
    assert_eq!(result.trace.searcher(), "ASHA");
    let times: Vec<f64> = result.trace.events().iter().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

//! The `asha-serve` daemon: sockets, connection threads, subscriptions.
//!
//! # Threading model
//!
//! No async runtime — the daemon is plain threads and bounded channels:
//!
//! * one **accept thread** per listener (Unix socket, TCP), non-blocking
//!   with a short poll so shutdown is prompt;
//! * per connection, a **reader thread** (decodes frames, executes
//!   requests under the supervisor lock, enqueues replies) and a **writer
//!   thread** (drains the connection's bounded outgoing queue to the
//!   socket);
//! * per subscription, a **tailer thread** following the experiment's WAL
//!   with [`asha_obs::LogTail`];
//! * one **housekeeping thread** reaping finished experiment workers.
//!
//! # Backpressure and lag
//!
//! Each connection has one bounded outgoing queue. Replies use a blocking
//! send — a client that stops reading stalls only *its own* requests.
//! Subscription traffic never blocks anything else, by two mechanisms:
//!
//! * **WAL event frames** are file-backed, so the tailer never drops
//!   them: when the queue is full it holds the undelivered suffix and
//!   retries, delivering a gap-free stream at whatever pace the client
//!   reads. Only the tailer's own thread waits.
//! * **Status pushes** fire on supervisor/worker threads, which must not
//!   wait on anyone; they use `try_send` only. A dropped frame grows the
//!   subscription's lag counter (`events_lagged` in daemon stats), and
//!   the next frame that fits is preceded by a `lag` push telling the
//!   subscriber exactly how many frames it lost.
//!
//! Either way a slow subscriber never stalls a tailer of another client,
//! the supervisor, or the experiment making progress.
//!
//! # Graceful shutdown
//!
//! `shutdown` (the request, [`Daemon::begin_shutdown`], or SIGTERM in the
//! binary) stops the accept loops, aborts running experiments at their
//! next step boundary (each parks behind a durable snapshot and the
//! manifest is flushed), lets tailers push a final `end` frame, and drains
//! every connection's outgoing queue before the process exits.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asha_core::Error;
use asha_metrics::JsonValue;
use asha_obs::{Durability, JsonlWriter, LogTail};
use asha_store::{ExperimentSupervisor, WAL_FILE};

use crate::codec::{encode_frame, Frame, FrameReader};
use crate::conn::Conn;
use crate::proto::{DaemonStats, Push, Reply, Request, WireStatus, DEFAULT_MAX_FRAME};

/// Configuration for [`Daemon::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Supervisor root directory (experiment stores live under it).
    pub root: PathBuf,
    /// Unix socket path to listen on (removed and rebound at start,
    /// removed again at shutdown). `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// TCP address to listen on (e.g. `127.0.0.1:7070`; port 0 picks a
    /// free port, see [`Daemon::tcp_addr`]). `None` disables TCP.
    pub tcp: Option<String>,
    /// Maximum encoded frame size accepted from a client.
    pub max_frame: usize,
    /// Per-connection read timeout; also bounds how fast connection
    /// threads notice a shutdown.
    pub read_timeout: Duration,
    /// Depth of each connection's bounded outgoing queue (frames).
    pub queue_depth: usize,
    /// How often subscription tailers poll the WAL for new lines.
    pub poll_interval: Duration,
    /// Optional request/response trace: every request and reply frame is
    /// appended as JSONL through [`asha_obs::JsonlWriter`].
    pub trace: Option<PathBuf>,
}

impl ServeOptions {
    /// Options with library defaults and no listeners; enable at least one
    /// of `unix` / `tcp` before [`Daemon::start`].
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeOptions {
            root: root.into(),
            unix: None,
            tcp: None,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(200),
            queue_depth: 256,
            poll_interval: Duration::from_millis(25),
            trace: None,
        }
    }
}

/// Lifetime counters, updated lock-free from every thread.
#[derive(Debug, Default)]
struct StatsCells {
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    requests: AtomicU64,
    subscriptions_open: AtomicU64,
    events_sent: AtomicU64,
    events_lagged: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> DaemonStats {
        DaemonStats {
            connections_total: self.connections_total.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            subscriptions_open: self.subscriptions_open.load(Ordering::Relaxed),
            events_sent: self.events_sent.load(Ordering::Relaxed),
            events_lagged: self.events_lagged.load(Ordering::Relaxed),
        }
    }
}

/// One live subscription, shared between its tailer thread, the status
/// watcher registry, and the owning connection's reader thread.
struct SubState {
    sub: u64,
    /// The owning connection's outgoing queue.
    tx: SyncSender<String>,
    /// Push frames dropped since the last delivered one; reported to the
    /// subscriber as a `lag` push as soon as a frame fits again.
    dropped: AtomicU64,
    /// Set by unsubscribe, connection teardown, or end-of-stream.
    closed: AtomicBool,
}

/// Outcome of one non-blocking delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delivery {
    /// The frame is in the queue.
    Sent,
    /// The queue is full; the caller keeps the frame.
    Full,
    /// The subscription is closed (unsubscribed or connection gone).
    Closed,
}

impl SubState {
    fn try_line(&self, stats: &StatsCells, line: String) -> Delivery {
        match self.tx.try_send(line) {
            Ok(()) => {
                stats.events_sent.fetch_add(1, Ordering::Relaxed);
                Delivery::Sent
            }
            Err(TrySendError::Full(_)) => Delivery::Full,
            Err(TrySendError::Disconnected(_)) => {
                self.closed.store(true, Ordering::Release);
                Delivery::Closed
            }
        }
    }

    /// Flush any owed `lag` notice; it must precede the next delivered
    /// frame so the gap's position in the stream is unambiguous.
    fn flush_owed(&self, stats: &StatsCells) -> Delivery {
        let owed = self.dropped.load(Ordering::Acquire);
        if owed == 0 {
            return Delivery::Sent;
        }
        let lag = Push::Lag {
            sub: self.sub,
            dropped: owed,
        };
        let delivery = self.try_line(stats, encode_frame(&lag.to_frame()));
        if delivery == Delivery::Sent {
            self.dropped.fetch_sub(owed, Ordering::AcqRel);
        }
        delivery
    }

    /// Offer a frame without blocking or dropping: on a full queue the
    /// caller retains the frame and retries later. The WAL tailer uses
    /// this — its data is file-backed, so "wait" loses nothing.
    fn offer(&self, stats: &StatsCells, push: &Push) -> Delivery {
        if self.closed.load(Ordering::Acquire) {
            return Delivery::Closed;
        }
        match self.flush_owed(stats) {
            Delivery::Sent => {}
            other => return other,
        }
        self.try_line(stats, encode_frame(&push.to_frame()))
    }

    /// Deliver a push that may be dropped under backpressure, with lag
    /// accounting. Status pushes use this: they fire on supervisor /
    /// worker threads, which must never wait on a slow subscriber.
    fn push_lossy(&self, stats: &StatsCells, push: &Push) {
        match self.offer(stats, push) {
            Delivery::Sent | Delivery::Closed => {}
            Delivery::Full => {
                self.dropped.fetch_add(1, Ordering::AcqRel);
                stats.events_lagged.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Deliver a stream-control push (`rewind`, `end`) that must arrive:
    /// retry until it fits or the subscription closes. Only the tailer's
    /// own thread ever waits here — the experiment, the supervisor, and
    /// other clients are untouched.
    fn push_persistent(&self, stats: &StatsCells, push: &Push) {
        loop {
            match self.offer(stats, push) {
                Delivery::Sent | Delivery::Closed => return,
                Delivery::Full => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }
}

/// Experiment name → subscriptions that want its status pushes.
type Watchers = Mutex<HashMap<String, Vec<Arc<SubState>>>>;

/// State shared by every daemon thread.
struct Shared {
    opts: ServeOptions,
    supervisor: Mutex<ExperimentSupervisor>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsCells>,
    watchers: Arc<Watchers>,
    next_sub: AtomicU64,
    trace: Option<Mutex<JsonlWriter>>,
}

impl Shared {
    fn trace_frame(&self, direction: &str, peer: &str, frame: &JsonValue) {
        if let Some(trace) = &self.trace {
            let line = JsonValue::obj([
                ("dir", JsonValue::Str(direction.to_owned())),
                ("peer", JsonValue::Str(peer.to_owned())),
                ("frame", frame.clone()),
            ])
            .render_compact();
            let mut w = trace.lock().unwrap();
            let _ = w.append_raw(&line);
            let _ = w.commit();
        }
    }
}

/// A running daemon. Start with [`Daemon::start`], stop with a `shutdown`
/// request, [`Daemon::begin_shutdown`], or (in the binary) SIGTERM; then
/// [`Daemon::wait`] drains and joins everything.
pub struct Daemon {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Daemon {
    /// Bind the configured listeners, open the supervisor root, and start
    /// serving.
    pub fn start(opts: ServeOptions) -> Result<Daemon, Error> {
        if opts.unix.is_none() && opts.tcp.is_none() {
            return Err(Error::config(
                "daemon needs a unix socket path or a tcp address",
            ));
        }
        let mut supervisor = ExperimentSupervisor::open(&opts.root)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsCells::default());
        let watchers: Arc<Watchers> = Arc::new(Mutex::new(HashMap::new()));

        // Status changes fan out to subscriptions through the supervisor's
        // listener hook. The closure captures only the registries — not the
        // supervisor itself — so there is no ownership cycle, and it runs
        // after the manifest write with `try_send`-only delivery, so it can
        // never stall a state transition.
        {
            let watchers = Arc::clone(&watchers);
            let stats = Arc::clone(&stats);
            supervisor.set_status_listener(Arc::new(move |name, status| {
                let map = watchers.lock().unwrap();
                if let Some(subs) = map.get(name) {
                    for sub in subs {
                        sub.push_lossy(
                            &stats,
                            &Push::Status {
                                sub: sub.sub,
                                state: WireStatus {
                                    name: name.to_owned(),
                                    status,
                                },
                            },
                        );
                    }
                }
            }));
        }

        let trace = match &opts.trace {
            Some(path) => Some(Mutex::new(
                JsonlWriter::create(path, Durability::Flush)
                    .map_err(|e| Error::io(path, e).context("opening trace log"))?,
            )),
            None => None,
        };

        let unix_path = opts.unix.clone();
        let shared = Arc::new(Shared {
            opts,
            supervisor: Mutex::new(supervisor),
            shutdown,
            stats,
            watchers,
            next_sub: AtomicU64::new(1),
            trace,
        });

        let mut threads = Vec::new();
        let mut tcp_addr = None;

        #[cfg(unix)]
        if let Some(path) = &unix_path {
            // A previous unclean exit leaves a stale socket file; rebinding
            // is only possible after removing it.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| Error::io(path, e).context("binding unix socket"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(path, e))?;
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_unix(listener, shared)));
        }
        #[cfg(not(unix))]
        if unix_path.is_some() {
            return Err(Error::config(
                "unix sockets are not available on this platform",
            ));
        }

        if let Some(addr) = shared.opts.tcp.clone() {
            let listener = TcpListener::bind(&addr)
                .map_err(|e| Error::from(e).context(format!("binding tcp {addr}")))?;
            tcp_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| Error::from(e).context("reading bound tcp address"))?,
            );
            listener.set_nonblocking(true).map_err(Error::from)?;
            let shared_tcp = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || accept_tcp(listener, shared_tcp)));
        }

        // Housekeeping: reap finished experiment workers so their terminal
        // status lands in the manifest (and status pushes) without any
        // client having to call join.
        {
            let shared = Arc::clone(&shared);
            threads.push(std::thread::spawn(move || housekeeper(shared)));
        }

        Ok(Daemon {
            shared,
            threads,
            tcp_addr,
            unix_path,
        })
    }

    /// The actual bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The shutdown flag; setting it to `true` (e.g. from a signal
    /// handler) is equivalent to [`Daemon::begin_shutdown`].
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.shutdown)
    }

    /// Request a graceful shutdown (idempotent, non-blocking).
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested (by request, signal, or
    /// [`Daemon::begin_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Current daemon counters.
    pub fn stats(&self) -> DaemonStats {
        self.shared.stats.snapshot()
    }

    /// Block until shutdown is requested, then drain: stop accepting, park
    /// running experiments behind durable snapshots, flush the manifest,
    /// and give connections a grace period to drain their queues.
    pub fn wait(self) -> Result<(), Error> {
        while !self.shared.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(self.shared.opts.poll_interval);
        }
        // Accept loops and the housekeeper exit on the flag.
        for t in self.threads {
            let _ = t.join();
        }
        // Park running experiments: abort snapshots at the next step
        // boundary and leaves every store resumable; the manifest is
        // rewritten per transition.
        let result = {
            let mut sup = self.shared.supervisor.lock().unwrap();
            let mut first_err = None;
            let _ = sup.reap_finished();
            for name in sup.active() {
                if let Err(e) = sup.abort(&name) {
                    first_err.get_or_insert(e);
                }
            }
            first_err
        };
        // Grace period: connection threads notice the flag within one read
        // timeout, drop their queue senders, and writers drain.
        let grace = self.shared.opts.read_timeout * 10;
        let deadline = Instant::now() + grace;
        while self.shared.stats.connections_open.load(Ordering::Relaxed) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(self.shared.opts.poll_interval);
        }
        if let Some(trace) = &self.shared.trace {
            let _ = trace.lock().unwrap().commit();
        }
        #[cfg(unix)]
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        match result {
            Some(e) => Err(e.context("parking experiments at shutdown")),
            None => Ok(()),
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: UnixListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(Conn::Unix(stream), &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.opts.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.opts.poll_interval),
        }
    }
}

fn accept_tcp(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => spawn_connection(Conn::Tcp(stream), &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.opts.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.opts.poll_interval),
        }
    }
}

fn housekeeper(shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        {
            let mut sup = shared.supervisor.lock().unwrap();
            let _ = sup.reap_finished();
        }
        std::thread::sleep(shared.opts.poll_interval.max(Duration::from_millis(20)));
    }
}

fn spawn_connection(conn: Conn, shared: &Arc<Shared>) {
    // Accepted sockets must be blocking regardless of the listener's mode;
    // the reader relies on read timeouts, not non-blocking reads.
    let _ = match &conn {
        #[cfg(unix)]
        Conn::Unix(s) => s.set_nonblocking(false),
        Conn::Tcp(s) => s.set_nonblocking(false),
    };
    let _ = conn.set_read_timeout(Some(shared.opts.read_timeout));
    let write_half = match conn.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    shared
        .stats
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .connections_open
        .fetch_add(1, Ordering::Relaxed);

    let (tx, rx) = std::sync::mpsc::sync_channel::<String>(shared.opts.queue_depth);
    let shared_reader = Arc::clone(shared);
    std::thread::spawn(move || {
        connection_main(conn, write_half, tx, rx, shared_reader);
    });
}

fn connection_main(
    conn: Conn,
    write_half: Conn,
    tx: SyncSender<String>,
    rx: Receiver<String>,
    shared: Arc<Shared>,
) {
    let peer = conn.peer();
    // Writer: drains the bounded queue to the socket. Exits when every
    // sender (reader + subscription states) is gone and the queue is empty
    // — which is exactly "drain, then close".
    let writer = std::thread::spawn(move || writer_main(write_half, rx));

    let mut reader = FrameReader::with_max_frame(conn, shared.opts.max_frame);
    // Subscriptions owned by this connection, for unsubscribe and teardown.
    let mut subs: HashMap<u64, Arc<SubState>> = HashMap::new();

    loop {
        match reader.read_frame() {
            Ok(Frame::TimedOut) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(Frame::Eof) => break,
            Ok(Frame::Value(frame)) => {
                shared.trace_frame("req", &peer, &frame);
                shared.stats.requests.fetch_add(1, Ordering::Relaxed);
                let response = handle_frame(&frame, &tx, &mut subs, &shared);
                shared.trace_frame("res", &peer, &response);
                // Blocking send: replies apply backpressure to the client's
                // own request stream, never to anyone else.
                if tx.send(encode_frame(&response)).is_err() {
                    break;
                }
            }
            Err(e) => {
                // Oversized or malformed frames get a diagnostic before the
                // stream state is trusted again; torn/IO failures just end
                // the connection.
                let msg = e.to_string();
                let fatal = msg.contains("torn frame") || e.kind() == asha_core::ErrorKind::Io;
                let frame = Reply::error_frame(0, &e);
                shared.trace_frame("res", &peer, &frame);
                if tx.send(encode_frame(&frame)).is_err() || fatal {
                    break;
                }
            }
        }
    }

    // Teardown: close our subscriptions so tailers exit, unregister
    // watchers, drop the sender so the writer can drain and finish.
    for (_, sub) in subs.drain() {
        sub.closed.store(true, Ordering::Release);
    }
    prune_watchers(&shared);
    drop(tx);
    let _ = reader.get_ref().shutdown();
    let _ = writer.join();
    shared
        .stats
        .connections_open
        .fetch_sub(1, Ordering::Relaxed);
}

fn writer_main(mut conn: Conn, rx: Receiver<String>) {
    let mut batch = String::new();
    while let Ok(line) = rx.recv() {
        // Coalesce whatever else is already queued into one write: frame
        // boundaries are newlines, so concatenation is free, and this turns
        // a hot subscription stream from two syscalls per frame into two
        // per queue drain.
        batch.clear();
        batch.push_str(&line);
        while batch.len() < 64 * 1024 {
            match rx.try_recv() {
                Ok(next) => batch.push_str(&next),
                Err(_) => break,
            }
        }
        if conn.write_all(batch.as_bytes()).is_err() || conn.flush().is_err() {
            // Peer is gone: keep draining the queue so senders never block
            // on a dead connection.
            for _ in rx.iter() {}
            break;
        }
    }
    let _ = conn.shutdown();
}

/// Drop closed subscriptions from the status-watcher registry.
fn prune_watchers(shared: &Shared) {
    let mut map = shared.watchers.lock().unwrap();
    map.retain(|_, subs| {
        subs.retain(|s| !s.closed.load(Ordering::Acquire));
        !subs.is_empty()
    });
}

fn handle_frame(
    frame: &JsonValue,
    tx: &SyncSender<String>,
    subs: &mut HashMap<u64, Arc<SubState>>,
    shared: &Arc<Shared>,
) -> JsonValue {
    let (id, request) = match Request::from_frame(frame) {
        Ok(pair) => pair,
        Err(e) => {
            // Salvage the id if the frame had one so the client can
            // correlate the failure.
            let id = frame.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
            return Reply::error_frame(id, &e);
        }
    };
    match execute(id, request, tx, subs, shared) {
        Ok(reply) => reply.to_frame(id),
        Err(e) => Reply::error_frame(id, &e),
    }
}

fn execute(
    _id: u64,
    request: Request,
    tx: &SyncSender<String>,
    subs: &mut HashMap<u64, Arc<SubState>>,
    shared: &Arc<Shared>,
) -> Result<Reply, Error> {
    match request {
        Request::Ping => Ok(Reply::Pong),
        Request::Create { meta, opts } => {
            let mut sup = shared.supervisor.lock().unwrap();
            sup.create(&meta, opts)?;
            Ok(Reply::Ack)
        }
        Request::Start { name, opts } => {
            let mut sup = shared.supervisor.lock().unwrap();
            sup.start(&name, opts)?;
            Ok(Reply::Ack)
        }
        Request::Pause { name } => {
            let mut sup = shared.supervisor.lock().unwrap();
            sup.pause(&name)?;
            Ok(Reply::Ack)
        }
        Request::Resume { name } => {
            let mut sup = shared.supervisor.lock().unwrap();
            sup.resume(&name)?;
            Ok(Reply::Ack)
        }
        Request::Abort { name } => {
            let mut sup = shared.supervisor.lock().unwrap();
            sup.abort(&name)?;
            Ok(Reply::Ack)
        }
        Request::Status { name } => {
            let sup = shared.supervisor.lock().unwrap();
            let status = sup
                .status(&name)
                .ok_or_else(|| Error::missing(format!("experiment {name:?}")))?;
            Ok(Reply::Status(WireStatus { name, status }))
        }
        Request::List => {
            let sup = shared.supervisor.lock().unwrap();
            Ok(Reply::List(
                sup.experiments()
                    .iter()
                    .map(|e| WireStatus {
                        name: e.name.clone(),
                        status: e.status,
                    })
                    .collect(),
            ))
        }
        Request::Stats => Ok(Reply::Stats(shared.stats.snapshot())),
        Request::Subscribe { name, from_seq } => {
            let wal_path = {
                let sup = shared.supervisor.lock().unwrap();
                if sup.status(&name).is_none() {
                    return Err(Error::missing(format!("experiment {name:?}")));
                }
                sup.experiment_dir(&name).join(WAL_FILE)
            };
            let sub_id = shared.next_sub.fetch_add(1, Ordering::Relaxed);
            let state = Arc::new(SubState {
                sub: sub_id,
                tx: tx.clone(),
                dropped: AtomicU64::new(0),
                closed: AtomicBool::new(false),
            });
            subs.insert(sub_id, Arc::clone(&state));
            shared
                .watchers
                .lock()
                .unwrap()
                .entry(name.clone())
                .or_default()
                .push(Arc::clone(&state));
            shared
                .stats
                .subscriptions_open
                .fetch_add(1, Ordering::Relaxed);
            let shared_tail = Arc::clone(shared);
            std::thread::spawn(move || {
                tailer_main(wal_path, from_seq, state, shared_tail);
            });
            Ok(Reply::Subscribed { sub: sub_id })
        }
        Request::Unsubscribe { sub } => {
            let state = subs
                .remove(&sub)
                .ok_or_else(|| Error::missing(format!("subscription {sub}")))?;
            state.closed.store(true, Ordering::Release);
            prune_watchers(shared);
            Ok(Reply::Ack)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            Ok(Reply::Ack)
        }
    }
}

/// Body of one subscription's tailer thread: stream the experiment's WAL
/// to the subscriber until the experiment finishes, the subscription
/// closes, or the daemon shuts down (final drain, then `end`).
///
/// Event frames are never dropped: the WAL is on disk, so when the
/// subscriber's queue is full the tailer simply holds the undelivered
/// suffix and retries — the stream is gap-free at whatever pace the
/// client reads, and nothing here can stall the experiment.
fn tailer_main(wal_path: PathBuf, from_seq: u64, state: Arc<SubState>, shared: Arc<Shared>) {
    let mut tail = LogTail::new(&wal_path);
    let mut backlog: std::collections::VecDeque<Push> = std::collections::VecDeque::new();
    let mut finished = false;
    'outer: loop {
        if state.closed.load(Ordering::Acquire) {
            break;
        }
        // Deliver as much retained backlog as fits right now.
        let mut jammed = false;
        while let Some(push) = backlog.front() {
            match state.offer(&shared.stats, push) {
                Delivery::Sent => {
                    backlog.pop_front();
                }
                Delivery::Full => {
                    jammed = true;
                    break;
                }
                Delivery::Closed => break 'outer,
            }
        }
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        if backlog.is_empty() {
            if finished || shutting_down {
                break;
            }
            match tail.poll() {
                Ok(chunk) => {
                    if chunk.rewound {
                        // Crash recovery rewrote the WAL shorter: restart
                        // from the top; everything held back is stale.
                        backlog.clear();
                        state.push_persistent(&shared.stats, &Push::Rewind { sub: state.sub });
                    }
                    for line in &chunk.lines {
                        let Ok(value) = JsonValue::parse(line) else {
                            continue;
                        };
                        // Telemetry lines carry a sequence number; store
                        // markers do not and always flow.
                        if let Some(seq) = value.get("seq").and_then(|s| s.as_u64()) {
                            if seq < from_seq {
                                continue;
                            }
                        }
                        if value.get("ev").and_then(|e| e.as_str()) == Some("experiment_finished") {
                            finished = true;
                        }
                        backlog.push_back(Push::Event {
                            sub: state.sub,
                            data: value,
                        });
                    }
                    if chunk.lines.is_empty() {
                        std::thread::sleep(shared.opts.poll_interval);
                    }
                }
                Err(_) => {
                    // Transient read failure (e.g. mid-rename); retry.
                    std::thread::sleep(shared.opts.poll_interval);
                }
            }
        } else if jammed {
            // Queue full: give the writer a moment to drain.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    if !state.closed.load(Ordering::Acquire) {
        state.push_persistent(&shared.stats, &Push::End { sub: state.sub });
        state.closed.store(true, Ordering::Release);
    }
    shared
        .stats
        .subscriptions_open
        .fetch_sub(1, Ordering::Relaxed);
}

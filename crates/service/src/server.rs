//! The `asha-serve` daemon: reactor, worker pool, experiment tailers.
//!
//! # Threading model
//!
//! No async runtime, and no per-connection threads — the daemon is a
//! *fixed* set of threads regardless of how many clients connect:
//!
//! * one **reactor thread** (see [`crate::reactor`]) owning every socket:
//!   both listeners and all accepted connections, non-blocking, driven by
//!   readiness events (epoll on Linux, `poll(2)` elsewhere). It decodes
//!   frames incrementally and drains each connection's outgoing queue with
//!   partial-write resumption;
//! * a **worker pool** ([`ServeOptions::workers`] threads) executing
//!   decoded requests under the supervisor lock, strict FIFO per
//!   connection;
//! * one **tailer thread per experiment** (see [`crate::tailer`] — *not*
//!   per subscription) reading each WAL record once and fanning frames out
//!   to every subscriber's queue;
//! * one **housekeeping thread** reaping finished experiment workers.
//!
//! # Backpressure and lag
//!
//! Each connection has one bounded outgoing queue. Replies are never
//! dropped; instead the reactor stops *reading* from a connection whose
//! backlog exceeds the high-water mark, so a client that stops draining
//! replies stalls only its own request stream. Subscription traffic never
//! blocks anything else, by two mechanisms:
//!
//! * **WAL event frames** are file-backed, so the tailer never drops
//!   them: when the queue is full it holds the subscriber's cursor and
//!   retries, delivering a gap-free stream at whatever pace the client
//!   reads. Only the experiment's tailer thread waits, and only on its
//!   own schedule — other subscribers of the same experiment keep
//!   receiving.
//! * **Status pushes** fire on supervisor/worker threads, which must not
//!   wait on anyone; they are offered without retry. A dropped frame grows
//!   the subscription's lag counter (`events_lagged` in daemon stats), and
//!   the next frame that fits is preceded by a `lag` push telling the
//!   subscriber exactly how many frames it lost.
//!
//! # Graceful shutdown
//!
//! `shutdown` (the request, [`Daemon::begin_shutdown`], or SIGTERM in the
//! binary) stops accepting and reading, aborts running experiments at
//! their next step boundary (each parks behind a durable snapshot and the
//! manifest is flushed), lets tailers push a final `end` frame, and drains
//! every connection's outgoing queue before the process exits.

use std::path::PathBuf;
use std::time::Duration;

#[cfg(not(unix))]
use asha_core::Error;

#[cfg(not(unix))]
use crate::proto::DaemonStats;
use crate::proto::DEFAULT_MAX_FRAME;

/// Configuration for [`Daemon::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Supervisor root directory (experiment stores live under it).
    pub root: PathBuf,
    /// Unix socket path to listen on (removed and rebound at start,
    /// removed again at shutdown). `None` disables the Unix listener.
    pub unix: Option<PathBuf>,
    /// TCP address to listen on (e.g. `127.0.0.1:7070`; port 0 picks a
    /// free port, see [`Daemon::tcp_addr`]). `None` disables TCP.
    pub tcp: Option<String>,
    /// Maximum encoded frame size accepted from a client.
    pub max_frame: usize,
    /// Grace unit for shutdown draining (the drain window is ten times
    /// this), kept under its historical name for compatibility.
    pub read_timeout: Duration,
    /// Depth of each connection's bounded outgoing queue (frames); also
    /// the high-water mark above which the reactor pauses that
    /// connection's reads.
    pub queue_depth: usize,
    /// How often experiment tailers poll the WAL for new lines; also the
    /// reactor's poll timeout (bounds shutdown latency).
    pub poll_interval: Duration,
    /// Worker threads executing requests (the fixed pool the reactor
    /// feeds).
    pub workers: usize,
    /// Optional request/response trace: every request and reply frame is
    /// appended as JSONL through [`asha_obs::JsonlWriter`].
    pub trace: Option<PathBuf>,
    /// Whether the metrics plane records at all. With `false` every
    /// recorder is an early-return and snapshots report zeros (used to
    /// measure the plane's own overhead).
    pub metrics: bool,
    /// Optional HTTP listener address (e.g. `127.0.0.1:9090`) answering
    /// `GET /metrics` in Prometheus text exposition format. Served by the
    /// same reactor and worker pool as the protocol listeners.
    pub metrics_addr: Option<String>,
    /// Optional slow-request log: requests whose queue-wait + execute time
    /// crosses [`ServeOptions::slow_threshold`] are appended as JSONL.
    pub slow_log: Option<PathBuf>,
    /// Threshold for the slow-request log.
    pub slow_threshold: Duration,
    /// Group commit window: when set, every experiment's WAL fsyncs are
    /// coalesced through one shared [`asha_store::CommitPipeline`] — at
    /// most one fsync per WAL per window, each request acked only after
    /// its bytes are durable. `None` keeps per-experiment fsyncs.
    pub group_commit: Option<Duration>,
}

impl ServeOptions {
    /// Options with library defaults and no listeners; enable at least one
    /// of `unix` / `tcp` before [`Daemon::start`].
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServeOptions {
            root: root.into(),
            unix: None,
            tcp: None,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_millis(200),
            queue_depth: 256,
            poll_interval: Duration::from_millis(25),
            workers: 4,
            trace: None,
            metrics: true,
            metrics_addr: None,
            slow_log: None,
            slow_threshold: Duration::from_secs(1),
            group_commit: None,
        }
    }
}

#[cfg(unix)]
pub use unix_impl::Daemon;

#[cfg(unix)]
mod unix_impl {
    use std::collections::HashMap;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::net::UnixListener;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::Duration;

    use asha_core::Error;
    use asha_metrics::JsonValue;
    use asha_obs::{Durability, JsonlWriter};
    use asha_store::{ExperimentSupervisor, WAL_FILE};

    use super::ServeOptions;
    use crate::codec::encode_frame;
    use crate::metrics::ServiceMetrics;
    use crate::proto::{DaemonStats, Push, Reply, Request, WireStatus};
    use crate::reactor::{
        start_reactor, ConnHandle, ConnHandler, Listener, PendingReq, PoolSubmitter, ReactorConfig,
        ReactorFlags, ReactorHandle, Work, WorkerPool,
    };
    use crate::tailer::{SubState, TailerCtx, TailerRegistry};

    /// Experiment name → subscriptions that want its status pushes.
    type Watchers = Mutex<HashMap<String, Vec<Arc<SubState>>>>;

    /// State shared by every daemon thread.
    pub(crate) struct Shared {
        opts: ServeOptions,
        supervisor: Mutex<ExperimentSupervisor>,
        shutdown: Arc<AtomicBool>,
        metrics: Arc<ServiceMetrics>,
        watchers: Arc<Watchers>,
        tailers: Arc<TailerRegistry>,
        next_sub: AtomicU64,
        trace: Option<Mutex<JsonlWriter>>,
        slow_log: Option<Mutex<JsonlWriter>>,
    }

    impl Shared {
        fn trace_frame(&self, direction: &str, peer: &str, frame: &JsonValue) {
            if let Some(trace) = &self.trace {
                let line = JsonValue::obj([
                    ("dir", JsonValue::Str(direction.to_owned())),
                    ("peer", JsonValue::Str(peer.to_owned())),
                    ("frame", frame.clone()),
                ])
                .render_compact();
                let mut w = trace.lock().unwrap();
                let _ = w.append_raw(&line);
                let _ = w.commit();
            }
        }

        /// Append one slow-request record (JSONL) if the log is enabled.
        fn log_slow_request(
            &self,
            req_id: u64,
            op: &str,
            peer: &str,
            queue_wait_s: f64,
            execute_s: f64,
        ) {
            if let Some(log) = &self.slow_log {
                let line = JsonValue::obj([
                    ("req_id", JsonValue::Int(req_id)),
                    ("op", JsonValue::Str(op.to_owned())),
                    ("peer", JsonValue::Str(peer.to_owned())),
                    ("queue_wait_s", JsonValue::Num(queue_wait_s)),
                    ("execute_s", JsonValue::Num(execute_s)),
                    ("total_s", JsonValue::Num(queue_wait_s + execute_s)),
                ])
                .render_compact();
                let mut w = log.lock().unwrap();
                let _ = w.append_raw(&line);
                let _ = w.commit();
            }
        }
    }

    /// Service state attached to each connection via the handle's user
    /// slot: the subscriptions it owns, for unsubscribe and teardown.
    #[derive(Default)]
    struct ConnCtx {
        subs: Mutex<HashMap<u64, Arc<SubState>>>,
    }

    /// The reactor → service bridge: frames in, worker visits out.
    struct ServiceHandler {
        shared: Arc<Shared>,
        pool: PoolSubmitter,
    }

    impl ConnHandler for ServiceHandler {
        fn on_open(&self, conn: &Arc<ConnHandle>) {
            if conn.is_http() {
                // Metrics scrapes are not protocol connections; they stay
                // out of the connection counters (the scrape itself is
                // counted by `http_requests`).
                return;
            }
            conn.set_user(Box::new(ConnCtx::default()));
            self.shared.metrics.conn_opened();
        }

        fn on_frame(&self, conn: &Arc<ConnHandle>, frame: JsonValue) {
            // Reactor thread: enqueue only. The worker pool preserves FIFO
            // order per connection via the visit protocol.
            let metrics = &self.shared.metrics;
            let req = PendingReq {
                work: Work::Frame(frame),
                req_id: metrics.next_request_id(),
                enqueued_nanos: metrics.now_nanos(),
            };
            if conn.enqueue_request(req) {
                self.pool.submit(Arc::clone(conn));
            }
        }

        fn on_decode_error(&self, conn: &Arc<ConnHandle>, err: &Error) -> bool {
            // Oversized or malformed frames get a diagnostic before the
            // stream state is trusted again; torn/IO failures end the
            // connection once its queue drains.
            self.shared.metrics.decode_error();
            let frame = Reply::error_frame(0, err);
            self.shared.trace_frame("res", conn.peer(), &frame);
            let _ = conn.push_reply(encode_frame(&frame));
            err.to_string().contains("torn frame") || err.kind() == asha_core::ErrorKind::Io
        }

        fn on_http(&self, conn: &Arc<ConnHandle>, method: &str, path: &str) {
            // Reactor thread: only validate and dispatch. Rendering the
            // exposition walks every histogram, so it runs on a worker.
            if method != "GET" {
                let _ = conn.push_reply(http_response(
                    "405 Method Not Allowed",
                    "text/plain; charset=utf-8",
                    "only GET is supported\n",
                ));
                return;
            }
            if path != "/metrics" && !path.starts_with("/metrics?") {
                let _ = conn.push_reply(http_response(
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    "try GET /metrics\n",
                ));
                return;
            }
            let metrics = &self.shared.metrics;
            let req = PendingReq {
                work: Work::HttpGet(path.to_owned()),
                req_id: metrics.next_request_id(),
                enqueued_nanos: metrics.now_nanos(),
            };
            if conn.enqueue_request(req) {
                self.pool.submit(Arc::clone(conn));
            }
        }

        fn on_close(&self, conn: &Arc<ConnHandle>) {
            if conn.is_http() {
                return;
            }
            if let Some(ctx) = conn.user::<ConnCtx>() {
                for (_, sub) in ctx.subs.lock().unwrap().drain() {
                    sub.mark_closed(&self.shared.metrics);
                }
            }
            prune_watchers(&self.shared);
            self.shared.metrics.conn_closed();
        }
    }

    /// A minimal HTTP/1.0 response (the metrics listener speaks just
    /// enough HTTP for `curl` and Prometheus scrapers).
    fn http_response(status: &str, content_type: &str, body: &str) -> String {
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    }

    /// Worker-pool body: execute one queued request and queue its reply.
    fn run_one(shared: &Arc<Shared>, conn: &Arc<ConnHandle>, req: PendingReq) {
        let metrics = &shared.metrics;
        let started = metrics.now_nanos();
        let queue_wait_s = started.saturating_sub(req.enqueued_nanos) as f64 / 1e9;
        match req.work {
            Work::HttpGet(_) => {
                let body = metrics.render_prometheus();
                let _ = conn.push_reply(http_response(
                    "200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                ));
            }
            Work::Frame(frame) => {
                shared.trace_frame("req", conn.peer(), &frame);
                let (response, op, ok) = handle_frame(&frame, conn, shared);
                shared.trace_frame("res", conn.peer(), &response);
                let _ = conn.push_reply(encode_frame(&response));
                let execute_s = metrics.now_nanos().saturating_sub(started) as f64 / 1e9;
                metrics.request_observed(op, ok, queue_wait_s, execute_s);
                let total_s = queue_wait_s + execute_s;
                if total_s >= shared.opts.slow_threshold.as_secs_f64() && metrics.enabled() {
                    metrics.slow_request();
                    shared.log_slow_request(req.req_id, op, conn.peer(), queue_wait_s, execute_s);
                }
            }
        }
    }

    /// A running daemon. Start with [`Daemon::start`], stop with a
    /// `shutdown` request, [`Daemon::begin_shutdown`], or (in the binary)
    /// SIGTERM; then [`Daemon::wait`] drains and joins everything.
    pub struct Daemon {
        shared: Arc<Shared>,
        reactor: ReactorHandle,
        pool: WorkerPool,
        housekeeper: JoinHandle<()>,
        final_drain: Arc<AtomicBool>,
        tcp_addr: Option<SocketAddr>,
        metrics_addr: Option<SocketAddr>,
        unix_path: Option<PathBuf>,
    }

    impl Daemon {
        /// Bind the configured listeners, open the supervisor root, and
        /// start serving.
        pub fn start(opts: ServeOptions) -> Result<Daemon, Error> {
            if opts.unix.is_none() && opts.tcp.is_none() {
                return Err(Error::config(
                    "daemon needs a unix socket path or a tcp address",
                ));
            }
            let mut supervisor = ExperimentSupervisor::open(&opts.root)?;
            let shutdown = Arc::new(AtomicBool::new(false));
            let metrics = ServiceMetrics::new(opts.metrics);
            if opts.metrics {
                // WAL/fsync/snapshot timings flow into the same plane.
                supervisor.set_metrics(metrics.store());
            }
            if let Some(window) = opts.group_commit {
                // After set_metrics, so the pipeline's window/amortization
                // counters land in the plane too.
                supervisor.enable_group_commit(window);
            }
            let watchers: Arc<Watchers> = Arc::new(Mutex::new(HashMap::new()));

            // Status changes fan out to subscriptions through the
            // supervisor's listener hook. The closure captures only the
            // registries — not the supervisor itself — so there is no
            // ownership cycle, and it runs after the manifest write with
            // drop-don't-wait delivery, so it can never stall a state
            // transition.
            {
                let watchers = Arc::clone(&watchers);
                let metrics = Arc::clone(&metrics);
                supervisor.set_status_listener(Arc::new(move |name, status| {
                    let map = watchers.lock().unwrap();
                    if let Some(subs) = map.get(name) {
                        for sub in subs {
                            sub.push_lossy(
                                &metrics,
                                &Push::Status {
                                    sub: sub.sub,
                                    state: WireStatus {
                                        name: name.to_owned(),
                                        status,
                                    },
                                },
                            );
                        }
                    }
                }));
            }

            let trace = match &opts.trace {
                Some(path) => Some(Mutex::new(
                    JsonlWriter::create(path, Durability::Flush)
                        .map_err(|e| Error::io(path, e).context("opening trace log"))?,
                )),
                None => None,
            };
            let slow_log = match &opts.slow_log {
                Some(path) => Some(Mutex::new(
                    JsonlWriter::create(path, Durability::Flush)
                        .map_err(|e| Error::io(path, e).context("opening slow-request log"))?,
                )),
                None => None,
            };

            let grace = opts.read_timeout * 10;
            let tailers = TailerRegistry::new(TailerCtx {
                metrics: Arc::clone(&metrics),
                shutdown: Arc::clone(&shutdown),
                poll_interval: opts.poll_interval,
                grace,
            });

            let unix_path = opts.unix.clone();
            let shared = Arc::new(Shared {
                opts,
                supervisor: Mutex::new(supervisor),
                shutdown: Arc::clone(&shutdown),
                metrics: Arc::clone(&metrics),
                watchers,
                tailers,
                next_sub: AtomicU64::new(1),
                trace,
                slow_log,
            });

            let mut listeners = Vec::new();
            if let Some(path) = &unix_path {
                // A previous unclean exit leaves a stale socket file;
                // rebinding is only possible after removing it.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| Error::io(path, e).context("binding unix socket"))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| Error::io(path, e))?;
                listeners.push(Listener::Unix(listener));
            }
            let mut tcp_addr = None;
            if let Some(addr) = shared.opts.tcp.clone() {
                let listener = TcpListener::bind(&addr)
                    .map_err(|e| Error::from(e).context(format!("binding tcp {addr}")))?;
                tcp_addr = Some(
                    listener
                        .local_addr()
                        .map_err(|e| Error::from(e).context("reading bound tcp address"))?,
                );
                listener.set_nonblocking(true).map_err(Error::from)?;
                listeners.push(Listener::Tcp(listener));
            }
            let mut metrics_addr = None;
            if let Some(addr) = shared.opts.metrics_addr.clone() {
                let listener = TcpListener::bind(&addr)
                    .map_err(|e| Error::from(e).context(format!("binding metrics http {addr}")))?;
                metrics_addr = Some(
                    listener
                        .local_addr()
                        .map_err(|e| Error::from(e).context("reading bound metrics address"))?,
                );
                listener.set_nonblocking(true).map_err(Error::from)?;
                listeners.push(Listener::Http(listener));
            }

            let pool = {
                let shared = Arc::clone(&shared);
                WorkerPool::start(
                    shared.opts.workers,
                    Arc::clone(&metrics),
                    Arc::new(move |conn: &Arc<ConnHandle>, req| {
                        run_one(&shared, conn, req);
                    }),
                )
            };

            let final_drain = Arc::new(AtomicBool::new(false));
            let handler = Arc::new(ServiceHandler {
                shared: Arc::clone(&shared),
                pool: pool.submitter(),
            });
            let reactor = start_reactor(
                ReactorConfig {
                    max_frame: shared.opts.max_frame,
                    high_water: shared.opts.queue_depth,
                    poll_interval: shared.opts.poll_interval,
                    grace,
                },
                listeners,
                handler,
                ReactorFlags {
                    shutdown: Arc::clone(&shutdown),
                    final_drain: Arc::clone(&final_drain),
                },
                Arc::clone(&metrics),
            )
            .map_err(|e| Error::from(e).context("starting reactor"))?;

            // Housekeeping: reap finished experiment workers so their
            // terminal status lands in the manifest (and status pushes)
            // without any client having to call join.
            let housekeeper = {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("asha-serve-housekeeper".to_owned())
                    .spawn(move || housekeeper(shared))
                    .map_err(Error::from)?
            };

            Ok(Daemon {
                shared,
                reactor,
                pool,
                housekeeper,
                final_drain,
                tcp_addr,
                metrics_addr,
                unix_path,
            })
        }

        /// The actual bound TCP address (useful with port 0).
        pub fn tcp_addr(&self) -> Option<SocketAddr> {
            self.tcp_addr
        }

        /// The actual bound HTTP metrics address (useful with port 0).
        pub fn metrics_addr(&self) -> Option<SocketAddr> {
            self.metrics_addr
        }

        /// The daemon's metrics plane (shared with every daemon thread).
        pub fn metrics(&self) -> Arc<ServiceMetrics> {
            Arc::clone(&self.shared.metrics)
        }

        /// The shutdown flag; setting it to `true` (e.g. from a signal
        /// handler) is equivalent to [`Daemon::begin_shutdown`].
        pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
            Arc::clone(&self.shared.shutdown)
        }

        /// Request a graceful shutdown (idempotent, non-blocking).
        pub fn begin_shutdown(&self) {
            self.shared.shutdown.store(true, Ordering::Release);
            self.reactor.wake();
        }

        /// Whether shutdown has been requested (by request, signal, or
        /// [`Daemon::begin_shutdown`]).
        pub fn shutdown_requested(&self) -> bool {
            self.shared.shutdown.load(Ordering::Acquire)
        }

        /// Current daemon counters (a projection of the metrics plane).
        pub fn stats(&self) -> DaemonStats {
            self.shared.metrics.daemon_stats()
        }

        /// Block until shutdown is requested, then drain: stop accepting,
        /// park running experiments behind durable snapshots, flush the
        /// manifest, let tailers push their final `end` frames, and give
        /// connections a grace period to drain their queues.
        pub fn wait(self) -> Result<(), Error> {
            while !self.shared.shutdown.load(Ordering::Acquire) {
                std::thread::sleep(self.shared.opts.poll_interval);
            }
            self.reactor.wake();
            let Daemon {
                shared,
                reactor,
                pool,
                housekeeper,
                final_drain,
                unix_path,
                ..
            } = self;
            let _ = housekeeper.join();
            // Park running experiments: abort snapshots at the next step
            // boundary and leaves every store resumable; the manifest is
            // rewritten per transition.
            let result = {
                let mut sup = shared.supervisor.lock().unwrap();
                let mut first_err = None;
                let _ = sup.reap_finished();
                for name in sup.active() {
                    if let Err(e) = sup.abort(&name) {
                        first_err.get_or_insert(e);
                    }
                }
                first_err
            };
            // Workers finish queued requests (their replies still flush
            // through the live reactor), then tailers deliver final `end`
            // frames and exit on the flag.
            pool.shutdown_join();
            shared.tailers.join_all();
            // Nothing produces frames anymore: the reactor drains every
            // connection's queue (bounded by the grace window) and exits.
            final_drain.store(true, Ordering::Release);
            reactor.join();
            if let Some(trace) = &shared.trace {
                let _ = trace.lock().unwrap().commit();
            }
            if let Some(slow) = &shared.slow_log {
                let _ = slow.lock().unwrap().commit();
            }
            if let Some(path) = &unix_path {
                let _ = std::fs::remove_file(path);
            }
            match result {
                Some(e) => Err(e.context("parking experiments at shutdown")),
                None => Ok(()),
            }
        }
    }

    fn housekeeper(shared: Arc<Shared>) {
        while !shared.shutdown.load(Ordering::Acquire) {
            {
                let mut sup = shared.supervisor.lock().unwrap();
                let _ = sup.reap_finished();
            }
            std::thread::sleep(shared.opts.poll_interval.max(Duration::from_millis(20)));
        }
    }

    /// Drop closed subscriptions from the status-watcher registry.
    fn prune_watchers(shared: &Shared) {
        let mut map = shared.watchers.lock().unwrap();
        map.retain(|_, subs| {
            subs.retain(|s| !s.is_closed());
            !subs.is_empty()
        });
    }

    /// Decode and execute one frame. Returns the response plus the op name
    /// and success flag for the metrics plane (`"invalid"` when the frame
    /// never decoded into a known request).
    fn handle_frame(
        frame: &JsonValue,
        conn: &Arc<ConnHandle>,
        shared: &Arc<Shared>,
    ) -> (JsonValue, &'static str, bool) {
        let (id, request) = match Request::from_frame(frame) {
            Ok(pair) => pair,
            Err(e) => {
                // Salvage the id if the frame had one so the client can
                // correlate the failure.
                let id = frame.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
                return (Reply::error_frame(id, &e), "invalid", false);
            }
        };
        let op = request.op();
        match execute(id, request, conn, shared) {
            Ok(reply) => (reply.to_frame(id), op, true),
            Err(e) => (Reply::error_frame(id, &e), op, false),
        }
    }

    fn execute(
        _id: u64,
        request: Request,
        conn: &Arc<ConnHandle>,
        shared: &Arc<Shared>,
    ) -> Result<Reply, Error> {
        match request {
            Request::Ping => Ok(Reply::Pong),
            Request::Create { meta, opts } => {
                let mut sup = shared.supervisor.lock().unwrap();
                sup.create(&meta, opts)?;
                Ok(Reply::Ack)
            }
            Request::Start { name, opts } => {
                let mut sup = shared.supervisor.lock().unwrap();
                sup.start(&name, opts)?;
                Ok(Reply::Ack)
            }
            Request::Pause { name } => {
                let mut sup = shared.supervisor.lock().unwrap();
                sup.pause(&name)?;
                Ok(Reply::Ack)
            }
            Request::Resume { name } => {
                let mut sup = shared.supervisor.lock().unwrap();
                sup.resume(&name)?;
                Ok(Reply::Ack)
            }
            Request::Abort { name } => {
                let mut sup = shared.supervisor.lock().unwrap();
                sup.abort(&name)?;
                Ok(Reply::Ack)
            }
            Request::Status { name } => {
                let sup = shared.supervisor.lock().unwrap();
                let status = sup
                    .status(&name)
                    .ok_or_else(|| Error::missing(format!("experiment {name:?}")))?;
                Ok(Reply::Status(WireStatus { name, status }))
            }
            Request::List => {
                let sup = shared.supervisor.lock().unwrap();
                Ok(Reply::List(
                    sup.experiments()
                        .iter()
                        .map(|e| WireStatus {
                            name: e.name.clone(),
                            status: e.status,
                        })
                        .collect(),
                ))
            }
            Request::Stats => Ok(Reply::Stats(shared.metrics.daemon_stats())),
            Request::Metrics => Ok(Reply::Metrics(shared.metrics.snapshot_json())),
            Request::Subscribe { name, from_seq } => {
                let wal_path = {
                    let sup = shared.supervisor.lock().unwrap();
                    if sup.status(&name).is_none() {
                        return Err(Error::missing(format!("experiment {name:?}")));
                    }
                    sup.experiment_dir(&name).join(WAL_FILE)
                };
                let sub_id = shared.next_sub.fetch_add(1, Ordering::Relaxed);
                let state = SubState::new(sub_id, from_seq, Arc::clone(conn));
                if let Some(ctx) = conn.user::<ConnCtx>() {
                    ctx.subs.lock().unwrap().insert(sub_id, Arc::clone(&state));
                }
                shared
                    .watchers
                    .lock()
                    .unwrap()
                    .entry(name.clone())
                    .or_default()
                    .push(Arc::clone(&state));
                shared.metrics.sub_opened();
                shared.tailers.subscribe(wal_path, name, state);
                Ok(Reply::Subscribed { sub: sub_id })
            }
            Request::Unsubscribe { sub } => {
                let state = conn
                    .user::<ConnCtx>()
                    .and_then(|ctx| ctx.subs.lock().unwrap().remove(&sub))
                    .ok_or_else(|| Error::missing(format!("subscription {sub}")))?;
                state.mark_closed(&shared.metrics);
                prune_watchers(shared);
                Ok(Reply::Ack)
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::Release);
                Ok(Reply::Ack)
            }
        }
    }
}

/// On non-Unix platforms the daemon is unavailable: its reactor is built
/// on Unix readiness APIs (`epoll`/`poll`). The client library and the
/// wire protocol remain fully portable.
#[cfg(not(unix))]
pub struct Daemon {
    never: std::convert::Infallible,
}

#[cfg(not(unix))]
impl Daemon {
    /// Always fails on this platform; see the type-level docs.
    pub fn start(_opts: ServeOptions) -> Result<Daemon, Error> {
        Err(Error::config(
            "the asha-serve daemon requires a Unix platform (its reactor uses poll/epoll)",
        ))
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn shutdown_flag(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn begin_shutdown(&self) {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn shutdown_requested(&self) -> bool {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn stats(&self) -> DaemonStats {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn metrics(&self) -> std::sync::Arc<crate::metrics::ServiceMetrics> {
        match self.never {}
    }

    /// Unreachable (a `Daemon` cannot be constructed on this platform).
    pub fn wait(self) -> Result<(), Error> {
        match self.never {}
    }
}

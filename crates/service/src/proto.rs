//! The `asha-serve` wire protocol: versioned, newline-delimited JSON.
//!
//! Every frame is one JSON object on one line. Three frame families flow
//! over a connection:
//!
//! * **Requests** (client → server): `{"v":1,"id":N,"op":"...",...}`.
//!   `id` is a client-chosen correlation number; the server echoes it.
//! * **Replies** (server → client): `{"v":1,"id":N,"ok":{...}}` on
//!   success, `{"v":1,"id":N,"err":{"kind":"...","msg":"..."}}` on
//!   failure. Error kinds are [`asha_core::ErrorKind`] names, so a client
//!   can rebuild a typed [`Error`] from the wire.
//! * **Pushes** (server → client, unsolicited): `{"v":1,"sub":K,
//!   "push":"...",...}` — live WAL lines, lag notices, status changes,
//!   rewinds, and end-of-stream marks for streaming subscriptions.
//!
//! # Versioning rules
//!
//! Every frame carries `"v"`. A server answers a request whose version it
//! does not speak with an `err` frame of kind `protocol` (still on the
//! requested `id`), never by closing the connection; unknown *fields* in a
//! known-version frame are ignored, so additive evolution does not bump
//! the version. Pushing the version is reserved for changes that alter the
//! meaning of existing fields.

use asha_core::{Error, ErrorKind};
use asha_metrics::JsonValue;
use asha_store::{Durability, ExperimentMeta, ExperimentStatus, RunOptions, StoreFormat};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default cap on one frame's encoded size (1 MiB). Guards both sides
/// against runaway or hostile peers; `meta` frames for realistic search
/// spaces are a few KiB.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

fn obj(fields: Vec<(&'static str, JsonValue)>) -> JsonValue {
    JsonValue::obj(fields)
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, Error> {
    v.get(key)
        .and_then(|s| s.as_str())
        .ok_or_else(|| Error::protocol(format!("frame missing string field {key:?}")))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, Error> {
    v.get(key)
        .and_then(|s| s.as_u64())
        .ok_or_else(|| Error::protocol(format!("frame missing integer field {key:?}")))
}

/// Check the `"v"` field of a decoded frame.
pub fn check_version(v: &JsonValue) -> Result<(), Error> {
    let version = get_u64(v, "v")?;
    if version != PROTOCOL_VERSION {
        return Err(Error::protocol(format!(
            "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Run options (durability knobs crossing the wire)
// ---------------------------------------------------------------------------

/// Encode [`RunOptions`] for a `create`/`start` request. The sync names
/// (`"never"`/`"always"`) predate the [`Durability`] unification and stay
/// on the wire for compatibility with older peers.
pub fn run_options_to_json(opts: &RunOptions) -> JsonValue {
    let sync = match opts.sync {
        Durability::Flush => JsonValue::Str("never".to_owned()),
        Durability::Sync => JsonValue::Str("always".to_owned()),
        Durability::EveryN(n) => obj(vec![("every_n", JsonValue::Int(n as u64))]),
    };
    obj(vec![
        ("sync", sync),
        ("snapshot_jobs", JsonValue::Int(opts.snapshot_jobs as u64)),
        ("format", JsonValue::Str(opts.format.name().to_owned())),
        ("delta_chain", JsonValue::Int(opts.delta_chain as u64)),
    ])
}

/// Decode [`RunOptions`] written by [`run_options_to_json`]. `format` and
/// `delta_chain` default when absent, so frames from pre-codec-redesign
/// clients still decode.
pub fn run_options_from_json(v: &JsonValue) -> Result<RunOptions, Error> {
    let sync = match v.get("sync") {
        Some(JsonValue::Str(s)) if s == "never" || s == "flush" => Durability::Flush,
        Some(JsonValue::Str(s)) if s == "always" || s == "sync" => Durability::Sync,
        Some(other) => Durability::EveryN(get_u64(other, "every_n")? as usize),
        None => return Err(Error::protocol("run options missing sync")),
    };
    let defaults = RunOptions::default();
    let format = match v.get("format").and_then(|f| f.as_str()) {
        Some(name) => StoreFormat::from_name(name)
            .ok_or_else(|| Error::protocol(format!("unknown store format {name:?}")))?,
        None => defaults.format,
    };
    let delta_chain = match v.get("delta_chain") {
        Some(n) => n
            .as_u64()
            .ok_or_else(|| Error::protocol("delta_chain must be an integer"))?
            as usize,
        None => defaults.delta_chain,
    };
    Ok(RunOptions {
        sync,
        snapshot_jobs: get_u64(v, "snapshot_jobs")? as usize,
        format,
        delta_chain,
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A client request (the `op` vocabulary).
///
/// (No `PartialEq`: [`ExperimentMeta`] intentionally isn't comparable —
/// round-trip tests compare encoded frames instead.)
// `Create` dwarfs the other variants, but requests are transient (one per
// frame, decoded and immediately executed), so boxing would complicate the
// API for no sustained memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Initialize a new experiment (directory + manifest row); does not
    /// start it.
    Create {
        /// Full experiment metadata (same schema as `meta.json`).
        meta: ExperimentMeta,
        /// Durability knobs for the initial snapshot/WAL.
        opts: RunOptions,
    },
    /// Start — or restart after pause/abort/crash, via store recovery —
    /// the named experiment on a daemon worker thread.
    Start {
        /// Experiment name.
        name: String,
        /// Durability knobs for the (re)started run.
        opts: RunOptions,
    },
    /// Pause at the next step boundary (durable snapshot + WAL marker).
    Pause {
        /// Experiment name.
        name: String,
    },
    /// Resume a paused experiment in place.
    Resume {
        /// Experiment name.
        name: String,
    },
    /// Abort: snapshot and stop the worker; the store stays resumable.
    Abort {
        /// Experiment name.
        name: String,
    },
    /// Current manifest status of one experiment.
    Status {
        /// Experiment name.
        name: String,
    },
    /// All manifest rows.
    List,
    /// Daemon counters (connections, requests, subscription lag, ...).
    Stats,
    /// Full metrics-plane snapshot (request latency histograms, reactor
    /// and worker internals, tailer lag, store durability timings).
    Metrics,
    /// Subscribe to the experiment's live WAL stream. Telemetry events
    /// with `seq < from_seq` are filtered out; store markers always flow.
    Subscribe {
        /// Experiment name.
        name: String,
        /// First telemetry sequence number wanted.
        from_seq: u64,
    },
    /// Cancel a subscription by id.
    Unsubscribe {
        /// Subscription id from [`Reply::Subscribed`].
        sub: u64,
    },
    /// Gracefully shut the daemon down: stop accepting, drain clients,
    /// park running experiments behind durable snapshots, flush the
    /// manifest.
    Shutdown,
}

impl Request {
    /// Stable `op` name.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Create { .. } => "create",
            Request::Start { .. } => "start",
            Request::Pause { .. } => "pause",
            Request::Resume { .. } => "resume",
            Request::Abort { .. } => "abort",
            Request::Status { .. } => "status",
            Request::List => "list",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Subscribe { .. } => "subscribe",
            Request::Unsubscribe { .. } => "unsubscribe",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encode as a request frame with correlation `id`.
    pub fn to_frame(&self, id: u64) -> JsonValue {
        let mut fields = vec![
            ("v", JsonValue::Int(PROTOCOL_VERSION)),
            ("id", JsonValue::Int(id)),
            ("op", JsonValue::Str(self.op().to_owned())),
        ];
        match self {
            Request::Ping
            | Request::List
            | Request::Stats
            | Request::Metrics
            | Request::Shutdown => {}
            Request::Create { meta, opts } => {
                fields.push(("meta", meta.to_json()));
                fields.push(("opts", run_options_to_json(opts)));
            }
            Request::Start { name, opts } => {
                fields.push(("name", JsonValue::Str(name.clone())));
                fields.push(("opts", run_options_to_json(opts)));
            }
            Request::Pause { name }
            | Request::Resume { name }
            | Request::Abort { name }
            | Request::Status { name } => {
                fields.push(("name", JsonValue::Str(name.clone())));
            }
            Request::Subscribe { name, from_seq } => {
                fields.push(("name", JsonValue::Str(name.clone())));
                fields.push(("from_seq", JsonValue::Int(*from_seq)));
            }
            Request::Unsubscribe { sub } => {
                fields.push(("sub", JsonValue::Int(*sub)));
            }
        }
        obj(fields)
    }

    /// Decode a request frame: version check, `id`, then op dispatch.
    pub fn from_frame(v: &JsonValue) -> Result<(u64, Request), Error> {
        check_version(v)?;
        let id = get_u64(v, "id")?;
        let op = get_str(v, "op")?;
        let request = match op {
            "ping" => Request::Ping,
            "list" => Request::List,
            "stats" => Request::Stats,
            "metrics" => Request::Metrics,
            "shutdown" => Request::Shutdown,
            "create" => Request::Create {
                meta: ExperimentMeta::from_json(
                    v.get("meta")
                        .ok_or_else(|| Error::protocol("create frame missing meta"))?,
                )
                .map_err(|e| e.context("create frame meta"))?,
                opts: run_options_from_json(
                    v.get("opts")
                        .ok_or_else(|| Error::protocol("create frame missing opts"))?,
                )?,
            },
            "start" => Request::Start {
                name: get_str(v, "name")?.to_owned(),
                opts: run_options_from_json(
                    v.get("opts")
                        .ok_or_else(|| Error::protocol("start frame missing opts"))?,
                )?,
            },
            "pause" => Request::Pause {
                name: get_str(v, "name")?.to_owned(),
            },
            "resume" => Request::Resume {
                name: get_str(v, "name")?.to_owned(),
            },
            "abort" => Request::Abort {
                name: get_str(v, "name")?.to_owned(),
            },
            "status" => Request::Status {
                name: get_str(v, "name")?.to_owned(),
            },
            "subscribe" => Request::Subscribe {
                name: get_str(v, "name")?.to_owned(),
                from_seq: get_u64(v, "from_seq")?,
            },
            "unsubscribe" => Request::Unsubscribe {
                sub: get_u64(v, "sub")?,
            },
            other => return Err(Error::protocol(format!("unknown op {other:?}"))),
        };
        Ok((id, request))
    }
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

/// One manifest row on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStatus {
    /// Experiment name.
    pub name: String,
    /// Its last durable status.
    pub status: ExperimentStatus,
}

/// Daemon counters returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonStats {
    /// Connections accepted over the daemon's lifetime.
    pub connections_total: u64,
    /// Currently open connections.
    pub connections_open: u64,
    /// Requests served (including failed ones).
    pub requests: u64,
    /// Currently live subscriptions.
    pub subscriptions_open: u64,
    /// Push frames delivered to subscriber queues.
    pub events_sent: u64,
    /// Push frames dropped because a subscriber's bounded queue was full
    /// (each drop is also reported to that subscriber as a `lag` push).
    pub events_lagged: u64,
}

impl DaemonStats {
    /// Encode as the `stats` reply payload.
    pub fn to_json(&self) -> JsonValue {
        obj(vec![
            ("connections_total", JsonValue::Int(self.connections_total)),
            ("connections_open", JsonValue::Int(self.connections_open)),
            ("requests", JsonValue::Int(self.requests)),
            (
                "subscriptions_open",
                JsonValue::Int(self.subscriptions_open),
            ),
            ("events_sent", JsonValue::Int(self.events_sent)),
            ("events_lagged", JsonValue::Int(self.events_lagged)),
        ])
    }

    /// Decode a `stats` reply payload.
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        Ok(DaemonStats {
            connections_total: get_u64(v, "connections_total")?,
            connections_open: get_u64(v, "connections_open")?,
            requests: get_u64(v, "requests")?,
            subscriptions_open: get_u64(v, "subscriptions_open")?,
            events_sent: get_u64(v, "events_sent")?,
            events_lagged: get_u64(v, "events_lagged")?,
        })
    }
}

/// A successful reply's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Plain acknowledgement (create/start/pause/resume/abort/unsubscribe/
    /// shutdown).
    Ack,
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Status`].
    Status(WireStatus),
    /// Answer to [`Request::List`].
    List(Vec<WireStatus>),
    /// Answer to [`Request::Stats`].
    Stats(DaemonStats),
    /// Answer to [`Request::Metrics`]: the metrics-plane snapshot, kept as
    /// raw JSON (schema `asha-daemon-metrics-v1`) so old clients can pass
    /// newer daemons' snapshots through unharmed.
    Metrics(JsonValue),
    /// Answer to [`Request::Subscribe`]: the subscription's id.
    Subscribed {
        /// Id to match pushes against and to unsubscribe with.
        sub: u64,
    },
}

fn status_to_json(s: &WireStatus) -> JsonValue {
    obj(vec![
        ("name", JsonValue::Str(s.name.clone())),
        ("status", JsonValue::Str(s.status.as_str().to_owned())),
    ])
}

fn status_from_json(v: &JsonValue) -> Result<WireStatus, Error> {
    Ok(WireStatus {
        name: get_str(v, "name")?.to_owned(),
        status: ExperimentStatus::parse(get_str(v, "status")?)
            .map_err(|e| e.context("status reply"))?,
    })
}

impl Reply {
    /// Encode as a success frame on correlation `id`.
    pub fn to_frame(&self, id: u64) -> JsonValue {
        let payload = match self {
            Reply::Ack => obj(vec![]),
            Reply::Pong => obj(vec![("pong", JsonValue::Bool(true))]),
            Reply::Status(s) => status_to_json(s),
            Reply::List(rows) => obj(vec![(
                "experiments",
                JsonValue::Arr(rows.iter().map(status_to_json).collect()),
            )]),
            Reply::Stats(stats) => stats.to_json(),
            Reply::Metrics(snapshot) => snapshot.clone(),
            Reply::Subscribed { sub } => obj(vec![("sub", JsonValue::Int(*sub))]),
        };
        obj(vec![
            ("v", JsonValue::Int(PROTOCOL_VERSION)),
            ("id", JsonValue::Int(id)),
            ("ok", payload),
        ])
    }

    /// Encode an error as a failure frame on correlation `id`.
    pub fn error_frame(id: u64, err: &Error) -> JsonValue {
        obj(vec![
            ("v", JsonValue::Int(PROTOCOL_VERSION)),
            ("id", JsonValue::Int(id)),
            (
                "err",
                obj(vec![
                    ("kind", JsonValue::Str(err.kind().as_str().to_owned())),
                    ("msg", JsonValue::Str(err.to_string())),
                ]),
            ),
        ])
    }

    /// Decode a reply frame. The decoded request's `op` picks the payload
    /// shape (an empty `ok` object is an [`Reply::Ack`]). A frame with
    /// `err` decodes to `Err` carrying the peer's kind and message.
    pub fn from_frame(v: &JsonValue, op: &str) -> Result<(u64, Result<Reply, Error>), Error> {
        check_version(v)?;
        let id = get_u64(v, "id")?;
        if let Some(err) = v.get("err") {
            let kind = ErrorKind::parse(get_str(err, "kind")?);
            let msg = get_str(err, "msg")?.to_owned();
            return Ok((id, Err(Error::new(kind, msg))));
        }
        let ok = v
            .get("ok")
            .ok_or_else(|| Error::protocol("reply frame has neither ok nor err"))?;
        let reply = match op {
            "ping" => Reply::Pong,
            "status" => Reply::Status(status_from_json(ok)?),
            "list" => {
                let rows = ok
                    .get("experiments")
                    .and_then(|e| e.as_array())
                    .ok_or_else(|| Error::protocol("list reply missing experiments"))?;
                Reply::List(
                    rows.iter()
                        .map(status_from_json)
                        .collect::<Result<Vec<_>, Error>>()?,
                )
            }
            "stats" => Reply::Stats(DaemonStats::from_json(ok)?),
            "metrics" => Reply::Metrics(ok.clone()),
            "subscribe" => Reply::Subscribed {
                sub: get_u64(ok, "sub")?,
            },
            _ => Reply::Ack,
        };
        Ok((id, Ok(reply)))
    }
}

// ---------------------------------------------------------------------------
// Pushes
// ---------------------------------------------------------------------------

/// An unsolicited server → client frame for one subscription.
#[derive(Debug, Clone, PartialEq)]
pub enum Push {
    /// One live WAL line (telemetry event or store marker), verbatim as
    /// parsed JSON.
    Event {
        /// The subscription this belongs to.
        sub: u64,
        /// The WAL line's JSON object.
        data: JsonValue,
    },
    /// The subscriber's bounded queue overflowed: `dropped` frames were
    /// discarded since the last successfully queued one. Consumers needing
    /// a gap-free stream should resubscribe from their last seen `seq`.
    Lag {
        /// The subscription this belongs to.
        sub: u64,
        /// Frames dropped since the last delivered one.
        dropped: u64,
    },
    /// The experiment's manifest status changed (via the supervisor's
    /// status-listener hook).
    Status {
        /// The subscription this belongs to.
        sub: u64,
        /// The experiment's new status row.
        state: WireStatus,
    },
    /// The tailed WAL was rewritten shorter (crash recovery truncated it).
    /// The stream restarts from the top; consumers must reset derived
    /// state.
    Rewind {
        /// The subscription this belongs to.
        sub: u64,
    },
    /// The experiment finished; no further events will flow. The server
    /// closes the subscription after this frame.
    End {
        /// The subscription this belongs to.
        sub: u64,
    },
}

impl Push {
    /// The subscription the push belongs to.
    pub fn sub(&self) -> u64 {
        match self {
            Push::Event { sub, .. }
            | Push::Lag { sub, .. }
            | Push::Status { sub, .. }
            | Push::Rewind { sub }
            | Push::End { sub } => *sub,
        }
    }

    /// Stable `push` name.
    pub fn name(&self) -> &'static str {
        match self {
            Push::Event { .. } => "event",
            Push::Lag { .. } => "lag",
            Push::Status { .. } => "status",
            Push::Rewind { .. } => "rewind",
            Push::End { .. } => "end",
        }
    }

    /// Encode as a push frame.
    pub fn to_frame(&self) -> JsonValue {
        let mut fields = vec![
            ("v", JsonValue::Int(PROTOCOL_VERSION)),
            ("sub", JsonValue::Int(self.sub())),
            ("push", JsonValue::Str(self.name().to_owned())),
        ];
        match self {
            Push::Event { data, .. } => fields.push(("data", data.clone())),
            Push::Lag { dropped, .. } => fields.push(("dropped", JsonValue::Int(*dropped))),
            Push::Status { state, .. } => fields.push(("state", status_to_json(state))),
            Push::Rewind { .. } | Push::End { .. } => {}
        }
        obj(fields)
    }

    /// Decode a push frame.
    pub fn from_frame(v: &JsonValue) -> Result<Push, Error> {
        check_version(v)?;
        let sub = get_u64(v, "sub")?;
        Ok(match get_str(v, "push")? {
            "event" => Push::Event {
                sub,
                data: v
                    .get("data")
                    .ok_or_else(|| Error::protocol("event push missing data"))?
                    .clone(),
            },
            "lag" => Push::Lag {
                sub,
                dropped: get_u64(v, "dropped")?,
            },
            "status" => Push::Status {
                sub,
                state: status_from_json(
                    v.get("state")
                        .ok_or_else(|| Error::protocol("status push missing state"))?,
                )?,
            },
            "rewind" => Push::Rewind { sub },
            "end" => Push::End { sub },
            other => return Err(Error::protocol(format!("unknown push {other:?}"))),
        })
    }

    /// Whether a decoded frame is a push (has a `push` field) rather than
    /// a reply.
    pub fn is_push_frame(v: &JsonValue) -> bool {
        v.get("push").is_some()
    }
}

//! Newline-delimited frame reader with size limits and torn-frame handling.
//!
//! Both sides of the protocol read frames through [`FrameReader`]: it
//! accumulates bytes from the underlying stream, yields one parsed
//! [`JsonValue`] per newline-terminated line, enforces a maximum frame
//! size, and distinguishes a clean EOF (at a line boundary) from a torn
//! frame (EOF mid-line) and from a read timeout (the server polls its
//! shutdown flag between timeouts).

use std::io::Read;

use asha_core::Error;
use asha_metrics::JsonValue;

use crate::proto::DEFAULT_MAX_FRAME;

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete, parsed frame.
    Value(JsonValue),
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// The read timed out (or would block) with no complete frame buffered;
    /// call again. Only seen when the stream has a read timeout set.
    TimedOut,
}

/// Incremental frame reader over any byte stream.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted between reads).
    start: usize,
    max_frame: usize,
    chunk: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream with the default frame-size limit.
    pub fn new(inner: R) -> Self {
        FrameReader::with_max_frame(inner, DEFAULT_MAX_FRAME)
    }

    /// Wrap a stream with an explicit frame-size limit (bytes, excluding
    /// the newline).
    pub fn with_max_frame(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            start: 0,
            max_frame,
            chunk: vec![0u8; 8 * 1024],
        }
    }

    /// The configured frame-size limit.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    fn take_line(&mut self) -> Option<Result<JsonValue, Error>> {
        let pending = &self.buf[self.start..];
        let nl = pending.iter().position(|&b| b == b'\n')?;
        if nl > self.max_frame {
            // Consume the oversized line so the error is not sticky, then
            // report it.
            self.start += nl + 1;
            return Some(Err(Error::protocol(format!(
                "frame of {nl} bytes exceeds limit of {} bytes",
                self.max_frame
            ))));
        }
        let line = String::from_utf8_lossy(&pending[..nl]).into_owned();
        self.start += nl + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            // Blank lines are ignored (keepalive-friendly).
            return self.take_line();
        }
        Some(
            JsonValue::parse(trimmed).map_err(|e| Error::protocol(format!("malformed frame: {e}"))),
        )
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Read until one complete frame (or EOF / timeout) is available.
    ///
    /// A buffered partial line longer than the frame limit fails
    /// immediately; a partial line at EOF is a torn frame and fails with a
    /// `protocol` error.
    pub fn read_frame(&mut self) -> Result<Frame, Error> {
        loop {
            if let Some(line) = self.take_line() {
                return line.map(Frame::Value);
            }
            self.compact();
            if self.buf.len() > self.max_frame {
                self.buf.clear();
                return Err(Error::protocol(format!(
                    "frame exceeds limit of {} bytes without a newline",
                    self.max_frame
                )));
            }
            let n = match self.inner.read(&mut self.chunk) {
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Frame::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from(e).context("reading frame")),
            };
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(Frame::Eof);
                }
                self.buf.clear();
                return Err(Error::protocol("torn frame: stream ended mid-line"));
            }
            self.buf.extend_from_slice(&self.chunk[..n]);
        }
    }
}

/// Encode one frame as its wire bytes (compact JSON + newline).
pub fn encode_frame(frame: &JsonValue) -> String {
    let mut line = frame.render_compact();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn splits_frames_and_handles_eof() {
        let bytes = b"{\"a\":1}\n\n{\"b\":2}\n".to_vec();
        let mut r = FrameReader::new(Cursor::new(bytes));
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("b").and_then(|x| x.as_u64()), Some(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn torn_frame_at_eof_is_an_error() {
        let mut r = FrameReader::new(Cursor::new(b"{\"a\":1}\n{\"b\":".to_vec()));
        assert!(matches!(r.read_frame().unwrap(), Frame::Value(_)));
        let err = r.read_frame().unwrap_err();
        assert!(err.to_string().contains("torn frame"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_sticking() {
        let big = format!("{{\"pad\":\"{}\"}}\n{{\"ok\":1}}\n", "x".repeat(64));
        let mut r = FrameReader::with_max_frame(Cursor::new(big.into_bytes()), 32);
        assert!(r.read_frame().unwrap_err().to_string().contains("exceeds"));
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("ok").and_then(|x| x.as_u64()), Some(1)),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! Newline-delimited frame decoding with size limits and torn-frame
//! handling.
//!
//! Two layers share one implementation:
//!
//! * [`FrameBuf`] is the sans-io core: an incremental byte accumulator fed
//!   explicitly (e.g. from reactor readiness events) that yields one parsed
//!   [`JsonValue`] per newline-terminated line. Frames are parsed directly
//!   from the accumulation buffer — no per-frame `String` allocation on the
//!   hot path.
//! * [`FrameReader`] wraps a blocking (or timeout-bearing) byte stream
//!   around a [`FrameBuf`] for the client library and tests: it pulls bytes
//!   itself and distinguishes a clean EOF (at a line boundary) from a torn
//!   frame (EOF mid-line) and from a read timeout.

use std::io::Read;

use asha_core::Error;
use asha_metrics::JsonValue;

use crate::proto::DEFAULT_MAX_FRAME;

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete, parsed frame.
    Value(JsonValue),
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// The read timed out (or would block) with no complete frame buffered;
    /// call again. Only seen when the stream has a read timeout set (or is
    /// non-blocking).
    TimedOut,
}

/// Incremental, sans-io frame decoder: feed bytes in, take frames out.
///
/// The reactor feeds it from a shared read scratch buffer on readiness
/// events; [`FrameReader`] feeds it from its own stream. Between frames the
/// consumed prefix is compacted away, so steady-state memory is one partial
/// line, not the connection's history.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted by [`FrameBuf::compact`]).
    start: usize,
    max_frame: usize,
}

impl FrameBuf {
    /// An empty decoder with an explicit frame-size limit (bytes, excluding
    /// the newline).
    pub fn new(max_frame: usize) -> Self {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// The configured frame-size limit.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Append raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Whether a partial (newline-less) line is buffered — at EOF this
    /// means the peer tore a frame.
    pub fn has_partial(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Enforce the size limit on a still-incomplete line: a buffered
    /// partial longer than the limit can never become a legal frame, so it
    /// is discarded and reported immediately rather than growing without
    /// bound. Call after [`FrameBuf::next_frame`] returns `None`.
    pub fn check_overflow(&mut self) -> Result<(), Error> {
        if self.pending_len() > self.max_frame {
            self.buf.clear();
            self.start = 0;
            return Err(Error::protocol(format!(
                "frame exceeds limit of {} bytes without a newline",
                self.max_frame
            )));
        }
        Ok(())
    }

    /// Drop everything buffered (used when abandoning a poisoned stream).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Take the next complete frame, if one is buffered.
    ///
    /// Blank lines are skipped (keepalive-friendly); an oversized or
    /// malformed line is consumed (so the error is not sticky) and returned
    /// as `Some(Err(_))`.
    pub fn next_frame(&mut self) -> Option<Result<JsonValue, Error>> {
        loop {
            let pending = &self.buf[self.start..];
            let nl = pending.iter().position(|&b| b == b'\n')?;
            if nl > self.max_frame {
                let limit = self.max_frame;
                self.start += nl + 1;
                return Some(Err(Error::protocol(format!(
                    "frame of {nl} bytes exceeds limit of {limit} bytes"
                ))));
            }
            let line = trim_ascii(&pending[..nl]);
            if line.is_empty() {
                self.start += nl + 1;
                continue;
            }
            // Parse straight out of the accumulation buffer; only invalid
            // UTF-8 (which cannot be legal JSON anyway) takes the lossy
            // allocating path so its error message matches what a text
            // parser would report.
            let parsed = match std::str::from_utf8(line) {
                Ok(text) => JsonValue::parse(text),
                Err(_) => JsonValue::parse(&String::from_utf8_lossy(line)),
            };
            let result = parsed.map_err(|e| Error::protocol(format!("malformed frame: {e}")));
            self.start += nl + 1;
            return Some(result);
        }
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

fn trim_ascii(mut bytes: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = bytes {
        if first.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = bytes {
        if last.is_ascii_whitespace() {
            bytes = rest;
        } else {
            break;
        }
    }
    bytes
}

/// Blocking frame reader over any byte stream: a [`FrameBuf`] plus a read
/// scratch buffer and the stream itself.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    frames: FrameBuf,
    chunk: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream with the default frame-size limit.
    pub fn new(inner: R) -> Self {
        FrameReader::with_max_frame(inner, DEFAULT_MAX_FRAME)
    }

    /// Wrap a stream with an explicit frame-size limit (bytes, excluding
    /// the newline).
    pub fn with_max_frame(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            frames: FrameBuf::new(max_frame),
            chunk: vec![0u8; 8 * 1024],
        }
    }

    /// The configured frame-size limit.
    pub fn max_frame(&self) -> usize {
        self.frames.max_frame()
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Read until one complete frame (or EOF / timeout) is available.
    ///
    /// A buffered partial line longer than the frame limit fails
    /// immediately; a partial line at EOF is a torn frame and fails with a
    /// `protocol` error.
    pub fn read_frame(&mut self) -> Result<Frame, Error> {
        loop {
            if let Some(frame) = self.frames.next_frame() {
                return frame.map(Frame::Value);
            }
            self.frames.check_overflow()?;
            let n = match self.inner.read(&mut self.chunk) {
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(Frame::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from(e).context("reading frame")),
            };
            if n == 0 {
                if !self.frames.has_partial() {
                    return Ok(Frame::Eof);
                }
                self.frames.clear();
                return Err(Error::protocol("torn frame: stream ended mid-line"));
            }
            self.frames.feed(&self.chunk[..n]);
        }
    }
}

/// Encode one frame as its wire bytes (compact JSON + newline).
pub fn encode_frame(frame: &JsonValue) -> String {
    let mut line = frame.render_compact();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn splits_frames_and_handles_eof() {
        let bytes = b"{\"a\":1}\n\n{\"b\":2}\n".to_vec();
        let mut r = FrameReader::new(Cursor::new(bytes));
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("b").and_then(|x| x.as_u64()), Some(2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.read_frame().unwrap(), Frame::Eof);
    }

    #[test]
    fn torn_frame_at_eof_is_an_error() {
        let mut r = FrameReader::new(Cursor::new(b"{\"a\":1}\n{\"b\":".to_vec()));
        assert!(matches!(r.read_frame().unwrap(), Frame::Value(_)));
        let err = r.read_frame().unwrap_err();
        assert!(err.to_string().contains("torn frame"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_sticking() {
        let big = format!("{{\"pad\":\"{}\"}}\n{{\"ok\":1}}\n", "x".repeat(64));
        let mut r = FrameReader::with_max_frame(Cursor::new(big.into_bytes()), 32);
        assert!(r.read_frame().unwrap_err().to_string().contains("exceeds"));
        match r.read_frame().unwrap() {
            Frame::Value(v) => assert_eq!(v.get("ok").and_then(|x| x.as_u64()), Some(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn framebuf_yields_frames_across_arbitrary_feeds() {
        let wire = b"{\"a\":1}\n{\"b\":2}\n";
        let mut fb = FrameBuf::new(DEFAULT_MAX_FRAME);
        let mut seen = Vec::new();
        for &byte in wire.iter() {
            fb.feed(&[byte]);
            while let Some(frame) = fb.next_frame() {
                seen.push(frame.unwrap());
            }
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].get("a").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(seen[1].get("b").and_then(|x| x.as_u64()), Some(2));
        assert!(!fb.has_partial());
    }

    #[test]
    fn framebuf_overflow_clears_and_reports() {
        let mut fb = FrameBuf::new(16);
        fb.feed(&[b'x'; 64]);
        assert!(fb.next_frame().is_none());
        assert!(fb.check_overflow().is_err());
        assert_eq!(fb.pending_len(), 0);
    }
}

//! Client library for the `asha-serve` protocol.
//!
//! [`Client`] wraps one connection (Unix or TCP), correlates replies by
//! request id, and buffers any push frames that arrive interleaved with
//! replies so nothing is lost while a call is in flight. The `asha-ctl`
//! binary is a thin shell around this type.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use asha_core::Error;
use asha_metrics::JsonValue;
use asha_store::{ExperimentMeta, RunOptions};

use crate::codec::{encode_frame, Frame, FrameReader};
use crate::conn::Conn;
use crate::proto::{DaemonStats, Push, Reply, Request, WireStatus};

/// A connected protocol client.
pub struct Client {
    reader: FrameReader<Conn>,
    writer: Conn,
    next_id: u64,
    /// Push frames received while waiting for a reply, in arrival order.
    pending: VecDeque<Push>,
    /// Bound on how long [`Client::call`] waits for its reply (`None`
    /// blocks forever — a dead daemon then hangs the caller).
    call_timeout: Option<Duration>,
}

impl Client {
    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, Error> {
        let path = path.as_ref();
        let stream = UnixStream::connect(path)
            .map_err(|e| Error::io(path, e).context("connecting to daemon"))?;
        Client::from_conn(Conn::Unix(stream))
    }

    /// Connect over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Client, Error> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::from(e).context(format!("connecting to daemon at {addr}")))?;
        Client::from_conn(Conn::Tcp(stream))
    }

    /// Connect over TCP with a bound on connection establishment, so an
    /// unreachable daemon fails fast instead of hanging in the kernel's
    /// connect retry. (Unix-domain connects are local and resolve
    /// immediately; use [`Client::set_call_timeout`] for dead-daemon
    /// protection there.)
    pub fn connect_tcp_timeout(addr: &str, timeout: Duration) -> Result<Client, Error> {
        use std::net::ToSocketAddrs;
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| Error::from(e).context(format!("resolving daemon address {addr}")))?
            .next()
            .ok_or_else(|| {
                Error::invalid(format!("daemon address {addr:?} resolved to nothing"))
            })?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| Error::from(e).context(format!("connecting to daemon at {addr}")))?;
        Client::from_conn(Conn::Tcp(stream))
    }

    fn from_conn(conn: Conn) -> Result<Client, Error> {
        let writer = conn
            .try_clone()
            .map_err(|e| Error::from(e).context("cloning connection"))?;
        Ok(Client {
            reader: FrameReader::new(conn),
            writer,
            next_id: 1,
            pending: VecDeque::new(),
            call_timeout: None,
        })
    }

    /// Bound how long [`Client::call`] (and every convenience wrapper)
    /// waits for a reply. `None` restores the default: block forever.
    pub fn set_call_timeout(&mut self, timeout: Option<Duration>) {
        self.call_timeout = timeout;
    }

    /// The current reply-wait bound, if any.
    pub fn call_timeout(&self) -> Option<Duration> {
        self.call_timeout
    }

    /// Send one request and block for its reply (bounded by
    /// [`Client::set_call_timeout`], if set). Push frames that arrive
    /// first are buffered for [`Client::next_push`].
    pub fn call(&mut self, request: &Request) -> Result<Reply, Error> {
        let id = self.next_id;
        self.next_id += 1;
        let line = encode_frame(&request.to_frame(id));
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::from(e).context("sending request"))?;
        let op = request.op();
        let deadline = self.call_timeout.map(|t| Instant::now() + t);
        if deadline.is_some() {
            // Poll in short slices so the deadline is honored even when the
            // daemon never writes a byte.
            self.set_read_timeout(Some(Duration::from_millis(50)))?;
        }
        let result = loop {
            match self.reader.read_frame() {
                Err(e) => break Err(e),
                Ok(Frame::Eof) => {
                    break Err(Error::protocol("connection closed while awaiting reply"))
                }
                Ok(Frame::TimedOut) => {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            break Err(Error::from(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                format!(
                                    "no reply to {op:?} within {:?}",
                                    self.call_timeout.unwrap()
                                ),
                            ))
                            .context("daemon unresponsive"));
                        }
                    }
                }
                Ok(Frame::Value(frame)) => {
                    if Push::is_push_frame(&frame) {
                        match Push::from_frame(&frame) {
                            Ok(push) => self.pending.push_back(push),
                            Err(e) => break Err(e),
                        }
                        continue;
                    }
                    break Reply::from_frame(&frame, op).and_then(|(got_id, reply)| {
                        if got_id != id {
                            return Err(Error::protocol(format!(
                                "reply id {got_id} does not match request id {id}"
                            )));
                        }
                        reply
                    });
                }
            }
        };
        if deadline.is_some() {
            // Best-effort restore; if the socket died the result already
            // carries the interesting error.
            let _ = self.set_read_timeout(None);
        }
        result
    }

    /// Next push frame: buffered ones first, then the wire. `timeout`
    /// bounds the wait (`None` blocks until a frame or EOF). Returns
    /// `Ok(None)` on timeout or a cleanly closed connection.
    pub fn next_push(&mut self, timeout: Option<Duration>) -> Result<Option<Push>, Error> {
        if let Some(push) = self.pending.pop_front() {
            return Ok(Some(push));
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        // Poll in short slices so a bounded wait stays responsive without
        // reconfiguring the socket per call.
        self.set_read_timeout(Some(Duration::from_millis(50)))?;
        let result = loop {
            match self.reader.read_frame() {
                Ok(Frame::Eof) => break Ok(None),
                Ok(Frame::TimedOut) => {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            break Ok(None);
                        }
                    }
                }
                Ok(Frame::Value(frame)) => {
                    if Push::is_push_frame(&frame) {
                        break Push::from_frame(&frame).map(Some);
                    }
                    // A reply with no in-flight call is a protocol breach.
                    break Err(Error::protocol("unsolicited reply frame"));
                }
                Err(e) => break Err(e),
            }
        };
        self.set_read_timeout(None)?;
        result
    }

    fn set_read_timeout(&mut self, dur: Option<Duration>) -> Result<(), Error> {
        self.reader
            .get_ref()
            .set_read_timeout(dur)
            .map_err(|e| Error::from(e).context("setting read timeout"))
    }

    // ---- Convenience wrappers over the request vocabulary ----

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), Error> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Create an experiment (does not start it).
    pub fn create(&mut self, meta: &ExperimentMeta, opts: RunOptions) -> Result<(), Error> {
        self.call(&Request::Create {
            meta: meta.clone(),
            opts,
        })
        .map(|_| ())
    }

    /// Start (or restart) an experiment.
    pub fn start(&mut self, name: &str, opts: RunOptions) -> Result<(), Error> {
        self.call(&Request::Start {
            name: name.to_owned(),
            opts,
        })
        .map(|_| ())
    }

    /// Pause at the next step boundary.
    pub fn pause(&mut self, name: &str) -> Result<(), Error> {
        self.call(&Request::Pause {
            name: name.to_owned(),
        })
        .map(|_| ())
    }

    /// Resume a paused experiment.
    pub fn resume(&mut self, name: &str) -> Result<(), Error> {
        self.call(&Request::Resume {
            name: name.to_owned(),
        })
        .map(|_| ())
    }

    /// Abort (snapshot and stop; resumable later).
    pub fn abort(&mut self, name: &str) -> Result<(), Error> {
        self.call(&Request::Abort {
            name: name.to_owned(),
        })
        .map(|_| ())
    }

    /// One experiment's current status.
    pub fn status(&mut self, name: &str) -> Result<WireStatus, Error> {
        match self.call(&Request::Status {
            name: name.to_owned(),
        })? {
            Reply::Status(s) => Ok(s),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// All manifest rows.
    pub fn list(&mut self) -> Result<Vec<WireStatus>, Error> {
        match self.call(&Request::List)? {
            Reply::List(rows) => Ok(rows),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Daemon counters.
    pub fn stats(&mut self) -> Result<DaemonStats, Error> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Full metrics-plane snapshot as raw JSON (schema
    /// `asha-daemon-metrics-v1`); histograms decode with
    /// [`asha_obs::HistogramSnapshot::from_json`].
    pub fn metrics(&mut self) -> Result<JsonValue, Error> {
        match self.call(&Request::Metrics)? {
            Reply::Metrics(v) => Ok(v),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Subscribe to an experiment's live WAL stream from telemetry
    /// sequence `from_seq`; returns the subscription id.
    pub fn subscribe(&mut self, name: &str, from_seq: u64) -> Result<u64, Error> {
        match self.call(&Request::Subscribe {
            name: name.to_owned(),
            from_seq,
        })? {
            Reply::Subscribed { sub } => Ok(sub),
            other => Err(Error::protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Cancel a subscription.
    pub fn unsubscribe(&mut self, sub: u64) -> Result<(), Error> {
        self.call(&Request::Unsubscribe { sub }).map(|_| ())
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), Error> {
        self.call(&Request::Shutdown).map(|_| ())
    }
}

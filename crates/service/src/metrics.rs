//! The daemon's observability plane: one [`ServiceMetrics`] instance
//! shared by the reactor, the worker pool, every tailer thread, and the
//! store's durability hooks.
//!
//! Everything here is built on the lock-free primitives in
//! [`asha_obs::shared`], so hot paths (reactor loop, request execution)
//! record without taking a lock. The only mutex is around the
//! per-experiment tailer map, touched on subscribe and snapshot — never
//! per frame.
//!
//! # Clock discipline
//!
//! All durations are measured on one monotonic clock: `Instant` deltas
//! against the daemon's start (`now_nanos`). Cross-thread timestamps
//! (request ids are stamped at decode on the reactor thread and the
//! queue-wait measured on a worker thread) are safe because `Instant` is
//! monotonic across threads. When the plane is disabled, `now_nanos`
//! returns 0 and every recorder is a cheap early-return — no clock reads
//! on any hot path.
//!
//! # Exposure
//!
//! Three read paths share the same cells:
//!
//! * [`ServiceMetrics::daemon_stats`] — the legacy [`DaemonStats`]
//!   projection answering `Request::Stats` (kept wire-compatible);
//! * [`ServiceMetrics::snapshot_json`] — the full JSON snapshot answering
//!   `Request::Metrics` (schema [`METRICS_SCHEMA`]);
//! * [`ServiceMetrics::render_prometheus`] — Prometheus text exposition
//!   (format 0.0.4) for `GET /metrics`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use asha_metrics::JsonValue;
use asha_obs::{HistogramSnapshot, SharedCounter, SharedGauge, SharedHistogram};
use asha_store::StoreMetrics;

use crate::proto::DaemonStats;

/// Schema tag carried by every `Request::Metrics` reply.
pub const METRICS_SCHEMA: &str = "asha-daemon-metrics-v1";

/// Request kinds tracked with per-op latency histograms. `invalid` buckets
/// frames that failed to decode into any known op.
pub const OPS: [&str; 14] = [
    "ping",
    "create",
    "start",
    "pause",
    "resume",
    "abort",
    "status",
    "list",
    "stats",
    "metrics",
    "subscribe",
    "unsubscribe",
    "shutdown",
    "invalid",
];

fn op_index(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1)
}

/// Per-request-kind cells.
#[derive(Debug)]
struct OpMetrics {
    count: SharedCounter,
    errors: SharedCounter,
    /// Decode → worker pickup.
    queue_wait: SharedHistogram,
    /// Worker pickup → reply queued.
    execute: SharedHistogram,
}

impl OpMetrics {
    fn new() -> OpMetrics {
        OpMetrics {
            count: SharedCounter::new(),
            errors: SharedCounter::new(),
            queue_wait: SharedHistogram::latency(),
            execute: SharedHistogram::latency(),
        }
    }
}

/// Per-experiment tailer cells. Entries are created on first subscribe and
/// kept for the daemon's lifetime so counter totals survive tailer
/// restarts; gauges are zeroed when the tailer exits.
#[derive(Debug)]
pub struct TailerMetrics {
    /// Live subscribers attached to this experiment's tailer.
    pub subscribers: SharedGauge,
    /// Records in the shared backlog the slowest Live subscriber has not
    /// consumed yet.
    pub lag_records: SharedGauge,
    /// Live subscribers demoted to CatchUp because they fell further
    /// behind than the backlog window.
    pub window_evictions: SharedCounter,
    /// Event frames fanned out to subscriber queues.
    pub fanout_frames: SharedCounter,
}

impl TailerMetrics {
    fn new() -> Arc<TailerMetrics> {
        Arc::new(TailerMetrics {
            subscribers: SharedGauge::new(),
            lag_records: SharedGauge::new(),
            window_evictions: SharedCounter::new(),
            fanout_frames: SharedCounter::new(),
        })
    }
}

/// Every metric the daemon exposes, updated lock-free from all threads.
#[derive(Debug)]
pub struct ServiceMetrics {
    enabled: bool,
    epoch: Instant,
    next_req_id: AtomicU64,

    // Reactor.
    accepts: SharedCounter,
    bytes_read: SharedCounter,
    bytes_written: SharedCounter,
    decode_errors: SharedCounter,
    read_pauses: SharedCounter,
    iterations: SharedCounter,
    iteration: SharedHistogram,
    wake_dispatch: SharedHistogram,
    http_requests: SharedCounter,

    // Protocol connections.
    connections_total: SharedCounter,
    connections_open: SharedGauge,

    // Worker pool.
    queue_depth: SharedGauge,

    // Requests.
    requests: SharedCounter,
    request_errors: SharedCounter,
    slow_requests: SharedCounter,
    per_op: Vec<OpMetrics>,

    // Subscriptions.
    subscriptions_open: SharedGauge,
    events_sent: SharedCounter,
    events_lagged: SharedCounter,

    // Tailers, by experiment name.
    tailers: Mutex<HashMap<String, Arc<TailerMetrics>>>,

    // Store durability plane.
    store: Arc<StoreMetrics>,
}

impl ServiceMetrics {
    /// A zeroed plane. `enabled: false` turns every recorder into an
    /// early-return (used by the `service_load` overhead row); snapshots
    /// then report zeros.
    pub fn new(enabled: bool) -> Arc<ServiceMetrics> {
        Arc::new(ServiceMetrics {
            enabled,
            epoch: Instant::now(),
            next_req_id: AtomicU64::new(1),
            accepts: SharedCounter::new(),
            bytes_read: SharedCounter::new(),
            bytes_written: SharedCounter::new(),
            decode_errors: SharedCounter::new(),
            read_pauses: SharedCounter::new(),
            iterations: SharedCounter::new(),
            iteration: SharedHistogram::latency(),
            wake_dispatch: SharedHistogram::latency(),
            http_requests: SharedCounter::new(),
            connections_total: SharedCounter::new(),
            connections_open: SharedGauge::new(),
            queue_depth: SharedGauge::new(),
            requests: SharedCounter::new(),
            request_errors: SharedCounter::new(),
            slow_requests: SharedCounter::new(),
            per_op: OPS.iter().map(|_| OpMetrics::new()).collect(),
            subscriptions_open: SharedGauge::new(),
            events_sent: SharedCounter::new(),
            events_lagged: SharedCounter::new(),
            tailers: Mutex::new(HashMap::new()),
            store: StoreMetrics::new(),
        })
    }

    /// Whether the plane records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Monotonic nanoseconds since the daemon started (0 when disabled —
    /// callers treat timestamps as opaque and only difference them).
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Allocate the next request id (assigned at decode time, before the
    /// frame is queued for a worker). Ids are allocated even when the
    /// plane is disabled so slow-request traces stay correlatable.
    #[inline]
    pub fn next_request_id(&self) -> u64 {
        self.next_req_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The store durability plane tied to this daemon.
    pub fn store(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.store)
    }

    // ---- Reactor-side recorders -------------------------------------

    /// A socket was accepted (any listener, including `/metrics`).
    pub fn accept(&self) {
        if self.enabled {
            self.accepts.inc();
        }
    }

    /// Bytes read off a socket.
    pub fn record_bytes_read(&self, n: u64) {
        if self.enabled {
            self.bytes_read.add(n);
        }
    }

    /// Bytes written to a socket.
    pub fn record_bytes_written(&self, n: u64) {
        if self.enabled {
            self.bytes_written.add(n);
        }
    }

    /// A frame failed to decode (malformed, oversized, torn).
    pub fn decode_error(&self) {
        if self.enabled {
            self.decode_errors.inc();
        }
    }

    /// A connection's reads were paused by the backlog high-water mark.
    pub fn read_pause(&self) {
        if self.enabled {
            self.read_pauses.inc();
        }
    }

    /// One reactor iteration that dispatched at least one readiness event.
    pub fn reactor_iteration(&self, seconds: f64) {
        if self.enabled {
            self.iterations.inc();
            self.iteration.observe(seconds);
        }
    }

    /// Producer doorbell → reactor dispatch latency.
    pub fn wake_to_dispatch(&self, seconds: f64) {
        if self.enabled {
            self.wake_dispatch.observe(seconds);
        }
    }

    /// A request line arrived on the HTTP `/metrics` listener.
    pub fn http_request(&self) {
        if self.enabled {
            self.http_requests.inc();
        }
    }

    // ---- Connection lifecycle ---------------------------------------

    /// A protocol connection opened.
    pub fn conn_opened(&self) {
        if self.enabled {
            self.connections_total.inc();
            self.connections_open.inc();
        }
    }

    /// A protocol connection closed.
    pub fn conn_closed(&self) {
        if self.enabled {
            self.connections_open.dec();
        }
    }

    // ---- Worker pool ------------------------------------------------

    /// A visit entered the worker queue.
    pub fn visit_queued(&self) {
        if self.enabled {
            self.queue_depth.inc();
        }
    }

    /// A visit left the worker queue.
    pub fn visit_dequeued(&self) {
        if self.enabled {
            self.queue_depth.dec();
        }
    }

    /// One request finished: op, outcome, and both latency legs.
    pub fn request_observed(&self, op: &str, ok: bool, queue_wait_s: f64, execute_s: f64) {
        if !self.enabled {
            return;
        }
        self.requests.inc();
        if !ok {
            self.request_errors.inc();
        }
        let cells = &self.per_op[op_index(op)];
        cells.count.inc();
        if !ok {
            cells.errors.inc();
        }
        cells.queue_wait.observe(queue_wait_s);
        cells.execute.observe(execute_s);
    }

    /// A request crossed the slow-request threshold.
    pub fn slow_request(&self) {
        if self.enabled {
            self.slow_requests.inc();
        }
    }

    // ---- Subscriptions ----------------------------------------------

    /// A subscription opened.
    pub fn sub_opened(&self) {
        if self.enabled {
            self.subscriptions_open.inc();
        }
    }

    /// A subscription closed.
    pub fn sub_closed(&self) {
        if self.enabled {
            self.subscriptions_open.dec();
        }
    }

    /// A push frame was delivered to a subscriber queue.
    pub fn event_sent(&self) {
        if self.enabled {
            self.events_sent.inc();
        }
    }

    /// A lossy push was dropped on a full subscriber queue.
    pub fn event_lagged(&self) {
        if self.enabled {
            self.events_lagged.inc();
        }
    }

    /// The per-experiment tailer cells, created on first use. Stable for
    /// the daemon's lifetime so counters survive tailer restarts.
    pub fn tailer(&self, experiment: &str) -> Arc<TailerMetrics> {
        let mut map = self.tailers.lock().unwrap();
        Arc::clone(
            map.entry(experiment.to_owned())
                .or_insert_with(TailerMetrics::new),
        )
    }

    // ---- Read paths -------------------------------------------------

    /// The legacy [`DaemonStats`] counters, projected from the plane so
    /// `Request::Stats` and `Request::Metrics` can never diverge.
    pub fn daemon_stats(&self) -> DaemonStats {
        DaemonStats {
            connections_total: self.connections_total.get(),
            connections_open: self.connections_open.get().max(0) as u64,
            requests: self.requests.get(),
            subscriptions_open: self.subscriptions_open.get().max(0) as u64,
            events_sent: self.events_sent.get(),
            events_lagged: self.events_lagged.get(),
        }
    }

    /// The full plane as JSON (the `Request::Metrics` reply payload).
    /// Histograms use [`HistogramSnapshot::to_json`], so a client can
    /// rebuild exact snapshots and compute quantiles locally.
    pub fn snapshot_json(&self) -> JsonValue {
        let by_op: Vec<(String, JsonValue)> = OPS
            .iter()
            .zip(self.per_op.iter())
            .filter(|(_, cells)| cells.count.get() > 0)
            .map(|(op, cells)| {
                (
                    (*op).to_owned(),
                    JsonValue::obj(vec![
                        ("count", JsonValue::Int(cells.count.get())),
                        ("errors", JsonValue::Int(cells.errors.get())),
                        ("queue_wait", cells.queue_wait.snapshot().to_json()),
                        ("execute", cells.execute.snapshot().to_json()),
                    ]),
                )
            })
            .collect();
        let tailers: Vec<(String, JsonValue)> = {
            let map = self.tailers.lock().unwrap();
            let mut rows: Vec<_> = map
                .iter()
                .map(|(name, t)| {
                    (
                        name.clone(),
                        JsonValue::obj(vec![
                            (
                                "subscribers",
                                JsonValue::Int(t.subscribers.get().max(0) as u64),
                            ),
                            (
                                "lag_records",
                                JsonValue::Int(t.lag_records.get().max(0) as u64),
                            ),
                            ("window_evictions", JsonValue::Int(t.window_evictions.get())),
                            ("fanout_frames", JsonValue::Int(t.fanout_frames.get())),
                        ]),
                    )
                })
                .collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        JsonValue::obj(vec![
            ("schema", JsonValue::Str(METRICS_SCHEMA.to_owned())),
            ("enabled", JsonValue::Bool(self.enabled)),
            (
                "uptime_s",
                JsonValue::Num(self.epoch.elapsed().as_secs_f64()),
            ),
            (
                "reactor",
                JsonValue::obj(vec![
                    ("accepts", JsonValue::Int(self.accepts.get())),
                    ("bytes_read", JsonValue::Int(self.bytes_read.get())),
                    ("bytes_written", JsonValue::Int(self.bytes_written.get())),
                    ("decode_errors", JsonValue::Int(self.decode_errors.get())),
                    ("read_pauses", JsonValue::Int(self.read_pauses.get())),
                    ("iterations", JsonValue::Int(self.iterations.get())),
                    ("iteration", self.iteration.snapshot().to_json()),
                    ("wake_dispatch", self.wake_dispatch.snapshot().to_json()),
                ]),
            ),
            (
                "connections",
                JsonValue::obj(vec![
                    ("total", JsonValue::Int(self.connections_total.get())),
                    (
                        "open",
                        JsonValue::Int(self.connections_open.get().max(0) as u64),
                    ),
                ]),
            ),
            (
                "http",
                JsonValue::obj(vec![("requests", JsonValue::Int(self.http_requests.get()))]),
            ),
            (
                "workers",
                JsonValue::obj(vec![(
                    "queue_depth",
                    JsonValue::Int(self.queue_depth.get().max(0) as u64),
                )]),
            ),
            (
                "requests",
                JsonValue::obj(vec![
                    ("total", JsonValue::Int(self.requests.get())),
                    ("errors", JsonValue::Int(self.request_errors.get())),
                    ("slow", JsonValue::Int(self.slow_requests.get())),
                    ("by_op", JsonValue::Obj(by_op)),
                ]),
            ),
            (
                "subscriptions",
                JsonValue::obj(vec![
                    (
                        "open",
                        JsonValue::Int(self.subscriptions_open.get().max(0) as u64),
                    ),
                    ("events_sent", JsonValue::Int(self.events_sent.get())),
                    ("events_lagged", JsonValue::Int(self.events_lagged.get())),
                ]),
            ),
            ("tailers", JsonValue::Obj(tailers)),
            (
                "store",
                JsonValue::obj(vec![
                    ("wal_append", self.store.wal_append.snapshot().to_json()),
                    ("wal_fsync", self.store.wal_fsync.snapshot().to_json()),
                    (
                        "snapshot_write",
                        self.store.snapshot_write.snapshot().to_json(),
                    ),
                    (
                        "snapshot_delta_write",
                        self.store.snapshot_delta_write.snapshot().to_json(),
                    ),
                    (
                        "snapshot_full_bytes",
                        JsonValue::Int(self.store.snapshot_full_bytes.get()),
                    ),
                    (
                        "snapshot_delta_bytes",
                        JsonValue::Int(self.store.snapshot_delta_bytes.get()),
                    ),
                    (
                        "commit_window",
                        self.store.commit_window.snapshot().to_json(),
                    ),
                    (
                        "group_commit_requests",
                        JsonValue::Int(self.store.group_commit_requests.get()),
                    ),
                    (
                        "group_commit_fsyncs",
                        JsonValue::Int(self.store.group_commit_fsyncs.get()),
                    ),
                ]),
            ),
        ])
    }

    /// Render the plane in the Prometheus text exposition format (0.0.4).
    ///
    /// Naming follows the Prometheus conventions: `asha_` prefix,
    /// `_total` suffix on counters, `_seconds` base unit on histograms
    /// (exposed as cumulative `_bucket{le=...}` series plus `_sum` /
    /// `_count`). Fixed-name series always appear; per-op histograms
    /// appear once the op has been seen, per-experiment tailer series
    /// once the experiment has a tailer.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        counter(
            &mut out,
            "asha_connections_total",
            "Protocol connections accepted over the daemon's lifetime",
            self.connections_total.get(),
        );
        gauge(
            &mut out,
            "asha_connections_open",
            "Currently open protocol connections",
            self.connections_open.get(),
        );
        counter(
            &mut out,
            "asha_reactor_accepts_total",
            "Sockets accepted by the reactor (all listeners)",
            self.accepts.get(),
        );
        counter(
            &mut out,
            "asha_reactor_bytes_read_total",
            "Bytes read off sockets",
            self.bytes_read.get(),
        );
        counter(
            &mut out,
            "asha_reactor_bytes_written_total",
            "Bytes written to sockets",
            self.bytes_written.get(),
        );
        counter(
            &mut out,
            "asha_reactor_frame_decode_errors_total",
            "Frames that failed to decode (malformed, oversized, torn)",
            self.decode_errors.get(),
        );
        counter(
            &mut out,
            "asha_reactor_read_pauses_total",
            "Connection reads paused by the backlog high-water mark",
            self.read_pauses.get(),
        );
        counter(
            &mut out,
            "asha_reactor_iterations_total",
            "Reactor iterations that dispatched at least one event",
            self.iterations.get(),
        );
        histogram(
            &mut out,
            "asha_reactor_iteration_seconds",
            "Time spent dispatching one reactor readiness batch",
            "",
            &self.iteration.snapshot(),
        );
        histogram(
            &mut out,
            "asha_reactor_wake_dispatch_seconds",
            "Producer doorbell to reactor dispatch latency",
            "",
            &self.wake_dispatch.snapshot(),
        );
        counter(
            &mut out,
            "asha_http_requests_total",
            "Requests served on the HTTP metrics listener",
            self.http_requests.get(),
        );
        gauge(
            &mut out,
            "asha_worker_queue_depth",
            "Connection visits queued for the worker pool",
            self.queue_depth.get(),
        );
        counter(
            &mut out,
            "asha_requests_total",
            "Protocol requests served (including failed ones)",
            self.requests.get(),
        );
        counter(
            &mut out,
            "asha_request_errors_total",
            "Protocol requests answered with an error frame",
            self.request_errors.get(),
        );
        counter(
            &mut out,
            "asha_slow_requests_total",
            "Requests that crossed the slow-request threshold",
            self.slow_requests.get(),
        );
        // Per-op histograms share one metric family per leg, labelled by op.
        let seen: Vec<(usize, &OpMetrics)> = self
            .per_op
            .iter()
            .enumerate()
            .filter(|(_, cells)| cells.count.get() > 0)
            .collect();
        header(
            &mut out,
            "asha_request_queue_wait_seconds",
            "Request decode to worker pickup latency",
            "histogram",
        );
        for (i, cells) in &seen {
            histogram_series(
                &mut out,
                "asha_request_queue_wait_seconds",
                &format!("op=\"{}\"", OPS[*i]),
                &cells.queue_wait.snapshot(),
            );
        }
        header(
            &mut out,
            "asha_request_execute_seconds",
            "Request execution latency (worker pickup to reply queued)",
            "histogram",
        );
        for (i, cells) in &seen {
            histogram_series(
                &mut out,
                "asha_request_execute_seconds",
                &format!("op=\"{}\"", OPS[*i]),
                &cells.execute.snapshot(),
            );
        }
        gauge(
            &mut out,
            "asha_subscriptions_open",
            "Currently live subscriptions",
            self.subscriptions_open.get(),
        );
        counter(
            &mut out,
            "asha_sub_events_sent_total",
            "Push frames delivered to subscriber queues",
            self.events_sent.get(),
        );
        counter(
            &mut out,
            "asha_sub_events_lagged_total",
            "Lossy push frames dropped on full subscriber queues",
            self.events_lagged.get(),
        );
        // Tailer series, labelled by experiment.
        {
            let map = self.tailers.lock().unwrap();
            let mut names: Vec<&String> = map.keys().collect();
            names.sort();
            header(
                &mut out,
                "asha_tailer_subscribers",
                "Subscribers attached to the experiment's tailer",
                "gauge",
            );
            for name in &names {
                let label = format!("experiment=\"{}\"", escape_label(name));
                sample(
                    &mut out,
                    "asha_tailer_subscribers",
                    &label,
                    map[name.as_str()].subscribers.get() as f64,
                );
            }
            header(
                &mut out,
                "asha_tailer_lag_records",
                "Backlog records the slowest live subscriber has not consumed",
                "gauge",
            );
            for name in &names {
                let label = format!("experiment=\"{}\"", escape_label(name));
                sample(
                    &mut out,
                    "asha_tailer_lag_records",
                    &label,
                    map[name.as_str()].lag_records.get() as f64,
                );
            }
            header(
                &mut out,
                "asha_tailer_window_evictions_total",
                "Live subscribers demoted to catch-up after falling out of the backlog window",
                "counter",
            );
            for name in &names {
                let label = format!("experiment=\"{}\"", escape_label(name));
                sample(
                    &mut out,
                    "asha_tailer_window_evictions_total",
                    &label,
                    map[name.as_str()].window_evictions.get() as f64,
                );
            }
            header(
                &mut out,
                "asha_tailer_fanout_frames_total",
                "Event frames fanned out to subscriber queues",
                "counter",
            );
            for name in &names {
                let label = format!("experiment=\"{}\"", escape_label(name));
                sample(
                    &mut out,
                    "asha_tailer_fanout_frames_total",
                    &label,
                    map[name.as_str()].fanout_frames.get() as f64,
                );
            }
        }
        histogram(
            &mut out,
            "asha_wal_append_seconds",
            "WAL record append latency",
            "",
            &self.store.wal_append.snapshot(),
        );
        histogram(
            &mut out,
            "asha_wal_fsync_seconds",
            "WAL flush+fsync latency",
            "",
            &self.store.wal_fsync.snapshot(),
        );
        histogram(
            &mut out,
            "asha_snapshot_write_seconds",
            "Experiment snapshot write latency",
            "",
            &self.store.snapshot_write.snapshot(),
        );
        histogram(
            &mut out,
            "asha_snapshot_delta_write_seconds",
            "Delta snapshot diff+write latency",
            "",
            &self.store.snapshot_delta_write.snapshot(),
        );
        counter(
            &mut out,
            "asha_snapshot_full_bytes_total",
            "Bytes written by full snapshots",
            self.store.snapshot_full_bytes.get(),
        );
        counter(
            &mut out,
            "asha_snapshot_delta_bytes_total",
            "Bytes written by delta snapshots",
            self.store.snapshot_delta_bytes.get(),
        );
        histogram(
            &mut out,
            "asha_commit_window_seconds",
            "Group-commit batch latency, first request to durable",
            "",
            &self.store.commit_window.snapshot(),
        );
        counter(
            &mut out,
            "asha_group_commit_requests_total",
            "Durability requests submitted to the group-commit pipeline",
            self.store.group_commit_requests.get(),
        );
        counter(
            &mut out,
            "asha_group_commit_fsyncs_total",
            "Fsync syscalls the group-commit pipeline issued",
            self.store.group_commit_fsyncs.get(),
        );
        gauge_f64(
            &mut out,
            "asha_uptime_seconds",
            "Seconds since the daemon started",
            self.epoch.elapsed().as_secs_f64(),
        );
        out
    }
}

// ---- Prometheus text helpers ------------------------------------------

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn sample(out: &mut String, name: &str, labels: &str, value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    push_num(out, value);
    out.push('\n');
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    sample(out, name, "", value as f64);
}

fn gauge(out: &mut String, name: &str, help: &str, value: i64) {
    header(out, name, help, "gauge");
    sample(out, name, "", value as f64);
}

fn gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    header(out, name, help, "gauge");
    sample(out, name, "", value);
}

fn histogram(out: &mut String, name: &str, help: &str, labels: &str, snap: &HistogramSnapshot) {
    header(out, name, help, "histogram");
    histogram_series(out, name, labels, snap);
}

/// One labelled series of an (already-headed) histogram family:
/// cumulative `_bucket` samples, then `_sum` and `_count`.
fn histogram_series(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (bound, n) in snap.buckets() {
        cumulative += n;
        out.push_str(name);
        out.push_str("_bucket{");
        out.push_str(labels);
        out.push_str(sep);
        out.push_str("le=\"");
        if bound.is_infinite() {
            out.push_str("+Inf");
        } else {
            push_num(out, bound);
        }
        out.push_str("\"} ");
        push_num(out, cumulative as f64);
        out.push('\n');
    }
    let suffix = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(name);
    out.push_str("_sum");
    out.push_str(&suffix);
    out.push(' ');
    push_num(out, snap.sum());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    out.push_str(&suffix);
    out.push(' ');
    push_num(out, snap.count() as f64);
    out.push('\n');
}

/// Prometheus numbers: integers without a decimal point, floats via
/// Rust's shortest round-trip `Display`.
fn push_num(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Escape a label value per the exposition format: backslash, quote,
/// newline.
fn escape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_projection_tracks_cells() {
        let m = ServiceMetrics::new(true);
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.request_observed("ping", true, 1e-6, 2e-6);
        m.sub_opened();
        m.event_sent();
        m.event_lagged();
        let s = m.daemon_stats();
        assert_eq!(s.connections_total, 2);
        assert_eq!(s.connections_open, 1);
        assert_eq!(s.requests, 1);
        assert_eq!(s.subscriptions_open, 1);
        assert_eq!(s.events_sent, 1);
        assert_eq!(s.events_lagged, 1);
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let m = ServiceMetrics::new(false);
        m.conn_opened();
        m.request_observed("ping", true, 1.0, 1.0);
        assert_eq!(m.now_nanos(), 0);
        let s = m.daemon_stats();
        assert_eq!(s.connections_total, 0);
        assert_eq!(s.requests, 0);
    }

    #[test]
    fn unknown_op_buckets_as_invalid() {
        let m = ServiceMetrics::new(true);
        m.request_observed("frobnicate", false, 0.0, 0.0);
        let snap = m.snapshot_json();
        let by_op = snap.get("requests").and_then(|r| r.get("by_op")).unwrap();
        assert!(by_op.get("invalid").is_some());
    }

    #[test]
    fn snapshot_json_carries_schema() {
        let m = ServiceMetrics::new(true);
        let v = m.snapshot_json();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some(METRICS_SCHEMA)
        );
        // Round-trips through the hand-rolled parser.
        let text = v.render_compact();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(|s| s.as_str()),
            Some(METRICS_SCHEMA)
        );
    }
}

//! Tuning-as-a-service for asha: a long-running experiment daemon and its
//! client library.
//!
//! The durable store ([`asha_store`]) made a tuning run a recoverable
//! object; this crate makes it a *shared* one. A single daemon process
//! (`asha-serve`) owns an [`asha_store::ExperimentSupervisor`] root and
//! exposes it to many concurrent clients over Unix-domain and TCP sockets,
//! speaking a versioned newline-delimited JSON protocol built on the same
//! hand-rolled [`asha_metrics::JsonValue`] used everywhere else (the
//! vendored `serde` is a stub).
//!
//! * [`proto`] — the frame vocabulary: requests
//!   (create/start/pause/resume/abort/status/list/stats/subscribe/…),
//!   replies, typed errors on the wire, and push frames for streaming
//!   subscriptions.
//! * [`codec`] — newline-delimited framing: the sans-io [`FrameBuf`]
//!   decoder (fed from readiness events) and the blocking [`FrameReader`]
//!   built on it; size limits, torn-frame detection, timeout-aware reads.
//! * [`reactor`] — the event-driven connection engine (Unix only): one
//!   readiness loop (epoll/`poll`) over every non-blocking socket, driving
//!   a fixed worker pool; per-connection outgoing queues with
//!   partial-write resumption and interest re-arming.
//! * [`server`] — [`Daemon`]: the reactor plus one WAL tailer per
//!   *experiment* fanning frames out to all of its subscribers, bounded
//!   per-client queues with explicit lag accounting (a slow subscriber
//!   never stalls a run), graceful drain on shutdown.
//! * [`client`] — [`Client`]: blocking request/reply with push buffering
//!   and connect/call timeouts; the `asha-ctl` binary in `asha-bench` is a
//!   thin shell over it.
//!
//! # Quick start
//!
//! ```no_run
//! use asha_service::{Client, Daemon, ServeOptions};
//!
//! let mut opts = ServeOptions::new("/tmp/asha-root");
//! opts.unix = Some("/tmp/asha.sock".into());
//! let daemon = Daemon::start(opts).unwrap();
//!
//! let mut client = Client::connect_unix("/tmp/asha.sock").unwrap();
//! client.ping().unwrap();
//! for row in client.list().unwrap() {
//!     println!("{} {}", row.name, row.status.as_str());
//! }
//! client.shutdown().unwrap();
//! daemon.wait().unwrap();
//! ```

// The reactor's poller speaks to epoll/poll through hand-declared FFI; the
// `unsafe` needed for those calls is confined to `reactor::poller`'s sys
// modules and explicitly allowed there. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod conn;
pub mod metrics;
pub mod proto;
#[cfg(unix)]
pub mod reactor;
pub mod server;
#[cfg(unix)]
pub(crate) mod tailer;

pub use crate::client::Client;
pub use crate::codec::{encode_frame, Frame, FrameBuf, FrameReader};
pub use crate::conn::Conn;
pub use crate::metrics::{ServiceMetrics, TailerMetrics, METRICS_SCHEMA};
pub use crate::proto::{
    DaemonStats, Push, Reply, Request, WireStatus, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
#[cfg(unix)]
pub use crate::reactor::{Offer, OutBuf};
pub use crate::server::{Daemon, ServeOptions};

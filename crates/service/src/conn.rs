//! A unified stream type over Unix-domain and TCP sockets.
//!
//! Server and client both speak the protocol over [`Conn`], so every code
//! path above the transport is identical for both listener families.

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One connected byte stream, Unix or TCP.
#[derive(Debug)]
pub enum Conn {
    /// A Unix-domain socket connection.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Conn {
    /// Clone the underlying socket handle (independent cursor; same
    /// connection), so one side can read while the other writes.
    pub fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
        })
    }

    /// Set the read timeout (None = block forever).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(dur),
            Conn::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Switch the socket between blocking and non-blocking mode. The
    /// daemon's reactor runs every accepted socket non-blocking; the client
    /// library keeps its sockets blocking with read timeouts.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(nonblocking),
            Conn::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// The raw file descriptor, for readiness registration.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        match self {
            Conn::Unix(s) => s.as_raw_fd(),
            Conn::Tcp(s) => s.as_raw_fd(),
        }
    }

    /// Shut down both directions, unblocking any reader on the peer or on
    /// a cloned handle.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    /// Short peer description for tracing.
    pub fn peer(&self) -> String {
        match self {
            #[cfg(unix)]
            Conn::Unix(_) => "unix".to_owned(),
            Conn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp".to_owned()),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

//! A dependency-free readiness poller in the style of mio.
//!
//! [`Poller`] wraps the operating system's readiness facility — `epoll` on
//! Linux, POSIX `poll(2)` elsewhere on Unix — behind a tiny registration
//! API: register a file descriptor with a `u64` token and an interest set,
//! re-arm it as interests change, and [`Poller::wait`] for batches of
//! [`PollEvent`]s. The vendored dependency set has no `libc`, so the
//! handful of syscalls used here are declared directly; this is the one
//! place in the service crate that needs `unsafe`, and it is confined to
//! the `sys` modules below.
//!
//! [`Waker`] lets other threads interrupt a blocked [`Poller::wait`]. It is
//! built on [`std::os::unix::net::UnixStream::pair`] — plain std, no FFI —
//! with the read end registered like any other fd.

use std::io;
#[cfg(unix)]
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Readiness interest for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer hung up).
    pub read: bool,
    /// Wake when the descriptor is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        read: true,
        write: true,
    };
    /// Write-only interest (reads paused).
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// No interest (fully paused; stays registered).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (data, or EOF/hangup — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition; treat as readable so the error surfaces
    /// through the normal read path.
    pub error: bool,
}

// ---------------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // `struct epoll_event` is packed on x86-64 (and x32) only; every other
    // Linux ABI uses natural alignment. This mirrors glibc's __EPOLL_PACKED.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The epoll instance (closed on drop).
    #[derive(Debug)]
    pub struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            // SAFETY: epoll_create1 takes a flag word and returns a new fd
            // or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            // SAFETY: `evp` is either null (DEL) or a valid pointer to a
            // live EpollEvent for the duration of the call.
            if unsafe { epoll_ctl(self.epfd, op, fd, evp) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
            const MAX_EVENTS: usize = 256;
            let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms = match timeout {
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
                None => -1,
            };
            // SAFETY: `events` is a valid, writable buffer of MAX_EVENTS
            // entries; the kernel writes at most `maxevents` of them.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &events[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            // SAFETY: closing the fd this struct owns, exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.read {
            bits |= EPOLLIN;
        }
        if interest.write {
            bits |= EPOLLOUT;
        }
        bits
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)]
mod sys {
    use super::{Interest, PollEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// Registration table driving repeated `poll(2)` calls. O(n) per wait,
    /// which is fine for the platforms that land here; Linux gets epoll.
    #[derive(Debug, Default)]
    pub struct Backend {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend::default())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .unwrap()
                .insert(fd, (token, interest));
            Ok(())
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
            let (mut fds, tokens): (Vec<PollFd>, Vec<u64>) = {
                let reg = self.registered.lock().unwrap();
                reg.iter()
                    .map(|(&fd, &(token, interest))| {
                        let mut events = 0i16;
                        if interest.read {
                            events |= POLLIN;
                        }
                        if interest.write {
                            events |= POLLOUT;
                        }
                        (
                            PollFd {
                                fd,
                                events,
                                revents: 0,
                            },
                            token,
                        )
                    })
                    .unzip()
            };
            let timeout_ms = match timeout {
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
                None => -1,
            };
            // SAFETY: `fds` is a valid, writable slice of PollFd for the
            // duration of the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents != 0 {
                    out.push(PollEvent {
                        token,
                        readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        error: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// The readiness poller: epoll on Linux, `poll(2)` on other Unix.
#[derive(Debug)]
pub struct Poller {
    backend: sys::Backend,
}

impl Poller {
    /// A new, empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: sys::Backend::new()?,
        })
    }

    /// Register `fd` under `token` with the given interest. The fd must be
    /// deregistered before it is closed.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Change the interest set of a registered fd.
    pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.rearm(fd, token, interest)
    }

    /// Remove a registered fd.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Block until at least one registered fd is ready or the timeout
    /// elapses, appending events to `out` (which is cleared first).
    /// A signal-interrupted wait returns successfully with no events.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        self.backend.wait(out, timeout)
    }
}

/// Cross-thread wakeup for a poller, built on a non-blocking socket pair.
///
/// The read end is registered with the poller under a reserved token;
/// [`Waker::wake`] makes that token readable, and the poll loop calls
/// [`Waker::drain`] to reset it.
#[derive(Debug)]
pub struct Waker {
    read_end: UnixStream,
    write_end: UnixStream,
}

impl Waker {
    /// A new waker; register [`Waker::fd`] with the poller afterwards.
    pub fn new() -> io::Result<Waker> {
        let (read_end, write_end) = UnixStream::pair()?;
        read_end.set_nonblocking(true)?;
        write_end.set_nonblocking(true)?;
        Ok(Waker {
            read_end,
            write_end,
        })
    }

    /// The fd to register (read interest) under the waker's token.
    pub fn fd(&self) -> RawFd {
        self.read_end.as_raw_fd()
    }

    /// Make the poller's next (or current) wait return. Safe from any
    /// thread; a full pipe means a wakeup is already pending, which is all
    /// that is needed.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.write_end).write(&[1u8]);
    }

    /// Consume pending wakeup bytes after the poller reported readability.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.read_end).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.register(waker.fd(), 0, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending: times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        waker.wake();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 0);
        assert!(events[0].readable);
        waker.drain();

        // Drained: quiet again.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        client.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut buf = [0u8; 8];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hi");

        // Pause reads, ask for write readiness: an idle socket is writable.
        poller
            .rearm(server.as_raw_fd(), 7, Interest::WRITE)
            .unwrap();
        client.write_all(b"more").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        assert!(
            events.iter().all(|e| e.token != 7 || !e.readable),
            "read interest was paused"
        );

        poller.deregister(server.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }
}

//! Per-connection outgoing frame buffer with partial-write resumption.
//!
//! Producers (worker threads, experiment tailers, status listeners) append
//! whole encoded frames; the reactor drains bytes into the socket whenever
//! it is writable. A write syscall may consume any byte count — including
//! one that ends mid-frame — so the buffer tracks an offset into its front
//! frame and [`OutBuf::consume`] advances across frame boundaries exactly
//! as far as the kernel accepted.

use std::collections::VecDeque;

/// Outcome of one capacity-checked append attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// The frame was queued.
    Sent,
    /// The queue is at capacity; the caller keeps the frame.
    Full,
    /// The connection is closed; the frame can never be delivered.
    Closed,
}

/// Bounded queue of encoded frames awaiting the socket.
#[derive(Debug)]
pub struct OutBuf {
    frames: VecDeque<String>,
    /// Bytes of the front frame already written to the socket.
    front_written: usize,
    /// Soft capacity (frames) enforced for subscription traffic only;
    /// replies bypass it because request dispatch is paused upstream when
    /// the buffer backs up.
    cap: usize,
    /// No more appends; drain what remains, then the reactor closes the
    /// socket.
    closing: bool,
    /// The socket is gone; everything is discarded.
    closed: bool,
}

impl OutBuf {
    /// An empty buffer with the given soft frame capacity.
    pub fn new(cap: usize) -> Self {
        OutBuf {
            frames: VecDeque::new(),
            front_written: 0,
            cap,
            closing: false,
            closed: false,
        }
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether the buffer refuses new frames forever.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Whether the buffer is draining towards a close.
    pub fn is_closing(&self) -> bool {
        self.closing
    }

    /// Mark the connection as drain-then-close: no new frames, but queued
    /// ones still go out.
    pub fn begin_close(&mut self) {
        self.closing = true;
    }

    /// Mark the connection dead and drop everything queued.
    pub fn close(&mut self) {
        self.closed = true;
        self.closing = true;
        self.frames.clear();
        self.front_written = 0;
    }

    /// Append a frame unconditionally (reply tier — backpressure is applied
    /// upstream by pausing reads). Returns false if the connection is
    /// closed or closing.
    pub fn push_reply(&mut self, frame: String) -> bool {
        if self.closed || self.closing {
            return false;
        }
        self.frames.push_back(frame);
        true
    }

    /// Append a frame if there is capacity (subscription tiers).
    pub fn offer(&mut self, frame: String) -> Offer {
        if self.closed || self.closing {
            return Offer::Closed;
        }
        if self.frames.len() >= self.cap {
            return Offer::Full;
        }
        self.frames.push_back(frame);
        Offer::Sent
    }

    /// Copy up to `limit` bytes of queued frames into `scratch` (cleared
    /// first), starting at the resumption point. Returns the byte count
    /// staged; 0 means nothing is queued.
    pub fn stage(&self, scratch: &mut Vec<u8>, limit: usize) -> usize {
        scratch.clear();
        let mut skip = self.front_written;
        for frame in &self.frames {
            if scratch.len() >= limit {
                break;
            }
            let bytes = frame.as_bytes();
            let body = &bytes[skip.min(bytes.len())..];
            skip = 0;
            let room = limit - scratch.len();
            scratch.extend_from_slice(&body[..body.len().min(room)]);
        }
        scratch.len()
    }

    /// Advance past `n` written bytes (as reported by the socket), popping
    /// fully-sent frames and recording the offset into a partially-sent
    /// front frame so the next [`OutBuf::stage`] resumes exactly there.
    pub fn consume(&mut self, mut n: usize) {
        while n > 0 {
            let front_len = match self.frames.front() {
                Some(frame) => frame.len(),
                None => {
                    debug_assert!(false, "consumed more bytes than staged");
                    self.front_written = 0;
                    return;
                }
            };
            let remaining = front_len - self.front_written;
            if n >= remaining {
                self.frames.pop_front();
                self.front_written = 0;
                n -= remaining;
            } else {
                self.front_written += n;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain an OutBuf through writes of `k` bytes at a time and return the
    /// concatenated byte stream the "socket" saw.
    fn drain_in_chunks(out: &mut OutBuf, k: usize) -> Vec<u8> {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        loop {
            let staged = out.stage(&mut scratch, 64 * 1024);
            if staged == 0 {
                break;
            }
            let take = staged.min(k);
            wire.extend_from_slice(&scratch[..take]);
            out.consume(take);
        }
        wire
    }

    #[test]
    fn partial_writes_resume_at_every_split_point() {
        let frames = ["{\"a\":1}\n", "{\"bb\":22}\n", "x\n", "{\"ccc\":333}\n"];
        let expected: Vec<u8> = frames.concat().into_bytes();
        for k in 1..=expected.len() {
            let mut out = OutBuf::new(16);
            for f in frames {
                assert!(out.push_reply(f.to_owned()));
            }
            assert_eq!(drain_in_chunks(&mut out, k), expected, "chunk size {k}");
            assert!(out.is_empty());
        }
    }

    #[test]
    fn offer_respects_capacity_and_close() {
        let mut out = OutBuf::new(2);
        assert_eq!(out.offer("a\n".into()), Offer::Sent);
        assert_eq!(out.offer("b\n".into()), Offer::Sent);
        assert_eq!(out.offer("c\n".into()), Offer::Full);
        // Replies bypass the soft cap.
        assert!(out.push_reply("r\n".into()));
        out.consume(4);
        assert_eq!(out.offer("c\n".into()), Offer::Sent);
        out.close();
        assert_eq!(out.offer("d\n".into()), Offer::Closed);
        assert!(!out.push_reply("r\n".into()));
        assert!(out.is_empty());
    }
}

//! Event-driven connection engine: a readiness loop over non-blocking
//! sockets driving a fixed worker pool.
//!
//! # Thread inventory
//!
//! The daemon's connection handling is a *fixed* set of threads, however
//! many clients are connected:
//!
//! * **one reactor thread** owns every socket: both listeners, the wakeup
//!   channel, and all accepted connections (non-blocking, registered with
//!   a [`Poller`] — epoll on Linux, `poll(2)` elsewhere on Unix). It
//!   accepts, reads bytes into per-connection [`FrameBuf`]s via one shared
//!   scratch buffer, and drains per-connection [`OutBuf`]s into sockets
//!   with partial-write resumption;
//! * **`workers` pool threads** execute decoded requests (supervisor lock,
//!   store I/O) and append replies to the connection's [`OutBuf`];
//! * producers living elsewhere (experiment tailers, status listeners)
//!   append frames the same way.
//!
//! Producers never touch a socket: they enqueue frames on the shared
//! [`ConnHandle`] and mark it dirty, which wakes the reactor to flush and
//! re-arm write interest.
//!
//! # Per-connection state machine
//!
//! ```text
//!             read readiness              worker pool
//! socket ──▶ FrameBuf ──frames──▶ pending queue ──▶ execute ──┐
//!                                                             ▼
//! socket ◀── OutBuf (partial-write offset) ◀── replies / subscription pushes
//! ```
//!
//! Reads pause (interest re-armed without `read`) while a connection's
//! pending + outgoing backlog exceeds the high-water mark, so a client that
//! stops draining replies stalls only itself — the kernel's socket buffer
//! then backpressures the client. Writes arm only while the [`OutBuf`] is
//! non-empty.

mod outbuf;
mod poller;

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asha_core::Error;
use asha_metrics::JsonValue;

pub use outbuf::{Offer, OutBuf};
pub use poller::{Interest, PollEvent, Poller, Waker};

use crate::codec::FrameBuf;
use crate::conn::Conn;
use crate::metrics::ServiceMetrics;

/// Token reserved for the reactor's wakeup channel.
const TOKEN_WAKER: u64 = 0;
/// Tokens below this are listeners / control fds; connections start here.
const TOKEN_FIRST_CONN: u64 = 16;
/// Frames one worker visit processes before requeueing the connection, so
/// a pipelining client cannot monopolize a pool thread.
const WORKER_BATCH: usize = 32;
/// Bytes staged per write syscall (also the read scratch size).
const IO_CHUNK: usize = 64 * 1024;
/// Read syscalls per readiness event before yielding to other connections.
const READ_ROUNDS: usize = 4;
/// Maximum bytes of HTTP request head accepted on the metrics listener.
const HTTP_HEAD_MAX: usize = 8 * 1024;

/// Reactor tuning knobs, derived from `ServeOptions`.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Maximum encoded frame size accepted from a client.
    pub max_frame: usize,
    /// High-water mark (frames) on pending requests + outgoing backlog;
    /// reads pause above it.
    pub high_water: usize,
    /// Poll timeout; bounds how fast the loop notices the shutdown flag.
    pub poll_interval: Duration,
    /// How long the final drain may take before connections are dropped.
    pub grace: Duration,
}

/// Cross-thread doorbell: producers mark a connection dirty and wake the
/// reactor, which flushes its [`OutBuf`] and re-arms interest.
#[derive(Debug)]
pub struct ReactorNotify {
    dirty: Mutex<Vec<u64>>,
    waker: Waker,
}

impl ReactorNotify {
    fn new() -> std::io::Result<Arc<ReactorNotify>> {
        Ok(Arc::new(ReactorNotify {
            dirty: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        }))
    }

    /// Wake the reactor without marking any connection (shutdown nudges).
    pub fn wake(&self) {
        self.waker.wake();
    }

    fn take_dirty(&self, out: &mut Vec<u64>) {
        out.clear();
        std::mem::swap(&mut *self.dirty.lock().unwrap(), out);
    }
}

/// One unit of work queued for the worker pool.
#[derive(Debug)]
pub enum Work {
    /// A decoded protocol frame.
    Frame(JsonValue),
    /// A `GET` on the HTTP metrics listener (the request path). Only the
    /// reactor's HTTP decode path constructs this, so protocol clients
    /// cannot inject HTTP work.
    HttpGet(String),
}

/// A queued request with its tracing envelope: the id assigned at decode
/// time and the enqueue timestamp used to measure queue wait.
#[derive(Debug)]
pub struct PendingReq {
    /// What to execute.
    pub work: Work,
    /// Request id assigned at decode time (for slow-request traces).
    pub req_id: u64,
    /// [`ServiceMetrics::now_nanos`] when the request entered the queue.
    pub enqueued_nanos: u64,
}

#[derive(Debug, Default)]
struct Pending {
    queue: VecDeque<PendingReq>,
    /// A worker visit is scheduled or running for this connection.
    busy: bool,
}

/// Shared per-connection state: everything threads other than the reactor
/// may touch. The socket itself stays reactor-private.
pub struct ConnHandle {
    token: u64,
    peer: String,
    /// Accepted on the HTTP metrics listener rather than a protocol one.
    http: bool,
    out: Mutex<OutBuf>,
    pending: Mutex<Pending>,
    dirty: AtomicBool,
    /// `now_nanos` of the doorbell ring that set `dirty` (0 = unset);
    /// the reactor differences it to measure wake-to-dispatch latency.
    dirty_at_nanos: AtomicU64,
    closed: AtomicBool,
    notify: Arc<ReactorNotify>,
    metrics: Arc<ServiceMetrics>,
    user: OnceLock<Box<dyn Any + Send + Sync>>,
}

impl std::fmt::Debug for ConnHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnHandle")
            .field("token", &self.token)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl ConnHandle {
    fn new(
        token: u64,
        peer: String,
        http: bool,
        cap: usize,
        notify: Arc<ReactorNotify>,
        metrics: Arc<ServiceMetrics>,
    ) -> Arc<ConnHandle> {
        Arc::new(ConnHandle {
            token,
            peer,
            http,
            out: Mutex::new(OutBuf::new(cap)),
            pending: Mutex::new(Pending::default()),
            dirty: AtomicBool::new(false),
            dirty_at_nanos: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            notify,
            metrics,
            user: OnceLock::new(),
        })
    }

    /// The connection's reactor token (stable for its lifetime).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Short peer description for tracing.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Whether this connection arrived on the HTTP metrics listener.
    pub fn is_http(&self) -> bool {
        self.http
    }

    /// Whether the socket is gone; producers should drop their references.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Attach service-specific state (called once at accept time).
    pub fn set_user(&self, value: Box<dyn Any + Send + Sync>) {
        let _ = self.user.set(value);
    }

    /// Typed view of the attached service state.
    pub fn user<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.user.get().and_then(|b| b.downcast_ref::<T>())
    }

    /// Queue a reply frame (never dropped; backpressure is applied by
    /// pausing this connection's reads). Returns false when the socket is
    /// already gone.
    pub fn push_reply(&self, line: String) -> bool {
        let queued = self.out.lock().unwrap().push_reply(line);
        if queued {
            self.mark_dirty();
        }
        queued
    }

    /// Queue a subscription frame if the bounded outgoing queue has room.
    pub fn offer_frame(&self, line: String) -> Offer {
        if self.is_closed() {
            return Offer::Closed;
        }
        let offer = self.out.lock().unwrap().offer(line);
        if offer == Offer::Sent {
            self.mark_dirty();
        }
        offer
    }

    /// Ring the reactor's doorbell for this connection (flush + re-arm).
    pub fn mark_dirty(&self) {
        if !self.dirty.swap(true, Ordering::AcqRel) {
            if self.metrics.enabled() {
                // `.max(1)` keeps a 0 reading distinguishable from "unset".
                self.dirty_at_nanos
                    .store(self.metrics.now_nanos().max(1), Ordering::Relaxed);
            }
            self.notify.dirty.lock().unwrap().push(self.token);
            self.notify.waker.wake();
        }
    }

    /// Pending requests + queued outgoing frames (read-pause signal).
    fn backlog(&self) -> usize {
        self.pending.lock().unwrap().queue.len() + self.out.lock().unwrap().len()
    }

    /// Enqueue a decoded request; returns true when a worker visit should
    /// be scheduled (none is running or queued).
    pub fn enqueue_request(&self, req: PendingReq) -> bool {
        let mut p = self.pending.lock().unwrap();
        p.queue.push_back(req);
        if p.busy {
            false
        } else {
            p.busy = true;
            true
        }
    }

    /// Worker side: take the next request, or mark the visit finished when
    /// the queue is empty.
    pub fn next_request(&self) -> Option<PendingReq> {
        let mut p = self.pending.lock().unwrap();
        match p.queue.pop_front() {
            Some(req) => Some(req),
            None => {
                p.busy = false;
                None
            }
        }
    }

    /// Worker side, at batch end: keep the visit alive if more requests are
    /// queued (returns true → resubmit), otherwise finish it.
    pub fn yield_visit(&self) -> bool {
        let mut p = self.pending.lock().unwrap();
        if p.queue.is_empty() {
            p.busy = false;
            false
        } else {
            true
        }
    }

    fn idle(&self) -> bool {
        let p = self.pending.lock().unwrap();
        p.queue.is_empty() && !p.busy
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

struct PoolShared {
    queue: Mutex<VecDeque<Arc<ConnHandle>>>,
    cv: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<ServiceMetrics>,
}

/// Cloneable handle for scheduling worker visits.
#[derive(Clone)]
pub struct PoolSubmitter {
    shared: Arc<PoolShared>,
}

impl PoolSubmitter {
    /// Schedule a worker visit for this connection.
    pub fn submit(&self, conn: Arc<ConnHandle>) {
        self.shared.metrics.visit_queued();
        self.shared.queue.lock().unwrap().push_back(conn);
        self.shared.cv.notify_one();
    }
}

/// Request executor shared by every worker: runs one queued request for a
/// connection and enqueues its reply.
pub type RunOne = Arc<dyn Fn(&Arc<ConnHandle>, PendingReq) + Send + Sync>;

/// A fixed pool of worker threads executing requests for connections.
///
/// Each queued entry is one *visit*: the worker drains up to
/// [`WORKER_BATCH`] pending requests from that connection, then requeues it
/// if more arrived — strict FIFO per connection, fair across connections.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `n` workers; `run_one` executes a single queued request for a
    /// connection and enqueues its reply.
    pub fn start(n: usize, metrics: Arc<ServiceMetrics>, run_one: RunOne) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let threads = (0..n.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let run_one = Arc::clone(&run_one);
                std::thread::Builder::new()
                    .name(format!("asha-serve-worker-{i}"))
                    .spawn(move || worker_main(shared, run_one))
                    .expect("spawning worker thread")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// A handle for scheduling visits (cheap to clone into closures).
    pub fn submitter(&self) -> PoolSubmitter {
        PoolSubmitter {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Finish queued visits, then stop and join every worker.
    pub fn shutdown_join(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn worker_main(shared: Arc<PoolShared>, run_one: RunOne) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.cv.wait(queue).unwrap();
            }
        };
        let Some(conn) = conn else { return };
        shared.metrics.visit_dequeued();
        for _ in 0..WORKER_BATCH {
            match conn.next_request() {
                Some(req) => run_one(&conn, req),
                None => break,
            }
        }
        if conn.yield_visit() {
            shared.metrics.visit_queued();
            shared.queue.lock().unwrap().push_back(Arc::clone(&conn));
            shared.cv.notify_one();
        }
        // Replies were queued; make sure the reactor flushes and re-arms
        // (this also unpauses reads the backlog had suspended).
        conn.mark_dirty();
    }
}

// ---------------------------------------------------------------------------
// Listeners and the service hook
// ---------------------------------------------------------------------------

/// A bound, non-blocking listening socket registered with the reactor.
#[derive(Debug)]
pub enum Listener {
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    /// A TCP listener.
    Tcp(std::net::TcpListener),
    /// A TCP listener whose connections speak HTTP (`GET /metrics`)
    /// instead of the length-framed protocol.
    Http(std::net::TcpListener),
}

impl Listener {
    fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.as_raw_fd(),
            Listener::Tcp(l) | Listener::Http(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) | Listener::Http(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }

    fn is_http(&self) -> bool {
        matches!(self, Listener::Http(_))
    }
}

/// Service-side hooks the reactor calls. Decode errors and frames arrive on
/// the reactor thread, so implementations must stay cheap there (dispatch
/// to the pool, don't execute).
pub trait ConnHandler: Send + Sync + 'static {
    /// A connection was accepted and registered.
    fn on_open(&self, conn: &Arc<ConnHandle>);
    /// One complete frame was decoded. Typically: enqueue + schedule a
    /// worker visit.
    fn on_frame(&self, conn: &Arc<ConnHandle>, frame: JsonValue);
    /// A decode error (malformed, oversized, torn). Return true to close
    /// the connection after its queue drains.
    fn on_decode_error(&self, conn: &Arc<ConnHandle>, err: &Error) -> bool;
    /// A complete HTTP request head arrived on an [`Listener::Http`]
    /// connection. The connection drains and closes once a response has
    /// been queued (directly or via the worker pool). Default: ignore,
    /// which closes the connection without a response.
    fn on_http(&self, conn: &Arc<ConnHandle>, method: &str, path: &str) {
        let _ = (conn, method, path);
    }
    /// The connection is gone (socket closed and deregistered).
    fn on_close(&self, conn: &Arc<ConnHandle>);
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

/// A running reactor thread.
pub struct ReactorHandle {
    notify: Arc<ReactorNotify>,
    thread: JoinHandle<()>,
}

impl ReactorHandle {
    /// The doorbell shared with every [`ConnHandle`].
    pub fn notify(&self) -> Arc<ReactorNotify> {
        Arc::clone(&self.notify)
    }

    /// Wake the loop (e.g. after flipping the shutdown flag).
    pub fn wake(&self) {
        self.notify.wake();
    }

    /// Join the reactor thread (returns after the final drain).
    pub fn join(self) {
        self.wake();
        let _ = self.thread.join();
    }
}

/// Reactor lifecycle flags shared with the daemon.
#[derive(Debug)]
pub struct ReactorFlags {
    /// Graceful shutdown requested: stop accepting and reading.
    pub shutdown: Arc<AtomicBool>,
    /// Producers (workers, tailers) are done: drain queues and exit.
    pub final_drain: Arc<AtomicBool>,
}

/// Spawn the reactor thread over the given listeners.
pub fn start_reactor(
    cfg: ReactorConfig,
    listeners: Vec<Listener>,
    handler: Arc<dyn ConnHandler>,
    flags: ReactorFlags,
    metrics: Arc<ServiceMetrics>,
) -> std::io::Result<ReactorHandle> {
    let notify = ReactorNotify::new()?;
    let poller = Poller::new()?;
    poller.register(notify.waker.fd(), TOKEN_WAKER, Interest::READ)?;
    for (i, listener) in listeners.iter().enumerate() {
        poller.register(listener.raw_fd(), 1 + i as u64, Interest::READ)?;
    }
    let reactor = Reactor {
        cfg,
        poller,
        notify: Arc::clone(&notify),
        listeners,
        handler,
        flags,
        metrics,
        conns: HashMap::new(),
        next_token: AtomicU64::new(TOKEN_FIRST_CONN),
        read_scratch: vec![0u8; IO_CHUNK],
        write_scratch: Vec::with_capacity(IO_CHUNK),
        dirty_scratch: Vec::new(),
        accepting: true,
    };
    let thread = std::thread::Builder::new()
        .name("asha-serve-reactor".to_owned())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle { notify, thread })
}

/// Per-connection input decoder: the length-framed protocol, or a tiny
/// HTTP request-head accumulator for the metrics listener.
enum Decoder {
    Frames(FrameBuf),
    Http(Vec<u8>),
}

/// Reactor-private per-connection state: the socket and its decoder.
struct IoConn {
    conn: Conn,
    decoder: Decoder,
    handle: Arc<ConnHandle>,
    /// Interest currently armed with the poller.
    armed: Interest,
    /// Read side finished (EOF, fatal decode error, or a dispatched HTTP
    /// request): drain, then close.
    draining: bool,
}

struct Reactor {
    cfg: ReactorConfig,
    poller: Poller,
    notify: Arc<ReactorNotify>,
    listeners: Vec<Listener>,
    handler: Arc<dyn ConnHandler>,
    flags: ReactorFlags,
    metrics: Arc<ServiceMetrics>,
    conns: HashMap<u64, IoConn>,
    next_token: AtomicU64,
    /// One read buffer shared by every connection (bytes immediately move
    /// into the connection's `FrameBuf`).
    read_scratch: Vec<u8>,
    /// One staging buffer for coalesced writes.
    write_scratch: Vec<u8>,
    dirty_scratch: Vec<u64>,
    accepting: bool,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if let Err(e) = self.poller.wait(&mut events, Some(self.cfg.poll_interval)) {
                // A broken poller is unrecoverable; drop every connection.
                eprintln!("asha-serve: reactor poll failed: {e}");
                break;
            }
            // Take the batch out of `self` so handlers can borrow freely.
            let batch = std::mem::take(&mut events);
            let iter_start = (self.metrics.enabled() && !batch.is_empty()).then(Instant::now);
            for ev in &batch {
                match ev.token {
                    TOKEN_WAKER => {
                        self.notify.waker.drain();
                        let now = self.metrics.now_nanos();
                        let mut dirty = std::mem::take(&mut self.dirty_scratch);
                        self.notify.take_dirty(&mut dirty);
                        for &token in &dirty {
                            if let Some(io) = self.conns.get(&token) {
                                io.handle.dirty.store(false, Ordering::Release);
                                let rung = io.handle.dirty_at_nanos.swap(0, Ordering::Relaxed);
                                if rung != 0 && now >= rung {
                                    self.metrics.wake_to_dispatch((now - rung) as f64 / 1e9);
                                }
                            }
                            self.sync_conn(token);
                        }
                        self.dirty_scratch = dirty;
                    }
                    t if (t as usize) <= self.listeners.len() && t >= 1 => {
                        self.accept_burst(t as usize - 1);
                    }
                    token => {
                        if ev.error {
                            self.close_conn(token);
                            continue;
                        }
                        if ev.readable {
                            self.handle_read(token);
                        }
                        if ev.writable {
                            self.sync_conn(token);
                        }
                    }
                }
            }
            events = batch;
            if let Some(t0) = iter_start {
                self.metrics.reactor_iteration(t0.elapsed().as_secs_f64());
            }

            if self.flags.shutdown.load(Ordering::Acquire) {
                if self.accepting {
                    self.stop_accepting();
                }
                let final_drain = self.flags.final_drain.load(Ordering::Acquire);
                if final_drain {
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + self.cfg.grace);
                    // Close every connection whose queue has drained; give
                    // the rest until the grace deadline.
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.sync_conn(token);
                        let done = self
                            .conns
                            .get(&token)
                            .map(|io| io.handle.out.lock().unwrap().is_empty())
                            .unwrap_or(true);
                        if done || Instant::now() >= deadline {
                            self.close_conn(token);
                        }
                    }
                    if self.conns.is_empty() || Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
        // Tear down whatever remains so producers see closed connections.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    fn stop_accepting(&mut self) {
        for listener in &self.listeners {
            let _ = self.poller.deregister(listener.raw_fd());
        }
        self.accepting = false;
    }

    fn accept_burst(&mut self, listener_idx: usize) {
        if !self.accepting {
            return;
        }
        let http = self.listeners[listener_idx].is_http();
        loop {
            match self.listeners[listener_idx].accept() {
                Ok(conn) => self.register_conn(conn, http),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failures (e.g. the peer reset before we
                // got to it) should not kill the listener.
                Err(_) => break,
            }
        }
    }

    fn register_conn(&mut self, conn: Conn, http: bool) {
        if conn.set_nonblocking(true).is_err() {
            return;
        }
        self.metrics.accept();
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let handle = ConnHandle::new(
            token,
            conn.peer(),
            http,
            self.cfg.high_water,
            Arc::clone(&self.notify),
            Arc::clone(&self.metrics),
        );
        if self
            .poller
            .register(conn.raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.handler.on_open(&handle);
        let decoder = if http {
            Decoder::Http(Vec::new())
        } else {
            Decoder::Frames(FrameBuf::new(self.cfg.max_frame))
        };
        self.conns.insert(
            token,
            IoConn {
                conn,
                decoder,
                handle,
                armed: Interest::READ,
                draining: false,
            },
        );
    }

    fn handle_read(&mut self, token: u64) {
        let shutting_down = self.flags.shutdown.load(Ordering::Acquire);
        let Some(io) = self.conns.get_mut(&token) else {
            return;
        };
        if io.draining {
            return;
        }
        let mut fatal = false;
        let mut eof = false;
        for _ in 0..READ_ROUNDS {
            if shutting_down || io.handle.backlog() >= self.cfg.high_water {
                break;
            }
            match io.conn.read(&mut self.read_scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    self.metrics.record_bytes_read(n as u64);
                    match &mut io.decoder {
                        Decoder::Frames(frames) => {
                            frames.feed(&self.read_scratch[..n]);
                            let mut decoded_any = false;
                            while let Some(frame) = frames.next_frame() {
                                decoded_any = true;
                                match frame {
                                    Ok(value) => self.handler.on_frame(&io.handle, value),
                                    Err(e) => {
                                        if self.handler.on_decode_error(&io.handle, &e) {
                                            fatal = true;
                                            break;
                                        }
                                    }
                                }
                            }
                            if fatal {
                                break;
                            }
                            if !decoded_any {
                                if let Err(e) = frames.check_overflow() {
                                    if self.handler.on_decode_error(&io.handle, &e) {
                                        fatal = true;
                                        break;
                                    }
                                }
                            }
                        }
                        Decoder::Http(head) => {
                            head.extend_from_slice(&self.read_scratch[..n]);
                            if head.len() > HTTP_HEAD_MAX {
                                self.close_conn(token);
                                return;
                            }
                            if let Some((method, path)) = parse_http_head(head) {
                                self.metrics.http_request();
                                self.handler.on_http(&io.handle, &method, &path);
                                // One request per connection: stop reading
                                // and close once the response has flushed.
                                // `begin_close` is NOT called — the worker
                                // still needs to queue the response.
                                io.draining = true;
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        if eof || fatal {
            let Some(io) = self.conns.get_mut(&token) else {
                return;
            };
            match &mut io.decoder {
                Decoder::Frames(frames) => {
                    if eof && frames.has_partial() {
                        let torn = Error::protocol("torn frame: stream ended mid-line");
                        let _ = self.handler.on_decode_error(&io.handle, &torn);
                        frames.clear();
                    }
                    io.draining = true;
                    io.handle.out.lock().unwrap().begin_close();
                }
                Decoder::Http(_) => {
                    // EOF before a complete request head: nothing to answer.
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.sync_conn(token);
    }

    /// Flush the connection's outgoing queue, re-arm interest, and apply
    /// drain-then-close. The single place interest decisions are made.
    fn sync_conn(&mut self, token: u64) {
        let Some(io) = self.conns.get_mut(&token) else {
            return;
        };
        let mut dead = false;
        let mut jammed = false;
        {
            let mut out = io.handle.out.lock().unwrap();
            loop {
                let staged = out.stage(&mut self.write_scratch, IO_CHUNK);
                if staged == 0 {
                    break;
                }
                match io.conn.write(&self.write_scratch[..staged]) {
                    Ok(n) => {
                        self.metrics.record_bytes_written(n as u64);
                        out.consume(n);
                        if n < staged {
                            jammed = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        jammed = true;
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        let drained = io.handle.out.lock().unwrap().is_empty();
        if io.draining && drained && io.handle.idle() {
            self.close_conn(token);
            return;
        }
        let shutting_down = self.flags.shutdown.load(Ordering::Acquire);
        let want = Interest {
            read: !io.draining && !shutting_down && io.handle.backlog() < self.cfg.high_water,
            write: jammed || !drained,
        };
        if io.armed.read && !want.read && !io.draining && !shutting_down {
            // Reads paused purely by the backlog high-water mark.
            self.metrics.read_pause();
        }
        if want != io.armed && self.poller.rearm(io.conn.raw_fd(), token, want).is_ok() {
            io.armed = want;
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(io) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.deregister(io.conn.raw_fd());
        io.handle.out.lock().unwrap().close();
        io.handle.closed.store(true, Ordering::Release);
        let _ = io.conn.shutdown();
        self.handler.on_close(&io.handle);
    }
}

/// `(method, path)` from a complete HTTP request head, or `None` until the
/// blank line terminating the head has arrived.
fn parse_http_head(buf: &[u8]) -> Option<(String, String)> {
    let end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))?;
    let head = &buf[..end];
    let line = head.split(|&b| b == b'\n').next().unwrap_or(head);
    let line = std::str::from_utf8(line).ok()?.trim_end_matches('\r');
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::parse_http_head;

    #[test]
    fn http_head_parses_at_blank_line() {
        assert_eq!(parse_http_head(b"GET /metrics HTTP/1."), None);
        assert_eq!(
            parse_http_head(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n"),
            Some(("GET".to_owned(), "/metrics".to_owned()))
        );
        assert_eq!(
            parse_http_head(b"GET /metrics\n\n"),
            Some(("GET".to_owned(), "/metrics".to_owned()))
        );
        assert_eq!(parse_http_head(b"\r\n\r\n"), None);
    }
}

//! Per-experiment WAL tailers: one reader thread per experiment fanning
//! frames out to every subscriber of that experiment.
//!
//! The previous design spawned one tailer thread *per subscription*, so N
//! subscribers of one experiment meant N threads each reading the same WAL
//! from disk. Here a [`TailerRegistry`] keys tailers by WAL path: the
//! first subscription spawns the experiment's tailer, later ones attach to
//! it, and the thread exits when its last subscriber closes.
//!
//! One thread reads each WAL record **once** into a shared backlog; each
//! subscriber owns a cursor into it. The [`WalTail`] renders every record
//! as its `jsonl-v1` line whatever the on-disk dialect, so a `binary-v2`
//! WAL fans out to subscribers as exactly the same JSON event frames as a
//! `jsonl-v1` one. The record body is serialized once —
//! per-subscriber frames only wrap it in the cheap push envelope
//! (`{"v":1,"sub":K,"push":"event","data":<body>}`), never re-rendering
//! the payload.
//!
//! # Subscriber phases
//!
//! ```text
//! CatchUp ──(private tail reaches the shared cursor)──▶ Live
//!    ▲                                                   │
//!    └──(falls > backlog cap behind: demoted)────────────┘
//! Live ──(experiment finished / daemon draining)──▶ EndOwed ──▶ Done
//! ```
//!
//! A new subscriber starts in **CatchUp**: a private [`WalTail`] replays
//! the WAL from the start, bounded by the shared tailer's offset so it can
//! never overshoot, then the subscriber is promoted to **Live** at the
//! backlog's write edge. Live subscribers consume the shared backlog; one
//! that falls further behind than the backlog cap is demoted back to
//! CatchUp (skipping the records it already delivered) so the backlog
//! stays bounded no matter how slow a client reads.
//!
//! # Backpressure tiers (unchanged semantics)
//!
//! * **WAL event frames** are file-backed and never dropped: a full
//!   connection queue makes the tailer hold the subscriber's cursor and
//!   retry — a gap-free stream at whatever pace the client reads.
//! * **Status pushes** (delivered by supervisor threads, not here) are
//!   lossy with lag accounting; an owed `lag` notice is flushed before the
//!   next frame that fits.
//! * **Stream-control pushes** (`rewind`, `end`) must arrive: they are
//!   owed per-subscriber and retried every tick, without ever blocking the
//!   tailer on one slow client.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use asha_metrics::JsonValue;
use asha_store::WalTail;

use crate::codec::encode_frame;
use crate::metrics::{ServiceMetrics, TailerMetrics};
use crate::proto::Push;
use crate::reactor::{ConnHandle, Offer};

/// Shared backlog records kept per tailer before slow Live subscribers are
/// demoted to CatchUp.
const BACKLOG_CAP: usize = 4096;
/// Sleep while a subscriber's connection queue is full.
const JAM_PAUSE: Duration = Duration::from_millis(2);

/// One live subscription, shared between the experiment's tailer, the
/// status-watcher registry, and the owning connection.
pub(crate) struct SubState {
    pub(crate) sub: u64,
    /// Telemetry records with `seq < from_seq` are filtered out; store
    /// markers without a `seq` always flow.
    pub(crate) from_seq: u64,
    conn: Arc<ConnHandle>,
    /// Push frames dropped since the last delivered one; reported to the
    /// subscriber as a `lag` push as soon as a frame fits again.
    dropped: AtomicU64,
    /// Set by unsubscribe, connection teardown, or end-of-stream.
    closed: AtomicBool,
}

impl SubState {
    pub(crate) fn new(sub: u64, from_seq: u64, conn: Arc<ConnHandle>) -> Arc<SubState> {
        Arc::new(SubState {
            sub,
            from_seq,
            conn,
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        })
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Close exactly once; the single place `subscriptions_open` falls.
    pub(crate) fn mark_closed(&self, metrics: &ServiceMetrics) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            metrics.sub_closed();
        }
    }

    fn try_line(&self, metrics: &ServiceMetrics, line: String) -> Offer {
        match self.conn.offer_frame(line) {
            Offer::Sent => {
                metrics.event_sent();
                Offer::Sent
            }
            Offer::Full => Offer::Full,
            Offer::Closed => {
                self.mark_closed(metrics);
                Offer::Closed
            }
        }
    }

    /// Flush any owed `lag` notice; it must precede the next delivered
    /// frame so the gap's position in the stream is unambiguous.
    fn flush_owed(&self, metrics: &ServiceMetrics) -> Offer {
        let owed = self.dropped.load(Ordering::Acquire);
        if owed == 0 {
            return Offer::Sent;
        }
        let lag = Push::Lag {
            sub: self.sub,
            dropped: owed,
        };
        let offer = self.try_line(metrics, encode_frame(&lag.to_frame()));
        if offer == Offer::Sent {
            self.dropped.fetch_sub(owed, Ordering::AcqRel);
        }
        offer
    }

    /// Offer an already-encoded frame without blocking or dropping: on a
    /// full queue the caller retains its cursor and retries later.
    fn offer_line(&self, metrics: &ServiceMetrics, line: String) -> Offer {
        if self.is_closed() {
            return Offer::Closed;
        }
        match self.flush_owed(metrics) {
            Offer::Sent => {}
            other => return other,
        }
        self.try_line(metrics, line)
    }

    fn offer_push(&self, metrics: &ServiceMetrics, push: &Push) -> Offer {
        self.offer_line(metrics, encode_frame(&push.to_frame()))
    }

    /// Deliver a push that may be dropped under backpressure, with lag
    /// accounting. Status pushes use this: they fire on supervisor /
    /// worker threads, which must never wait on a slow subscriber.
    pub(crate) fn push_lossy(&self, metrics: &ServiceMetrics, push: &Push) {
        match self.offer_push(metrics, push) {
            Offer::Sent | Offer::Closed => {}
            Offer::Full => {
                self.dropped.fetch_add(1, Ordering::AcqRel);
                metrics.event_lagged();
            }
        }
    }
}

/// Wrap a raw (already-validated) WAL line in the event-push envelope.
/// Field order matches [`Push::to_frame`] so the wire bytes are identical
/// to the re-rendering path — but the body is serialized exactly once per
/// record, shared across every subscriber.
fn event_line(sub: u64, body: &str) -> String {
    format!("{{\"v\":1,\"sub\":{sub},\"push\":\"event\",\"data\":{body}}}\n")
}

/// Tailer environment, shared by every tailer thread.
pub(crate) struct TailerCtx {
    pub(crate) metrics: Arc<ServiceMetrics>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) poll_interval: Duration,
    /// How long shutdown drain may take before subscribers are dropped.
    pub(crate) grace: Duration,
}

/// One parsed WAL record in the shared backlog.
struct Rec {
    /// Telemetry sequence number, when the record carries one.
    seq: Option<u64>,
    /// The `experiment_finished` marker ends every subscription.
    finished: bool,
    /// The raw line — the shared serialized body.
    body: String,
}

fn parse_rec(line: String) -> Option<Rec> {
    let value = JsonValue::parse(&line).ok()?;
    let seq = value.get("seq").and_then(|s| s.as_u64());
    let finished = value.get("ev").and_then(|e| e.as_str()) == Some("experiment_finished");
    Some(Rec {
        seq,
        finished,
        body: line,
    })
}

/// Where one subscriber is in the stream.
enum Phase {
    /// Replaying the WAL through a private tail, bounded by the shared
    /// tailer's offset. `skip` counts already-delivered records (used when
    /// a Live subscriber is demoted); `pending` holds records read but not
    /// yet accepted by the connection queue.
    CatchUp {
        tail: WalTail,
        skip: u64,
        pending: VecDeque<Rec>,
    },
    /// Consuming the shared backlog; `next` is an absolute record index
    /// (records since the last rewind).
    Live { next: u64 },
    /// Everything delivered; the `end` push is owed.
    EndOwed,
    /// Closed; the tailer forgets the subscriber.
    Done,
}

struct SubEntry {
    state: Arc<SubState>,
    phase: Phase,
    /// Stream-control pushes (`rewind`) owed before any further data.
    owed: VecDeque<Push>,
}

impl SubEntry {
    fn new(state: Arc<SubState>, wal_path: &PathBuf) -> SubEntry {
        SubEntry {
            state,
            phase: Phase::CatchUp {
                tail: WalTail::new(wal_path),
                skip: 0,
                pending: VecDeque::new(),
            },
            owed: VecDeque::new(),
        }
    }
}

/// Subscribers queued for a tailer to pick up on its next tick.
type Mailbox = Arc<Mutex<Vec<Arc<SubState>>>>;

/// Experiment tailers keyed by WAL path: first subscriber spawns, later
/// ones attach, last one out ends the thread.
pub(crate) struct TailerRegistry {
    ctx: Arc<TailerCtx>,
    /// WAL path → mailbox of subscribers waiting to attach.
    slots: Mutex<HashMap<PathBuf, Mailbox>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TailerRegistry {
    pub(crate) fn new(ctx: TailerCtx) -> Arc<TailerRegistry> {
        Arc::new(TailerRegistry {
            ctx: Arc::new(ctx),
            slots: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
        })
    }

    /// Attach a subscription to the experiment's tailer, spawning it if
    /// this is the first subscriber.
    pub(crate) fn subscribe(
        self: &Arc<TailerRegistry>,
        wal_path: PathBuf,
        experiment: String,
        state: Arc<SubState>,
    ) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(adds) = slots.get(&wal_path) {
            adds.lock().unwrap().push(state);
            return;
        }
        let adds = Arc::new(Mutex::new(vec![state]));
        slots.insert(wal_path.clone(), Arc::clone(&adds));
        let registry = Arc::clone(self);
        let ctx = Arc::clone(&self.ctx);
        let handle = std::thread::Builder::new()
            .name("asha-serve-tailer".to_owned())
            .spawn(move || tailer_main(wal_path, experiment, adds, registry, ctx))
            .expect("spawning tailer thread");
        self.threads.lock().unwrap().push(handle);
    }

    /// Join every tailer thread (call after the shutdown flag is set).
    pub(crate) fn join_all(&self) {
        let threads = std::mem::take(&mut *self.threads.lock().unwrap());
        for t in threads {
            let _ = t.join();
        }
    }
}

/// Body of one experiment's tailer thread.
fn tailer_main(
    wal_path: PathBuf,
    experiment: String,
    adds: Arc<Mutex<Vec<Arc<SubState>>>>,
    registry: Arc<TailerRegistry>,
    ctx: Arc<TailerCtx>,
) {
    // Counters outlive this thread (a later tailer for the same experiment
    // keeps adding to them); gauges are zeroed on every exit path.
    let tm = ctx.metrics.tailer(&experiment);
    let mut tail = WalTail::new(&wal_path);
    // Shared backlog of records; `base` is the absolute index of the front.
    let mut backlog: VecDeque<Rec> = VecDeque::new();
    let mut base: u64 = 0;
    let mut finished = false;
    let mut subs: Vec<SubEntry> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Attach newly-arrived subscribers.
        {
            let mut mailbox = adds.lock().unwrap();
            for state in mailbox.drain(..) {
                subs.push(SubEntry::new(state, &wal_path));
            }
        }

        let shutting_down = ctx.shutdown.load(Ordering::Acquire);
        let mut read_any = false;

        // Read new WAL records once, into the shared backlog. Polling
        // continues even after the finished marker: a restarted
        // experiment rewrites the WAL, and only the tail's rewind
        // detection can tell still-attached subscribers about it.
        if !shutting_down {
            if let Ok(chunk) = tail.poll() {
                if chunk.rewound {
                    // Crash recovery rewrote the WAL shorter: restart the
                    // stream; everything derived is stale.
                    backlog.clear();
                    base = 0;
                    finished = false;
                    for entry in &mut subs {
                        if !matches!(entry.phase, Phase::Done) {
                            entry.owed.push_back(Push::Rewind {
                                sub: entry.state.sub,
                            });
                            entry.phase = Phase::CatchUp {
                                tail: WalTail::new(&wal_path),
                                skip: 0,
                                pending: VecDeque::new(),
                            };
                        }
                    }
                }
                for line in chunk.lines {
                    read_any = true;
                    if let Some(rec) = parse_rec(line) {
                        finished |= rec.finished;
                        backlog.push_back(rec);
                    }
                }
            }
        }
        let end_abs = base + backlog.len() as u64;

        // Advance every subscriber's state machine without blocking.
        let mut progressed = false;
        let mut jammed = false;
        for entry in &mut subs {
            let (p, j) = advance(
                entry,
                &backlog,
                base,
                end_abs,
                finished,
                shutting_down,
                tail.offset(),
                &ctx.metrics,
                &tm,
            );
            progressed |= p;
            jammed |= j;
        }
        subs.retain(|e| !matches!(e.phase, Phase::Done));
        tm.subscribers.set(subs.len() as i64);

        // Trim the backlog to the slowest Live cursor; demote subscribers
        // that fall further behind than the cap so it stays bounded.
        let min_live = subs
            .iter()
            .filter_map(|e| match e.phase {
                Phase::Live { next } => Some(next),
                _ => None,
            })
            .min()
            .unwrap_or(end_abs);
        // Backlog records the slowest Live subscriber has yet to consume.
        tm.lag_records.set((end_abs - min_live.min(end_abs)) as i64);
        if backlog.len() > BACKLOG_CAP {
            let floor = end_abs - BACKLOG_CAP as u64;
            for entry in &mut subs {
                if let Phase::Live { next } = entry.phase {
                    if next < floor {
                        tm.window_evictions.inc();
                        entry.phase = Phase::CatchUp {
                            tail: WalTail::new(&wal_path),
                            skip: next,
                            pending: VecDeque::new(),
                        };
                    }
                }
            }
        }
        let new_base = min_live.min(end_abs).max(base);
        let over_cap = (backlog.len() as u64).saturating_sub(BACKLOG_CAP as u64);
        let new_base = new_base.max(base + over_cap).min(end_abs);
        while base < new_base {
            backlog.pop_front();
            base += 1;
        }

        if subs.is_empty() {
            // Last subscriber left: remove our slot unless someone attached
            // in the meantime (checked under the registry lock so a racing
            // subscribe either lands in our mailbox or spawns a new tailer
            // after removal).
            let mut slots = registry.slots.lock().unwrap();
            if adds.lock().unwrap().is_empty() {
                slots.remove(&wal_path);
                tm.subscribers.set(0);
                tm.lag_records.set(0);
                return;
            }
            continue;
        }

        if shutting_down {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + ctx.grace);
            if Instant::now() >= deadline {
                for entry in &subs {
                    entry.state.mark_closed(&ctx.metrics);
                }
                let mut slots = registry.slots.lock().unwrap();
                slots.remove(&wal_path);
                tm.subscribers.set(0);
                tm.lag_records.set(0);
                return;
            }
        }

        if jammed {
            std::thread::sleep(JAM_PAUSE);
        } else if !read_any && !progressed {
            std::thread::sleep(ctx.poll_interval);
        }
    }
}

/// Advance one subscriber; returns (made progress, hit a full queue).
#[allow(clippy::too_many_arguments)]
fn advance(
    entry: &mut SubEntry,
    backlog: &VecDeque<Rec>,
    base: u64,
    end_abs: u64,
    finished: bool,
    shutting_down: bool,
    main_offset: u64,
    metrics: &Arc<ServiceMetrics>,
    tm: &TailerMetrics,
) -> (bool, bool) {
    let stats = &**metrics;
    let state = Arc::clone(&entry.state);
    if state.is_closed() {
        entry.phase = Phase::Done;
        return (false, false);
    }
    let mut progressed = false;

    // Owed stream-control pushes go out before any further data.
    while let Some(push) = entry.owed.front() {
        match state.offer_push(stats, push) {
            Offer::Sent => {
                entry.owed.pop_front();
                progressed = true;
            }
            Offer::Full => return (progressed, true),
            Offer::Closed => {
                entry.phase = Phase::Done;
                return (progressed, false);
            }
        }
    }

    loop {
        match &mut entry.phase {
            Phase::CatchUp {
                tail,
                skip,
                pending,
            } => {
                // Deliver what the last poll read before reading more.
                while let Some(rec) = pending.front() {
                    if let Some(seq) = rec.seq {
                        if seq < state.from_seq {
                            pending.pop_front();
                            continue;
                        }
                    }
                    match state.offer_line(stats, event_line(state.sub, &rec.body)) {
                        Offer::Sent => {
                            tm.fanout_frames.inc();
                            pending.pop_front();
                            progressed = true;
                        }
                        Offer::Full => return (progressed, true),
                        Offer::Closed => {
                            entry.phase = Phase::Done;
                            return (progressed, false);
                        }
                    }
                }
                if tail.offset() >= main_offset {
                    // Caught up to the shared cursor: promote to Live at
                    // the backlog's write edge.
                    entry.phase = Phase::Live { next: end_abs };
                    progressed = true;
                    continue;
                }
                // Read more of the replay, never past the shared cursor so
                // promotion can't skip records.
                match tail.poll_to(main_offset) {
                    Ok(chunk) => {
                        if chunk.rewound {
                            // The file shrank under the private tail; the
                            // shared tailer will rewind everyone on its next
                            // poll — restart this replay from the top now.
                            entry.owed.push_back(Push::Rewind { sub: state.sub });
                            *skip = 0;
                            pending.clear();
                        }
                        let was_empty = chunk.lines.is_empty();
                        for line in chunk.lines {
                            if let Some(rec) = parse_rec(line) {
                                if *skip > 0 {
                                    *skip -= 1;
                                    continue;
                                }
                                pending.push_back(rec);
                            }
                        }
                        if chunk.rewound {
                            // The chunk's lines are the new file's start;
                            // they are stashed above, but the owed rewind
                            // push (checked at the top of the next advance)
                            // must reach the subscriber before them.
                            return (true, false);
                        }
                        if was_empty {
                            return (progressed, false);
                        }
                    }
                    Err(_) => return (progressed, false),
                }
            }
            Phase::Live { next } => {
                while *next < end_abs {
                    let rec = &backlog[(*next - base) as usize];
                    if let Some(seq) = rec.seq {
                        if seq < state.from_seq {
                            *next += 1;
                            continue;
                        }
                    }
                    match state.offer_line(stats, event_line(state.sub, &rec.body)) {
                        Offer::Sent => {
                            tm.fanout_frames.inc();
                            *next += 1;
                            progressed = true;
                        }
                        Offer::Full => return (progressed, true),
                        Offer::Closed => {
                            entry.phase = Phase::Done;
                            return (progressed, false);
                        }
                    }
                }
                if finished || shutting_down {
                    entry.phase = Phase::EndOwed;
                    progressed = true;
                    continue;
                }
                return (progressed, false);
            }
            Phase::EndOwed => {
                let end = Push::End { sub: state.sub };
                return match state.offer_push(stats, &end) {
                    Offer::Sent => {
                        state.mark_closed(stats);
                        entry.phase = Phase::Done;
                        (true, false)
                    }
                    Offer::Full => (progressed, true),
                    Offer::Closed => {
                        entry.phase = Phase::Done;
                        (progressed, false)
                    }
                };
            }
            Phase::Done => return (progressed, false),
        }
    }
}

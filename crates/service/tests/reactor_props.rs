//! Property tests of the reactor's per-connection state machines: the
//! sans-io frame decoder ([`FrameBuf`]) and the outgoing buffer
//! ([`OutBuf`]) must round-trip frame streams losslessly under *any*
//! byte-level segmentation — reads split at every boundary across
//! readiness events, writes consumed in arbitrary partial chunks.

#![cfg(unix)]

use asha_metrics::JsonValue;
use asha_service::{encode_frame, FrameBuf, Offer, OutBuf, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

/// A short lowercase identifier, built from digit draws (the vendored
/// proptest has no string strategies).
fn arb_key() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..8)
        .prop_map(|digits| digits.iter().map(|d| (b'a' + d) as char).collect())
}

/// A printable ASCII string, including JSON-hostile characters like
/// quotes and backslashes (the encoder must escape them).
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..95, 0..16)
        .prop_map(|chars| chars.iter().map(|c| (b' ' + c) as char).collect())
}

/// An arbitrary flat JSON object, rendered the way the protocol would.
fn arb_frame() -> impl Strategy<Value = JsonValue> {
    prop::collection::vec(
        (
            arb_key(),
            prop_oneof![
                (0u64..1_000_000).prop_map(JsonValue::Int).boxed(),
                any::<bool>().prop_map(JsonValue::Bool).boxed(),
                arb_text().prop_map(JsonValue::Str).boxed(),
            ],
        ),
        0..6,
    )
    .prop_map(|fields| {
        let mut seen = std::collections::HashSet::new();
        JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect(),
        )
    })
}

/// Feed `wire` into a fresh [`FrameBuf`] following `schedule` chunk sizes
/// and return every decoded frame (compact-rendered).
fn decode_with_schedule(wire: &[u8], schedule: &[usize]) -> Vec<String> {
    let mut fb = FrameBuf::new(DEFAULT_MAX_FRAME);
    let mut decoded = Vec::new();
    let mut pos = 0;
    let mut turn = 0;
    while pos < wire.len() {
        let step = schedule[turn % schedule.len()].max(1).min(wire.len() - pos);
        turn += 1;
        fb.feed(&wire[pos..pos + step]);
        pos += step;
        while let Some(frame) = fb.next_frame() {
            decoded.push(frame.unwrap().render_compact());
        }
    }
    assert!(!fb.has_partial(), "complete stream left a partial line");
    decoded
}

/// Drain an [`OutBuf`] through "socket writes" of sizes from `schedule`
/// and return the byte stream the socket saw.
fn drain_with_schedule(out: &mut OutBuf, schedule: &[usize]) -> Vec<u8> {
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    let mut turn = 0;
    loop {
        let staged = out.stage(&mut scratch, 64 * 1024);
        if staged == 0 {
            break;
        }
        // The kernel may accept any prefix of what was staged.
        let take = schedule[turn % schedule.len()].max(1).min(staged);
        turn += 1;
        wire.extend_from_slice(&scratch[..take]);
        out.consume(take);
    }
    wire
}

/// Deterministic exhaustive check: a two-frame wire split at *every* byte
/// boundary decodes identically — the cheapest way to pin the boundary
/// cases (split inside the JSON, on the quote, on the newline, at 0, at
/// the end) without trusting the generator to find them.
#[test]
fn every_split_point_decodes_identically() {
    let frames = [
        r#"{"op":"ping","id":1}"#,
        r#"{"data":"a\nb\\c\"d","seq":42}"#,
    ];
    let wire: Vec<u8> = frames
        .iter()
        .flat_map(|f| {
            let mut line = f.as_bytes().to_vec();
            line.push(b'\n');
            line
        })
        .collect();
    let expected: Vec<String> = frames
        .iter()
        .map(|f| JsonValue::parse(f).unwrap().render_compact())
        .collect();
    for split in 0..=wire.len() {
        let mut fb = FrameBuf::new(DEFAULT_MAX_FRAME);
        let mut decoded = Vec::new();
        for part in [&wire[..split], &wire[split..]] {
            fb.feed(part);
            while let Some(frame) = fb.next_frame() {
                decoded.push(frame.unwrap().render_compact());
            }
        }
        assert_eq!(decoded, expected, "split at byte {split}");
    }
}

/// Deterministic exhaustive check of the write path: every partial-write
/// size from 1 byte up resumes mid-frame without duplicating or dropping.
#[test]
fn every_partial_write_size_preserves_the_stream() {
    let frames: Vec<String> = (0..5)
        .map(|i| format!("{{\"seq\":{i},\"pad\":\"{}\"}}\n", "x".repeat(i * 7)))
        .collect();
    let expected: Vec<u8> = frames.concat().into_bytes();
    for k in 1..=expected.len() {
        let mut out = OutBuf::new(64);
        for f in &frames {
            assert!(out.push_reply(f.clone()));
        }
        assert_eq!(
            drain_with_schedule(&mut out, &[k]),
            expected,
            "write size {k}"
        );
        assert!(out.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full loop: frames → OutBuf (arbitrary partial writes) → wire →
    /// FrameBuf (arbitrary reads) → the same frames, in order.
    #[test]
    fn outbuf_to_framebuf_round_trips(
        frames in prop::collection::vec(arb_frame(), 0..12),
        write_schedule in prop::collection::vec(1usize..40, 1..8),
        read_schedule in prop::collection::vec(1usize..40, 1..8),
    ) {
        let mut out = OutBuf::new(frames.len().max(1));
        for frame in &frames {
            prop_assert_eq!(out.offer(encode_frame(frame)), Offer::Sent);
        }
        let wire = drain_with_schedule(&mut out, &write_schedule);
        let decoded = decode_with_schedule(&wire, &read_schedule);
        let expected: Vec<String> =
            frames.iter().map(|f| f.render_compact()).collect();
        prop_assert_eq!(decoded, expected);
    }

    /// Interleaving appends with partial drains never corrupts framing:
    /// whatever the interleave, the socket sees the exact concatenation of
    /// accepted frames in append order.
    #[test]
    fn interleaved_appends_and_drains_preserve_order(
        frames in prop::collection::vec(arb_frame(), 1..16),
        drain_between in prop::collection::vec(0usize..64, 1..16),
    ) {
        let mut out = OutBuf::new(frames.len());
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        let mut expected = Vec::new();
        for (i, frame) in frames.iter().enumerate() {
            let line = encode_frame(frame);
            expected.extend_from_slice(line.as_bytes());
            prop_assert_eq!(out.offer(line), Offer::Sent);
            // Drain a bounded number of bytes before the next append.
            let mut budget = drain_between[i % drain_between.len()];
            while budget > 0 {
                let staged = out.stage(&mut scratch, budget);
                if staged == 0 {
                    break;
                }
                wire.extend_from_slice(&scratch[..staged]);
                out.consume(staged);
                budget -= staged;
            }
        }
        wire.extend_from_slice(&drain_with_schedule(&mut out, &[17]));
        prop_assert_eq!(wire, expected);
    }
}

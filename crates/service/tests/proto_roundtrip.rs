//! Wire-protocol round-trip tests: every request, reply, and push variant
//! must survive encode → render → parse → decode unchanged, and version /
//! error handling must follow the documented rules.

use asha_core::{Asha, AshaConfig, Error, ErrorKind, Scheduler};
use asha_metrics::JsonValue;
use asha_service::proto::{run_options_from_json, run_options_to_json};
use asha_service::{encode_frame, DaemonStats, Push, Reply, Request, WireStatus, PROTOCOL_VERSION};
use asha_store::{
    BenchSpec, Durability, ExperimentMeta, ExperimentStatus, RunOptions, SchedulerState,
    StoreFormat,
};
use asha_surrogate::BenchmarkModel;

fn sample_meta() -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: "proto-roundtrip".to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed: 7,
        sim: asha_sim::SimConfig::new(4, 60.0),
        bench: spec,
    }
}

/// The sampling-plane variant of [`sample_meta`]: a delayed-promotion
/// D-ASHA scheduler with a TPE sampler attached, as `asha-ctl` builds for
/// `create --scheduler dasha --sampler tpe`.
fn dasha_tpe_meta() -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let dasha = asha_baselines::dasha_tpe(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: "proto-roundtrip-dasha-tpe".to_owned(),
        space,
        initial: SchedulerState::DAsha(dasha.export_state()),
        sampler: Some("tpe".to_owned()),
        seed: 7,
        sim: asha_sim::SimConfig::new(4, 60.0),
        bench: spec,
    }
}

/// Encode on the wire and parse back, as the peer would see it.
fn wire_trip(frame: &JsonValue) -> JsonValue {
    let line = encode_frame(frame);
    assert!(line.ends_with('\n'));
    JsonValue::parse(line.trim_end()).expect("encoded frame must parse")
}

fn all_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Create {
            meta: sample_meta(),
            opts: RunOptions {
                sync: Durability::EveryN(16),
                snapshot_jobs: 50,
                format: StoreFormat::JsonlV1,
                delta_chain: 4,
            },
        },
        Request::Start {
            name: "exp-a".to_owned(),
            opts: RunOptions::default(),
        },
        Request::Pause {
            name: "exp-a".to_owned(),
        },
        Request::Resume {
            name: "exp-a".to_owned(),
        },
        Request::Abort {
            name: "exp-a".to_owned(),
        },
        Request::Status {
            name: "exp-a".to_owned(),
        },
        Request::List,
        Request::Stats,
        Request::Metrics,
        Request::Subscribe {
            name: "exp-a".to_owned(),
            from_seq: 42,
        },
        Request::Unsubscribe { sub: 9 },
        Request::Shutdown,
    ]
}

#[test]
fn every_request_round_trips() {
    // `Request` has no `PartialEq` (ExperimentMeta is not comparable), so
    // equality is judged on the canonical encoding: decode(encode(r)) must
    // re-encode to the identical frame.
    for (i, request) in all_requests().into_iter().enumerate() {
        let id = 100 + i as u64;
        let frame = request.to_frame(id);
        let parsed = wire_trip(&frame);
        let (got_id, decoded) =
            Request::from_frame(&parsed).unwrap_or_else(|e| panic!("{}: {e}", request.op()));
        assert_eq!(got_id, id, "{}", request.op());
        assert_eq!(decoded.op(), request.op());
        assert_eq!(
            decoded.to_frame(id).render_compact(),
            frame.render_compact(),
            "{} re-encoding differs",
            request.op()
        );
    }
}

#[test]
fn dasha_tpe_create_round_trips_scheduler_and_sampler() {
    let meta = dasha_tpe_meta();
    let request = Request::Create {
        meta,
        opts: RunOptions::default(),
    };
    let frame = request.to_frame(1);
    let parsed = wire_trip(&frame);
    let (_, decoded) = Request::from_frame(&parsed).unwrap();
    assert_eq!(
        decoded.to_frame(1).render_compact(),
        frame.render_compact(),
        "re-encoding differs"
    );
    let Request::Create { meta: back, .. } = decoded else {
        panic!("decoded to a different op");
    };
    assert_eq!(back.sampler.as_deref(), Some("tpe"));
    assert!(
        matches!(back.initial, SchedulerState::DAsha(_)),
        "scheduler kind lost on the wire"
    );
    // The decoded meta must rebuild into the same named scheduler the
    // daemon would run: delayed promotion with the TPE sampler attached.
    let rebuilt = asha_store::StoredScheduler::from_state_with_sampler(
        back.space.clone(),
        back.initial,
        back.sampler.as_deref().unwrap(),
    )
    .unwrap();
    assert_eq!(rebuilt.kind(), "dasha");
    assert_eq!(rebuilt.name(), "D-ASHA+tpe");
}

#[test]
fn every_reply_round_trips() {
    let status = WireStatus {
        name: "exp-a".to_owned(),
        status: ExperimentStatus::Running,
    };
    let stats = DaemonStats {
        connections_total: 10,
        connections_open: 3,
        requests: 99,
        subscriptions_open: 2,
        events_sent: 12345,
        events_lagged: 6,
    };
    let cases: Vec<(Reply, &str)> = vec![
        (Reply::Ack, "start"),
        (Reply::Pong, "ping"),
        (Reply::Status(status.clone()), "status"),
        (
            Reply::List(vec![
                status.clone(),
                WireStatus {
                    name: "exp-b".to_owned(),
                    status: ExperimentStatus::Interrupted,
                },
            ]),
            "list",
        ),
        (Reply::List(Vec::new()), "list"),
        (Reply::Stats(stats), "stats"),
        (
            // The metrics reply is raw JSON: old clients pass newer
            // snapshots through untouched, so the payload here is
            // deliberately not the current schema.
            Reply::Metrics(JsonValue::obj([
                (
                    "schema",
                    JsonValue::Str("asha-daemon-metrics-v1".to_owned()),
                ),
                ("requests", JsonValue::obj([("total", JsonValue::Int(17))])),
                ("future_field", JsonValue::Bool(true)),
            ])),
            "metrics",
        ),
        (Reply::Subscribed { sub: 4 }, "subscribe"),
    ];
    for (i, (reply, op)) in cases.into_iter().enumerate() {
        let id = 7 + i as u64;
        let parsed = wire_trip(&reply.to_frame(id));
        let (got_id, decoded) = Reply::from_frame(&parsed, op).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(decoded.unwrap(), reply, "op {op}");
    }
}

#[test]
fn every_status_value_round_trips_in_a_reply() {
    for status in [
        ExperimentStatus::Created,
        ExperimentStatus::Running,
        ExperimentStatus::Paused,
        ExperimentStatus::Finished,
        ExperimentStatus::Aborted,
        ExperimentStatus::Interrupted,
    ] {
        let reply = Reply::Status(WireStatus {
            name: "x".to_owned(),
            status,
        });
        let parsed = wire_trip(&reply.to_frame(1));
        let (_, decoded) = Reply::from_frame(&parsed, "status").unwrap();
        assert_eq!(decoded.unwrap(), reply);
    }
}

#[test]
fn error_frames_carry_kind_and_message() {
    for err in [
        Error::protocol("bad frame"),
        Error::missing("no such experiment"),
        Error::config("workers must be positive"),
        Error::codec("mangled snapshot"),
    ] {
        let parsed = wire_trip(&Reply::error_frame(3, &err));
        let (id, decoded) = Reply::from_frame(&parsed, "start").unwrap();
        assert_eq!(id, 3);
        let back = decoded.unwrap_err();
        assert_eq!(back.kind(), err.kind(), "{err}");
        assert!(
            back.to_string().contains(&err.to_string()),
            "{back} should carry {err}"
        );
    }
}

#[test]
fn every_push_round_trips() {
    let pushes = vec![
        Push::Event {
            sub: 1,
            data: JsonValue::obj([
                ("seq", JsonValue::Int(12)),
                ("ev", JsonValue::Str("job_end".to_owned())),
            ]),
        },
        Push::Lag {
            sub: 2,
            dropped: 40,
        },
        Push::Status {
            sub: 3,
            state: WireStatus {
                name: "exp-a".to_owned(),
                status: ExperimentStatus::Paused,
            },
        },
        Push::Rewind { sub: 4 },
        Push::End { sub: 5 },
    ];
    for push in pushes {
        let frame = push.to_frame();
        assert!(Push::is_push_frame(&frame), "{}", push.name());
        let parsed = wire_trip(&frame);
        let decoded = Push::from_frame(&parsed).unwrap();
        assert_eq!(decoded, push);
        assert_eq!(decoded.sub(), push.sub());
    }
}

#[test]
fn run_options_round_trip_all_sync_policies() {
    for sync in [
        Durability::Flush,
        Durability::Sync,
        Durability::EveryN(1),
        Durability::EveryN(64),
    ] {
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            let opts = RunOptions {
                sync,
                snapshot_jobs: 123,
                format,
                delta_chain: 5,
            };
            let back = run_options_from_json(&run_options_to_json(&opts)).unwrap();
            assert_eq!(back, opts);
        }
    }
}

#[test]
fn run_options_without_format_fields_decode_with_defaults() {
    // A frame from a pre-codec-redesign client carries neither `format`
    // nor `delta_chain`; both must fall back to the defaults.
    let frame = JsonValue::parse(r#"{"sync":"always","snapshot_jobs":77}"#).unwrap();
    let opts = run_options_from_json(&frame).unwrap();
    assert_eq!(opts.sync, Durability::Sync);
    assert_eq!(opts.snapshot_jobs, 77);
    assert_eq!(opts.format, RunOptions::default().format);
    assert_eq!(opts.delta_chain, RunOptions::default().delta_chain);
}

#[test]
fn unsupported_version_is_a_protocol_error_not_a_parse_failure() {
    let frame = JsonValue::parse(&format!(
        "{{\"v\":{},\"id\":1,\"op\":\"ping\"}}",
        PROTOCOL_VERSION + 1
    ))
    .unwrap();
    let err = Request::from_frame(&frame).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Protocol);
    assert!(err.to_string().contains("version"), "{err}");
}

#[test]
fn unknown_fields_are_ignored_for_additive_evolution() {
    let frame = JsonValue::parse(
        "{\"v\":1,\"id\":8,\"op\":\"subscribe\",\"name\":\"e\",\"from_seq\":3,\"future_field\":true}",
    )
    .unwrap();
    let (id, request) = Request::from_frame(&frame).unwrap();
    assert_eq!(id, 8);
    match request {
        Request::Subscribe { name, from_seq } => {
            assert_eq!(name, "e");
            assert_eq!(from_seq, 3);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unknown_op_and_unknown_push_are_protocol_errors() {
    let bad_op = JsonValue::parse("{\"v\":1,\"id\":1,\"op\":\"frobnicate\"}").unwrap();
    assert_eq!(
        Request::from_frame(&bad_op).unwrap_err().kind(),
        ErrorKind::Protocol
    );
    let bad_push = JsonValue::parse("{\"v\":1,\"sub\":1,\"push\":\"mystery\"}").unwrap();
    assert_eq!(
        Push::from_frame(&bad_push).unwrap_err().kind(),
        ErrorKind::Protocol
    );
}

#[test]
fn reply_with_neither_ok_nor_err_is_rejected() {
    let frame = JsonValue::parse("{\"v\":1,\"id\":1}").unwrap();
    let err = Reply::from_frame(&frame, "ping").unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Protocol);
}

//! Scaled fan-out: ≥512 concurrent connections against one daemon on its
//! fixed thread pool, mixing plain requests with streaming subscriptions.
//! Every subscriber must see a gap-free telemetry stream (contiguous
//! `seq`, identical across subscribers) even though most of them sit
//! undrained — queues full, sockets jammed — for the whole run.
//!
//! The old thread-per-connection server would need 512+ threads here; the
//! reactor must hold the process thread count roughly flat, which the test
//! asserts directly from `/proc/self/status` on Linux.

use std::time::{Duration, Instant};

use asha_core::{Asha, AshaConfig};
use asha_service::{Client, Daemon, Push, ServeOptions};
use asha_store::{
    BenchSpec, Durability, ExperimentMeta, ExperimentStatus, RunOptions, SchedulerState,
};
use asha_surrogate::BenchmarkModel;

const CLIENTS: usize = 512;
/// Every Nth connection subscribes; the rest issue plain requests.
const SUB_STRIDE: usize = 4;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asha-svc-scaled-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_meta(name: &str) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: name.to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed: 5,
        sim: asha_sim::SimConfig::new(4, 40.0)
            .with_stragglers(0.3)
            .with_drops(0.02),
        bench: spec,
    }
}

fn opts() -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(32),
        snapshot_jobs: 200,
        ..RunOptions::default()
    }
}

/// Current thread count of this process (test + in-process daemon).
#[cfg(target_os = "linux")]
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Read one subscriber to its `End`, returning every telemetry line
/// (compact-rendered). Unlike the careful consumer in the 36-client test,
/// this deliberately does NOT resubscribe on `Lag`: the event tier is
/// hold-and-retry, so the stream must be complete anyway — lag pushes may
/// only ever announce dropped *status* frames.
fn drain_to_end(client: &mut Client, sub: u64) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        match client.next_push(Some(Duration::from_secs(60))).unwrap() {
            Some(push) => {
                if push.sub() != sub {
                    continue;
                }
                match push {
                    Push::Event { data, .. } => {
                        if data.get("seq").is_some() {
                            lines.push(data.render_compact());
                        }
                    }
                    Push::Rewind { .. } => lines.clear(),
                    Push::Lag { .. } | Push::Status { .. } => {}
                    Push::End { .. } => break,
                }
            }
            None => panic!("subscriber {sub} stalled for 60s"),
        }
    }
    lines
}

#[test]
fn daemon_sustains_512_mixed_clients_on_a_fixed_thread_pool() {
    let root = tmp_root("fleet");
    let mut serve = ServeOptions::new(&root);
    serve.tcp = Some("127.0.0.1:0".to_owned());
    // Shallow per-connection queues: with 128 undrained subscribers the
    // event tier must jam and hold-and-retry rather than drop.
    serve.queue_depth = 16;
    let daemon = Daemon::start(serve).unwrap();
    let addr = daemon.tcp_addr().unwrap().to_string();

    let mut admin = Client::connect_tcp(&addr).unwrap();
    admin.create(&small_meta("exp"), opts()).unwrap();
    admin.start("exp", opts()).unwrap();

    // Connect the whole fleet up front so all 512 sockets are registered
    // with the reactor at once.
    let mut fleet: Vec<Client> = (0..CLIENTS)
        .map(|_| Client::connect_tcp(&addr).unwrap())
        .collect();

    // Subscribers attach from seq 0 and then sit undrained while the run
    // produces telemetry — their queues must fill and hold, not drop.
    let mut subs: Vec<(usize, u64)> = Vec::new();
    for (i, client) in fleet.iter_mut().enumerate() {
        if i % SUB_STRIDE == 0 {
            subs.push((i, client.subscribe("exp", 0).unwrap()));
        }
    }
    assert!(subs.len() >= CLIENTS / SUB_STRIDE);

    // Mix requests over every connection — including the subscribers, whose
    // replies must interleave cleanly with buffered push frames.
    for round in 0..2 {
        for (i, client) in fleet.iter_mut().enumerate() {
            client.ping().unwrap();
            if i % 16 == round {
                let rows = client.list().unwrap();
                assert!(rows.iter().any(|r| r.name == "exp"));
            }
        }
    }

    // With all 512 connections live and the run in flight, the process must
    // still be running on a small fixed thread inventory (reactor + worker
    // pool + one tailer + experiment workers), nowhere near one per client.
    #[cfg(target_os = "linux")]
    {
        let threads = process_threads().expect("/proc/self/status unreadable");
        assert!(
            threads < 64,
            "expected a fixed thread pool, saw {threads} threads for {CLIENTS} connections"
        );
    }

    let stats = admin.stats().unwrap();
    assert!(
        stats.connections_open >= CLIENTS as u64,
        "connections_open {} < fleet {CLIENTS}",
        stats.connections_open
    );
    // Subscriptions may already have completed (short runs deliver End the
    // moment the WAL is fully queued), so the gauge is bounded, not exact.
    assert!(stats.subscriptions_open <= subs.len() as u64);

    // Let the run finish while the fleet stays connected.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = admin.status("exp").unwrap();
        if status.status == ExperimentStatus::Finished {
            break;
        }
        assert!(Instant::now() < deadline, "run did not finish in 120s");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drain every subscriber to End and check gap-freedom: seq must be
    // exactly 0..n with no holes, and every subscriber must see the
    // identical stream.
    let mut reference: Option<Vec<String>> = None;
    for &(idx, sub) in &subs {
        let lines = drain_to_end(&mut fleet[idx], sub);
        assert!(!lines.is_empty(), "subscriber {idx} saw no telemetry");
        for (pos, line) in lines.iter().enumerate() {
            let needle = format!("\"seq\":{pos}");
            assert!(
                line.contains(&needle),
                "subscriber {idx} gap at position {pos}: {line}"
            );
        }
        match &reference {
            None => reference = Some(lines),
            Some(first) => assert_eq!(
                first, &lines,
                "subscriber {idx} diverged from the first stream"
            ),
        }
    }

    // Every subscription ended cleanly, so the gauge must be back to zero.
    let stats = admin.stats().unwrap();
    assert_eq!(stats.subscriptions_open, 0, "subscriptions leaked");
    assert!(stats.events_sent > 0);
    assert!(stats.connections_total > CLIENTS as u64);

    drop(fleet);
    admin.shutdown().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

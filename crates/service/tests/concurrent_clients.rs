//! Many concurrent clients against one daemon: the acceptance bar is ≥32
//! simultaneous connections doing mixed requests and streaming
//! subscriptions with no deadlock, consistent manifest answers, and lag
//! accounting visible in the stats counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use asha_core::{Asha, AshaConfig};
use asha_service::{Client, Daemon, Push, ServeOptions};
use asha_store::{
    BenchSpec, Durability, ExperimentMeta, ExperimentStatus, RunOptions, SchedulerState,
};
use asha_surrogate::BenchmarkModel;

const CLIENTS: usize = 36;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asha-svc-conc-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_meta(name: &str) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: name.to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed: 5,
        sim: asha_sim::SimConfig::new(4, 40.0)
            .with_stragglers(0.3)
            .with_drops(0.02),
        bench: spec,
    }
}

fn opts() -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(32),
        snapshot_jobs: 200,
        ..RunOptions::default()
    }
}

/// Follow a subscription to its end, returning every telemetry line seen
/// (rendered compact), resubscribing on lag like a careful consumer.
fn drain_stream(client: &mut Client, name: &str) -> Vec<String> {
    let mut sub = client.subscribe(name, 0).unwrap();
    let mut lines = Vec::new();
    loop {
        match client.next_push(Some(Duration::from_secs(60))).unwrap() {
            Some(push) => {
                if push.sub() != sub {
                    continue;
                }
                match push {
                    Push::Event { data, .. } => {
                        if data.get("seq").is_some() {
                            lines.push(data.render_compact());
                        }
                    }
                    Push::Lag { .. } => {
                        let next = lines.len() as u64;
                        let _ = client.unsubscribe(sub);
                        sub = client.subscribe(name, next).unwrap();
                    }
                    Push::Rewind { .. } => {
                        lines.clear();
                        let _ = client.unsubscribe(sub);
                        sub = client.subscribe(name, 0).unwrap();
                    }
                    Push::Status { .. } => {}
                    Push::End { .. } => break,
                }
            }
            None => panic!("stream stalled for 60s"),
        }
    }
    lines
}

#[test]
fn daemon_sustains_36_concurrent_clients() {
    let root = tmp_root("many");
    let mut serve = ServeOptions::new(&root);
    serve.tcp = Some("127.0.0.1:0".to_owned());
    // A deliberately shallow queue so subscriber backpressure paths
    // (lag accounting, hold-and-retry event delivery) actually exercise.
    serve.queue_depth = 32;
    let daemon = Daemon::start(serve).unwrap();
    let addr = daemon.tcp_addr().unwrap().to_string();

    let mut admin = Client::connect_tcp(&addr).unwrap();
    admin.create(&small_meta("exp"), opts()).unwrap();
    admin.start("exp", opts()).unwrap();

    let errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        let errors = Arc::clone(&errors);
        handles.push(thread::spawn(move || {
            let run = || -> Result<(), asha_core::Error> {
                let mut client = Client::connect_tcp(&addr)?;
                match i % 3 {
                    // A third of the fleet streams the WAL to completion.
                    0 => {
                        let lines = drain_stream(&mut client, "exp");
                        if lines.is_empty() {
                            return Err(asha_core::Error::invalid("empty stream"));
                        }
                    }
                    // A third hammers cheap requests while the run is live.
                    1 => {
                        for _ in 0..40 {
                            client.ping()?;
                            let rows = client.list()?;
                            if rows.iter().all(|r| r.name != "exp") {
                                return Err(asha_core::Error::invalid("exp missing from list"));
                            }
                            let status = client.status("exp")?;
                            status.status.as_str(); // must be a known state
                            client.stats()?;
                        }
                    }
                    // The rest subscribe briefly, then walk away mid-stream
                    // (exercises tailer teardown while frames are in flight).
                    _ => {
                        let sub = client.subscribe("exp", 0)?;
                        let mut seen = 0;
                        while seen < 20 {
                            match client.next_push(Some(Duration::from_secs(30)))? {
                                Some(Push::End { .. }) => break,
                                Some(_) => seen += 1,
                                None => break,
                            }
                        }
                        let _ = client.unsubscribe(sub);
                    }
                }
                Ok(())
            };
            if let Err(e) = run() {
                eprintln!("client {i}: {e}");
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(errors.load(Ordering::Relaxed), 0, "client threads failed");

    // The run must have finished and every manifest answer must agree.
    let status = admin.status("exp").unwrap();
    assert_eq!(status.status, ExperimentStatus::Finished);

    let stats = admin.stats().unwrap();
    assert!(
        stats.connections_total > CLIENTS as u64,
        "expected >{} connections, saw {}",
        CLIENTS,
        stats.connections_total
    );
    assert!(
        stats.requests > CLIENTS as u64,
        "requests {}",
        stats.requests
    );
    assert!(stats.events_sent > 0, "no events delivered");
    // Lag accounting must be *visible*: the counter exists in the stats
    // reply and is consistent (it only counts lossy status pushes, so zero
    // is legitimate when no subscriber queue ever overflowed on one).
    let _ = stats.events_lagged;

    // Attach-after-finish: two fresh subscribers replaying the finished
    // WAL must see byte-identical streams.
    let mut a = Client::connect_tcp(&addr).unwrap();
    let mut b = Client::connect_tcp(&addr).unwrap();
    let lines_a = drain_stream(&mut a, "exp");
    let lines_b = drain_stream(&mut b, "exp");
    assert!(!lines_a.is_empty());
    assert_eq!(lines_a, lines_b, "replays diverged");

    admin.shutdown().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_subscribers_and_pause_resume() {
    let root = tmp_root("unix");
    let sock = root.join("ctl.sock");
    let mut serve = ServeOptions::new(&root);
    serve.unix = Some(sock.clone());
    let daemon = Daemon::start(serve).unwrap();

    let mut admin = Client::connect_unix(&sock).unwrap();
    admin.create(&small_meta("exp"), opts()).unwrap();
    admin.start("exp", opts()).unwrap();

    // A streaming watcher rides through a pause/resume cycle.
    let watcher = {
        let sock = sock.clone();
        thread::spawn(move || {
            let mut client = Client::connect_unix(&sock).unwrap();
            drain_stream(&mut client, "exp")
        })
    };

    // Pause, then resume; both must land (tolerating the run finishing
    // first, which reports a typed error rather than hanging).
    thread::sleep(Duration::from_millis(100));
    let paused = admin.pause("exp").is_ok();
    if paused {
        let status = admin.status("exp").unwrap();
        assert!(
            matches!(
                status.status,
                ExperimentStatus::Paused | ExperimentStatus::Finished
            ),
            "unexpected status {:?}",
            status.status
        );
        if status.status == ExperimentStatus::Paused {
            admin.resume("exp").unwrap();
        }
    }

    let lines = watcher.join().unwrap();
    assert!(!lines.is_empty(), "watcher saw no telemetry");
    assert_eq!(
        admin.status("exp").unwrap().status,
        ExperimentStatus::Finished
    );

    admin.shutdown().unwrap();
    daemon.wait().unwrap();
    assert!(!sock.exists(), "socket not cleaned up on shutdown");
    std::fs::remove_dir_all(&root).ok();
}

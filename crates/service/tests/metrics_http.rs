//! End-to-end observability checks against a live daemon: the HTTP
//! `/metrics` listener must serve parseable Prometheus text with non-zero
//! request histograms, the `metrics` protocol frame must return the JSON
//! snapshot, `stats` must stay a consistent projection of the plane, and
//! the slow-request log must capture requests over the threshold.

#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use asha_metrics::JsonValue;
use asha_obs::HistogramSnapshot;
use asha_service::{Client, Daemon, ServeOptions, METRICS_SCHEMA};

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("asha-svc-obs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_daemon(tag: &str) -> (Daemon, std::path::PathBuf) {
    let root = tmp_root(tag);
    let mut opts = ServeOptions::new(&root);
    opts.tcp = Some("127.0.0.1:0".to_owned());
    opts.metrics_addr = Some("127.0.0.1:0".to_owned());
    opts.slow_log = Some(root.join("slow.jsonl"));
    // Every request is "slow" at a zero threshold, exercising the log.
    opts.slow_threshold = Duration::from_millis(0);
    (Daemon::start(opts).unwrap(), root)
}

fn connect(daemon: &Daemon) -> Client {
    let addr = daemon.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(&addr.to_string()).unwrap();
    client.set_call_timeout(Some(Duration::from_secs(30)));
    client
}

/// One blocking HTTP exchange against the metrics listener.
fn http_get(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn http_scrape_returns_prometheus_text_with_request_histograms() {
    let (daemon, root) = start_daemon("scrape");
    let mut client = connect(&daemon);
    for _ in 0..5 {
        client.ping().unwrap();
    }

    let addr = daemon.metrics_addr().expect("metrics listener bound");
    let response = http_get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "{head}"
    );

    // The body must parse as the exposition format and carry the pings the
    // client just issued in the per-op request histogram.
    let mut ping_count = None;
    for line in body.lines() {
        assert!(
            line.starts_with('#')
                || line
                    .rsplit_once(' ')
                    .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "unparseable exposition line: {line:?}"
        );
        if let Some(rest) = line.strip_prefix("asha_request_execute_seconds_count{op=\"ping\"}") {
            ping_count = rest.trim().parse::<f64>().ok();
        }
    }
    assert!(
        ping_count.is_some_and(|n| n >= 5.0),
        "ping histogram count missing or zero: {ping_count:?}"
    );
    for required in [
        "asha_worker_queue_depth",
        "asha_wal_fsync_seconds_count",
        "asha_requests_total",
        "asha_connections_open",
    ] {
        assert!(body.contains(required), "missing {required}");
    }

    // Scrapes are not protocol connections and must not leak into either
    // side of the stats projection.
    let stats = client.stats().unwrap();
    assert_eq!(stats.connections_open, 1, "only the client connection");

    client.shutdown().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn http_listener_rejects_bad_method_and_path() {
    let (daemon, root) = start_daemon("reject");
    let addr = daemon.metrics_addr().unwrap();
    let response = http_get(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    let response = http_get(addr, "GET /other HTTP/1.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    // A valid scrape still works after the rejects.
    let response = http_get(addr, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");

    let mut client = connect(&daemon);
    client.shutdown().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn metrics_frame_returns_snapshot_and_stats_stays_a_projection() {
    let (daemon, root) = start_daemon("frame");
    let mut client = connect(&daemon);
    for _ in 0..3 {
        client.ping().unwrap();
    }

    let snap = client.metrics().unwrap();
    assert_eq!(
        snap.get("schema").and_then(JsonValue::as_str),
        Some(METRICS_SCHEMA)
    );
    let ping = snap
        .get("requests")
        .and_then(|r| r.get("by_op"))
        .and_then(|b| b.get("ping"))
        .expect("ping op present after pings");
    assert_eq!(ping.get("count").and_then(JsonValue::as_u64), Some(3));
    let execute = ping
        .get("execute")
        .and_then(HistogramSnapshot::from_json)
        .expect("execute histogram decodes");
    assert_eq!(execute.count(), 3);
    assert!(execute.quantile(0.99) >= 0.0);

    // `stats` is a thin projection of the same cells: its request total
    // can only sit at or above the snapshot taken just before it.
    let total = snap
        .get("requests")
        .and_then(|r| r.get("total"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.requests >= total,
        "stats.requests {} < snapshot total {total}",
        stats.requests
    );
    assert_eq!(stats.connections_open, 1);

    client.shutdown().unwrap();
    daemon.wait().unwrap();

    // Zero threshold: every request must have landed in the slow log.
    let log = std::fs::read_to_string(root.join("slow.jsonl")).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert!(
        lines.len() >= 5,
        "expected one slow row per request, got {}",
        lines.len()
    );
    for line in &lines {
        let row = JsonValue::parse(line).expect("slow log rows are JSON");
        assert!(row.get("req_id").and_then(JsonValue::as_u64).is_some());
        assert!(row.get("op").and_then(JsonValue::as_str).is_some());
        assert!(row.get("total_s").and_then(JsonValue::as_f64).is_some());
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn disabled_plane_serves_empty_but_valid_answers() {
    let root = tmp_root("disabled");
    let mut opts = ServeOptions::new(&root);
    opts.tcp = Some("127.0.0.1:0".to_owned());
    opts.metrics_addr = Some("127.0.0.1:0".to_owned());
    opts.metrics = false;
    let daemon = Daemon::start(opts).unwrap();
    let mut client = connect(&daemon);
    client.ping().unwrap();

    let snap = client.metrics().unwrap();
    assert_eq!(
        snap.get("enabled").and_then(JsonValue::as_bool),
        Some(false)
    );
    let response = http_get(
        daemon.metrics_addr().unwrap(),
        "GET /metrics HTTP/1.0\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
    assert!(response.contains("asha_requests_total 0"));

    client.shutdown().unwrap();
    daemon.wait().unwrap();
    std::fs::remove_dir_all(&root).ok();
}

//! Property tests of the frame decoder: arbitrary valid frame streams must
//! decode losslessly under arbitrary read-chunking, and hostile byte
//! streams (garbage, oversized lines, torn tails) must produce typed
//! protocol errors without wedging the reader.

use std::io::Read;

use asha_metrics::JsonValue;
use asha_service::{encode_frame, Frame, FrameReader};
use proptest::prelude::*;

/// A reader that hands out at most a few bytes per `read` call, following a
/// schedule of chunk sizes — simulates arbitrary TCP segmentation.
struct Dribble {
    bytes: Vec<u8>,
    pos: usize,
    schedule: Vec<usize>,
    turn: usize,
}

impl Dribble {
    fn new(bytes: Vec<u8>, schedule: Vec<usize>) -> Self {
        Dribble {
            bytes,
            pos: 0,
            schedule,
            turn: 0,
        }
    }
}

impl Read for Dribble {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.bytes.len() {
            return Ok(0);
        }
        let step = self.schedule[self.turn % self.schedule.len()].max(1);
        self.turn += 1;
        let n = step.min(out.len()).min(self.bytes.len() - self.pos);
        out[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A short lowercase identifier, built from digit draws (the vendored
/// proptest has no string strategies).
fn arb_key() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..8)
        .prop_map(|digits| digits.iter().map(|d| (b'a' + d) as char).collect())
}

/// A printable ASCII string, including JSON-hostile characters like
/// quotes and backslashes (the encoder must escape them).
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..95, 0..16)
        .prop_map(|chars| chars.iter().map(|c| (b' ' + c) as char).collect())
}

/// An arbitrary flat JSON object, rendered the way the protocol would.
fn arb_frame() -> impl Strategy<Value = JsonValue> {
    prop::collection::vec(
        (
            arb_key(),
            prop_oneof![
                (0u64..1_000_000).prop_map(JsonValue::Int).boxed(),
                any::<bool>().prop_map(JsonValue::Bool).boxed(),
                arb_text().prop_map(JsonValue::Str).boxed(),
            ],
        ),
        0..6,
    )
    .prop_map(|fields| {
        // Duplicate keys would make encode/decode comparison ambiguous.
        let mut seen = std::collections::HashSet::new();
        JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Whatever the segmentation, a stream of N encoded frames decodes to
    /// exactly those N frames followed by a clean EOF.
    #[test]
    fn chunking_never_tears_or_reorders_frames(
        frames in prop::collection::vec(arb_frame(), 0..12),
        schedule in prop::collection::vec(1usize..40, 1..8),
    ) {
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(encode_frame(frame).as_bytes());
        }
        let mut reader = FrameReader::new(Dribble::new(bytes, schedule));
        for expected in &frames {
            match reader.read_frame().unwrap() {
                Frame::Value(got) => prop_assert_eq!(
                    got.render_compact(),
                    expected.render_compact()
                ),
                other => return Err(format!("unexpected {other:?}")),
            }
        }
        prop_assert_eq!(reader.read_frame().unwrap(), Frame::Eof);
    }

    /// A malformed line errors but never wedges the reader: the next valid
    /// frame still decodes.
    #[test]
    fn garbage_lines_error_without_sticking(
        junk in arb_text(),
        frame in arb_frame(),
        schedule in prop::collection::vec(1usize..40, 1..8),
    ) {
        // A '!' prefix can never begin valid JSON, whatever follows.
        let garbage = format!("!{junk}");
        prop_assert!(JsonValue::parse(garbage.trim()).is_err());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(garbage.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(encode_frame(&frame).as_bytes());
        let mut reader = FrameReader::new(Dribble::new(bytes, schedule));
        let err = reader.read_frame().unwrap_err();
        prop_assert_eq!(err.kind(), asha_core::ErrorKind::Protocol);
        match reader.read_frame().unwrap() {
            Frame::Value(got) => prop_assert_eq!(got.render_compact(), frame.render_compact()),
            other => return Err(format!("unexpected {other:?}")),
        }
        prop_assert_eq!(reader.read_frame().unwrap(), Frame::Eof);
    }

    /// Lines beyond the size limit are rejected (whether or not the
    /// newline has arrived yet) and the reader still terminates cleanly.
    #[test]
    fn oversized_lines_are_rejected_and_consumed(
        pad_len in 64usize..4096,
        frame in arb_frame(),
        schedule in prop::collection::vec(1usize..512, 1..6),
    ) {
        let limit = 48usize;
        let mut bytes = format!("{{\"pad\":\"{}\"}}\n", "x".repeat(pad_len)).into_bytes();
        bytes.extend_from_slice(encode_frame(&frame).as_bytes());
        let mut reader = FrameReader::with_max_frame(Dribble::new(bytes, schedule), limit);
        let err = reader.read_frame().unwrap_err();
        prop_assert!(err.to_string().contains("exceeds limit"), "{}", err);
        // The reader may have discarded buffered bytes to bound memory (an
        // un-newlined line is cleared in limit-sized slices, each reported
        // as its own error); it must still terminate cleanly rather than
        // loop forever or panic.
        let mut done = false;
        for _ in 0..500 {
            match reader.read_frame() {
                Ok(Frame::Eof) => {
                    done = true;
                    break;
                }
                Ok(Frame::Value(_)) | Err(_) => continue,
                Ok(Frame::TimedOut) => return Err("unexpected timeout".to_owned()),
            }
        }
        prop_assert!(done, "reader did not reach EOF");
    }

    /// EOF mid-line is a torn frame: a typed protocol error, after every
    /// complete preceding frame was delivered.
    #[test]
    fn torn_tails_fail_after_delivering_complete_frames(
        frames in prop::collection::vec(arb_frame(), 0..6),
        cut in 1usize..20,
        schedule in prop::collection::vec(1usize..40, 1..8),
    ) {
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(encode_frame(frame).as_bytes());
        }
        // Append a frame and cut it before its newline.
        let tail = encode_frame(&JsonValue::obj([(
            "torn",
            JsonValue::Str("x".repeat(24)),
        )]));
        let keep = cut.min(tail.len() - 1);
        bytes.extend_from_slice(&tail.as_bytes()[..keep]);
        let mut reader = FrameReader::new(Dribble::new(bytes, schedule));
        for expected in &frames {
            match reader.read_frame().unwrap() {
                Frame::Value(got) => prop_assert_eq!(
                    got.render_compact(),
                    expected.render_compact()
                ),
                other => return Err(format!("unexpected {other:?}")),
            }
        }
        let err = reader.read_frame().unwrap_err();
        prop_assert!(err.to_string().contains("torn frame"), "{}", err);
    }
}

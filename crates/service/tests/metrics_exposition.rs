//! Golden tests of the Prometheus text exposition: the output must be
//! structurally valid format 0.0.4 (every sample preceded by its family's
//! `# TYPE` header, histogram buckets cumulative and capped by `+Inf`,
//! `_count` equal to the `+Inf` bucket) and must carry exact values for
//! deterministically recorded cells.

use std::collections::HashMap;

use asha_service::ServiceMetrics;

/// `family name -> (type, samples)`; each sample is
/// `(series name, labels, value)`.
type Families = HashMap<String, (String, Vec<(String, String, f64)>)>;

/// A deterministically populated plane: a few requests across two ops,
/// reactor traffic, a tailer, and store latencies.
fn populated_plane() -> std::sync::Arc<ServiceMetrics> {
    let m = ServiceMetrics::new(true);
    for _ in 0..3 {
        m.accept();
    }
    m.conn_opened();
    m.conn_opened();
    m.record_bytes_read(1024);
    m.record_bytes_written(2048);
    m.decode_error();
    m.http_request();
    m.request_observed("ping", true, 10e-6, 5e-6);
    m.request_observed("ping", true, 20e-6, 8e-6);
    m.request_observed("status", false, 15e-6, 100e-6);
    m.slow_request();
    let t = m.tailer("exp-a");
    t.subscribers.set(4);
    t.lag_records.set(17);
    t.window_evictions.inc();
    t.fanout_frames.add(250);
    m.store().wal_fsync.observe(3e-3);
    m.render_prometheus(); // rendering must not perturb any cell
    m
}

/// Minimal format-0.0.4 validator.
fn parse_exposition(text: &str) -> Families {
    let mut families: Families = HashMap::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE line has a name").to_owned();
            let kind = it.next().expect("TYPE line has a kind").to_owned();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown family kind {kind:?}"
            );
            let fresh = families.insert(name.clone(), (kind, Vec::new())).is_none();
            assert!(fresh, "family {name} declared twice");
            current = Some(name);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|e| {
            panic!("unparseable sample value in {line:?}: {e}");
        });
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest.strip_suffix('}').expect("labels close with '}'");
                (n.to_owned(), labels.to_owned())
            }
            None => (series.to_owned(), String::new()),
        };
        let family = current.as_ref().expect("sample before any TYPE header");
        // Histogram samples extend the family name (_bucket/_sum/_count);
        // everything else must match it exactly.
        assert!(
            name == *family
                || [
                    format!("{family}_bucket"),
                    format!("{family}_sum"),
                    format!("{family}_count"),
                ]
                .contains(&name),
            "sample {name} outside current family {family}"
        );
        families
            .get_mut(family)
            .unwrap()
            .1
            .push((name, labels, value));
    }
    families
}

fn sample_value(families: &Families, family: &str, name: &str, labels: &str) -> f64 {
    let (_, samples) = families
        .get(family)
        .unwrap_or_else(|| panic!("missing family {family}"));
    samples
        .iter()
        .find(|(n, l, _)| n == name && l == labels)
        .unwrap_or_else(|| panic!("missing sample {name}{{{labels}}}"))
        .2
}

/// Check one labelled histogram series: buckets cumulative, last bucket is
/// `+Inf`, `_count` matches it. Returns (count, sum).
fn check_histogram(families: &Families, family: &str, label_prefix: &str) -> (u64, f64) {
    let (kind, samples) = families
        .get(family)
        .unwrap_or_else(|| panic!("missing histogram {family}"));
    assert_eq!(kind, "histogram", "{family}");
    let series: Vec<_> = samples
        .iter()
        .filter(|(_, l, _)| {
            label_prefix.is_empty() || l.starts_with(label_prefix) || l == label_prefix
        })
        .collect();
    let buckets: Vec<_> = series
        .iter()
        .filter(|(n, _, _)| n.ends_with("_bucket"))
        .collect();
    assert!(!buckets.is_empty(), "{family}: no buckets");
    let mut last = -1.0f64;
    for (_, labels, v) in &buckets {
        assert!(*v >= last, "{family}: buckets not cumulative");
        last = *v;
        assert!(labels.contains("le=\""), "{family}: bucket without le");
    }
    let (_, inf_labels, inf) = buckets.last().unwrap();
    assert!(
        inf_labels.contains("le=\"+Inf\""),
        "{family}: last bucket must be +Inf, got {inf_labels}"
    );
    let count = series
        .iter()
        .find(|(n, _, _)| n.ends_with("_count"))
        .unwrap_or_else(|| panic!("{family}: missing _count"))
        .2;
    let sum = series
        .iter()
        .find(|(n, _, _)| n.ends_with("_sum"))
        .unwrap_or_else(|| panic!("{family}: missing _sum"))
        .2;
    assert_eq!(count, *inf, "{family}: _count must equal +Inf bucket");
    (count as u64, sum)
}

#[test]
fn exposition_is_structurally_valid_and_values_are_exact() {
    let m = populated_plane();
    let text = m.render_prometheus();
    let families = parse_exposition(&text);

    // Exact counter/gauge values from the deterministic recording.
    for (family, value) in [
        ("asha_reactor_accepts_total", 3.0),
        ("asha_connections_total", 2.0),
        ("asha_connections_open", 2.0),
        ("asha_reactor_bytes_read_total", 1024.0),
        ("asha_reactor_bytes_written_total", 2048.0),
        ("asha_reactor_frame_decode_errors_total", 1.0),
        ("asha_http_requests_total", 1.0),
        ("asha_requests_total", 3.0),
        ("asha_request_errors_total", 1.0),
        ("asha_slow_requests_total", 1.0),
        ("asha_worker_queue_depth", 0.0),
    ] {
        assert_eq!(
            sample_value(&families, family, family, ""),
            value,
            "{family}"
        );
    }

    // Per-op histograms: one family per leg, series labelled by op.
    let (ping_n, ping_sum) =
        check_histogram(&families, "asha_request_queue_wait_seconds", "op=\"ping\"");
    assert_eq!(ping_n, 2);
    assert!((ping_sum - 30e-6).abs() < 1e-9, "queue-wait sum {ping_sum}");
    let (status_n, _) = check_histogram(&families, "asha_request_execute_seconds", "op=\"status\"");
    assert_eq!(status_n, 1);

    // Fixed-name histograms are present even when empty.
    let (iter_n, _) = check_histogram(&families, "asha_reactor_iteration_seconds", "");
    assert_eq!(iter_n, 0);
    let (fsync_n, fsync_sum) = check_histogram(&families, "asha_wal_fsync_seconds", "");
    assert_eq!(fsync_n, 1);
    assert!((fsync_sum - 3e-3).abs() < 1e-9);

    // Tailer series carry the experiment label.
    for (family, value) in [
        ("asha_tailer_subscribers", 4.0),
        ("asha_tailer_lag_records", 17.0),
        ("asha_tailer_window_evictions_total", 1.0),
        ("asha_tailer_fanout_frames_total", 250.0),
    ] {
        assert_eq!(
            sample_value(&families, family, family, "experiment=\"exp-a\""),
            value,
            "{family}"
        );
    }
}

#[test]
fn every_family_has_help_and_type_in_order() {
    let text = populated_plane().render_prometheus();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap().to_owned();
            assert!(pending_help.is_none(), "HELP without TYPE before {name}");
            pending_help = Some(name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap();
            assert_eq!(
                pending_help.take().as_deref(),
                Some(name),
                "TYPE must directly follow its HELP"
            );
        }
    }
    assert!(pending_help.is_none(), "trailing HELP without TYPE");
}

#[test]
fn experiment_label_values_are_escaped() {
    let m = ServiceMetrics::new(true);
    m.tailer("weird\"name\\with\nstuff");
    let text = m.render_prometheus();
    assert!(
        text.contains("experiment=\"weird\\\"name\\\\with\\nstuff\""),
        "label not escaped:\n{text}"
    );
    // The raw newline must not appear inside any label (it would split the
    // sample line and corrupt the exposition).
    for line in text.lines() {
        assert!(
            !line.contains("experiment=\"weird\"n"),
            "unescaped quote leaked: {line}"
        );
    }
}

#[test]
fn disabled_plane_still_renders_valid_exposition() {
    let m = ServiceMetrics::new(false);
    m.request_observed("ping", true, 1.0, 1.0);
    let text = m.render_prometheus();
    let families = parse_exposition(&text);
    assert_eq!(
        sample_value(&families, "asha_requests_total", "asha_requests_total", ""),
        0.0
    );
    let (n, _) = check_histogram(&families, "asha_reactor_iteration_seconds", "");
    assert_eq!(n, 0);
}

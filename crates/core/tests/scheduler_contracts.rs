//! Contract tests of the public scheduling API across implementations:
//! behaviours every `Scheduler` must share, plus cross-scheduler
//! consistency checks that unit tests inside each module cannot express.

use asha_core::{
    Asha, AshaConfig, AsyncHyperband, Decision, Hyperband, HyperbandConfig, Observation,
    RandomSearch, ScanOrder, Scheduler, ShaConfig, SyncSha, TrialId,
};
use asha_space::{Scale, SearchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .discrete("n", 1, 8)
        .build()
        .expect("valid space")
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0))),
        Box::new(SyncSha::new(
            space(),
            ShaConfig::new(27, 1.0, 27.0, 3.0).growing(),
        )),
        Box::new(Hyperband::new(
            space(),
            HyperbandConfig::new(1.0, 27.0, 3.0),
        )),
        Box::new(AsyncHyperband::new(
            space(),
            HyperbandConfig::new(1.0, 27.0, 3.0),
        )),
        Box::new(RandomSearch::new(space(), 27.0)),
    ]
}

#[test]
fn unsolicited_observations_never_panic_or_corrupt() {
    for mut s in all_schedulers() {
        // Bogus observations before any suggestion.
        s.observe(Observation::new(TrialId(u64::MAX), 0, 1.0, 0.1));
        s.observe(Observation::new(TrialId(12345), 3, 27.0, f64::NAN));
        // The scheduler still works afterwards.
        let mut rng = StdRng::seed_from_u64(0);
        let name = s.name().to_owned();
        match s.suggest(&mut rng) {
            Decision::Run(job) => s.observe(Observation::for_job(&job, 0.5)),
            other => panic!("{name}: expected a first job, got {other:?}"),
        }
    }
}

#[test]
fn infinite_and_nan_losses_are_survivable() {
    for mut s in all_schedulers() {
        let mut rng = StdRng::seed_from_u64(1);
        let name = s.name().to_owned();
        for i in 0..60 {
            match s.suggest(&mut rng) {
                Decision::Run(job) => {
                    let loss = match i % 3 {
                        0 => f64::INFINITY,
                        1 => f64::NAN,
                        _ => i as f64,
                    };
                    s.observe(Observation::for_job(&job, loss));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("{name}: serial run should not wait"),
            }
        }
    }
}

#[test]
fn duplicate_reports_do_not_double_count() {
    for mut s in all_schedulers() {
        let mut rng = StdRng::seed_from_u64(2);
        let name = s.name().to_owned();
        let mut issued = Vec::new();
        for _ in 0..9 {
            if let Decision::Run(job) = s.suggest(&mut rng) {
                issued.push(job);
            }
        }
        // Report each job twice, interleaved.
        for job in &issued {
            s.observe(Observation::for_job(job, job.trial.0 as f64));
            s.observe(Observation::for_job(job, 0.0)); // would be rank-breaking if counted
        }
        // The scheduler keeps making progress.
        assert!(
            matches!(s.suggest(&mut rng), Decision::Run(_)),
            "{name} stalled after duplicate reports"
        );
    }
}

#[test]
fn job_fields_are_internally_consistent() {
    for mut s in all_schedulers() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..40 {
            match s.suggest(&mut rng) {
                Decision::Run(job) => {
                    assert!(job.resource > 0.0 && job.resource <= 27.0);
                    assert_eq!(job.config.len(), 2);
                    assert!(job.inherit_from.is_none(), "no scheduler here inherits");
                    s.observe(Observation::for_job(&job, 1.0));
                }
                Decision::Finished => break,
                Decision::Wait => break,
            }
        }
    }
}

#[test]
fn boxed_scheduler_forwards_everything() {
    let mut boxed: Box<dyn Scheduler> =
        Box::new(Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0)));
    let mut rng = StdRng::seed_from_u64(4);
    assert_eq!(boxed.name(), "ASHA");
    let job = boxed.suggest(&mut rng).job().expect("asha runs");
    boxed.observe(Observation::for_job(&job, 0.1));
}

#[test]
fn scan_orders_agree_when_one_promotion_exists() {
    // With a single promotable candidate, top-down and bottom-up must pick
    // the same trial.
    let run = |order: ScanOrder| {
        let mut asha = Asha::new(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0).with_scan_order(order),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let mut first_promo = None;
        for i in 0..10 {
            let job = asha.suggest(&mut rng).job().expect("asha runs");
            if job.rung > 0 && first_promo.is_none() {
                first_promo = Some(job.trial);
            }
            asha.observe(Observation::for_job(&job, i as f64));
        }
        first_promo
    };
    assert_eq!(run(ScanOrder::TopDown), run(ScanOrder::BottomUp));
}

#[test]
fn scan_orders_diverge_when_multiple_rungs_are_promotable() {
    // Build a ladder state where both rung 0 and rung 1 hold promotable
    // candidates, by withholding observations and then releasing them.
    let build = |order: ScanOrder| {
        let mut asha = Asha::new(
            space(),
            AshaConfig::new(1.0, 81.0, 3.0).with_scan_order(order),
        );
        let mut rng = StdRng::seed_from_u64(6);
        // Issue 12 rung-0 jobs up front (all outstanding, nothing
        // promotable yet)...
        let jobs: Vec<_> = (0..12)
            .map(|_| asha.suggest(&mut rng).job().expect("runs"))
            .collect();
        assert!(jobs.iter().all(|j| j.rung == 0));
        // ...complete 9 of them, then walk 3 promotions through rung 1.
        for (i, job) in jobs[..9].iter().enumerate() {
            asha.observe(Observation::for_job(job, i as f64));
        }
        for i in 0..3 {
            let promo = asha.suggest(&mut rng).job().expect("runs");
            assert_eq!(promo.rung, 1);
            asha.observe(Observation::for_job(&promo, i as f64));
        }
        // Rung 1 now has 3 records (1 promotable). Releasing the withheld
        // rung-0 results grows rung 0 to 12 records, re-opening its quota.
        for (i, job) in jobs[9..].iter().enumerate() {
            asha.observe(Observation::for_job(job, 9.0 + i as f64));
        }
        asha.suggest(&mut rng).job().expect("runs").rung
    };
    let top_down = build(ScanOrder::TopDown);
    let bottom_up = build(ScanOrder::BottomUp);
    assert_eq!(top_down, 2, "top-down must promote from the highest rung");
    assert_eq!(bottom_up, 1, "bottom-up must prefer the lower rung");
}

#[test]
fn hyperband_generations_do_not_leak_observations() {
    // Complete bracket 0 fully, then send a stale observation for one of
    // its trials: the new bracket must ignore it.
    let mut hb = Hyperband::new(space(), HyperbandConfig::new(1.0, 9.0, 3.0));
    let mut rng = StdRng::seed_from_u64(7);
    let mut last_job = None;
    for _ in 0..13 {
        let job = hb.suggest(&mut rng).job().expect("runs");
        hb.observe(Observation::for_job(&job, job.trial.0 as f64));
        last_job = Some(job);
    }
    // Bracket 0 done; next suggest starts bracket 1.
    let next = hb.suggest(&mut rng).job().expect("runs");
    assert_eq!(next.bracket, 1);
    // Stale report from generation 0: must be ignored, not crash or stall.
    hb.observe(Observation::for_job(&last_job.expect("ran jobs"), 0.0));
    assert!(matches!(hb.suggest(&mut rng), Decision::Run(_)));
}

#[test]
fn async_hyperband_budgets_match_bracket_tables() {
    let cfg = HyperbandConfig::new(1.0, 256.0, 4.0);
    // The per-bracket budget used for switching equals the SHA bracket
    // budget for that bracket's n.
    for s in 0..cfg.num_brackets {
        let n = cfg.bracket_num_configs(s);
        let budget = asha_core::budget::bracket_budget(n, 1.0, 256.0, 4.0, s);
        assert!(budget > 0.0);
        // Brackets cover every early-stopping rate exactly once.
        assert!(n >= 4f64.powi((4 - s) as i32) as usize);
    }
}

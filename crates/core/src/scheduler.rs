use std::fmt;

use asha_space::Config;
use serde::{Deserialize, Serialize};

/// Opaque identifier of a trial (one hyperparameter configuration being
/// evaluated, possibly across several rungs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TrialId(pub u64);

impl fmt::Display for TrialId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trial#{}", self.0)
    }
}

/// A unit of work issued by a scheduler: train `config` until its cumulative
/// resource reaches `resource`, then report the validation loss.
///
/// `resource` is *cumulative*: with checkpointing, an executor only trains
/// for the difference between `resource` and the trial's previous resource
/// (Section 3.2: "when training is iterative, ASHA can return an answer in
/// `time(R)`, since incrementally trained configurations can be checkpointed
/// and resumed").
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Which trial this job belongs to.
    pub trial: TrialId,
    /// The hyperparameter configuration to train.
    pub config: Config,
    /// The rung this job trains for (0 = base rung).
    pub rung: usize,
    /// Cumulative resource the trial should reach (e.g. SGD iterations).
    pub resource: f64,
    /// Which bracket issued the job (always 0 for plain ASHA/SHA; used by
    /// the Hyperband wrappers).
    pub bracket: usize,
    /// If set, the executor must copy the named trial's checkpoint into this
    /// trial before training — PBT's exploit step copies both weights and
    /// hyperparameters from a stronger population member.
    pub inherit_from: Option<TrialId>,
}

/// A completed job's result, reported back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// The trial the result belongs to.
    pub trial: TrialId,
    /// The rung that was trained.
    pub rung: usize,
    /// Cumulative resource the trial has now been trained for.
    pub resource: f64,
    /// Validation loss after training (lower is better).
    pub loss: f64,
}

impl Observation {
    /// Convenience constructor.
    pub fn new(trial: TrialId, rung: usize, resource: f64, loss: f64) -> Self {
        Observation {
            trial,
            rung,
            resource,
            loss,
        }
    }

    /// Build the observation matching a job with a measured loss.
    pub fn for_job(job: &Job, loss: f64) -> Self {
        Observation {
            trial: job.trial,
            rung: job.rung,
            resource: job.resource,
            loss,
        }
    }
}

/// What a scheduler wants a free worker to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Run this job.
    Run(Job),
    /// No job is currently available, but outstanding jobs may unblock one;
    /// ask again after the next completion. (Synchronous schedulers block
    /// here; ASHA never does.)
    Wait,
    /// The schedule is complete; the worker can shut down.
    Finished,
}

impl Decision {
    /// The job, if this decision is [`Decision::Run`].
    pub fn job(self) -> Option<Job> {
        match self {
            Decision::Run(job) => Some(job),
            _ => None,
        }
    }

    /// Whether this is [`Decision::Wait`].
    pub fn is_wait(&self) -> bool {
        matches!(self, Decision::Wait)
    }

    /// Whether this is [`Decision::Finished`].
    pub fn is_finished(&self) -> bool {
        matches!(self, Decision::Finished)
    }
}

/// A pull-based hyperparameter scheduler.
///
/// The contract mirrors Algorithm 2 of the paper: an execution layer (the
/// simulator, the thread-pool executor, or a test) calls [`suggest`] once per
/// free worker and [`observe`] once per completed job. Implementations must
/// tolerate any interleaving of the two calls: an arbitrary number of
/// suggested jobs may be outstanding when an observation arrives, and
/// observations may arrive out of issue order (that is the whole point of
/// asynchrony).
///
/// Losses are minimized. Executors report `f64::INFINITY` for diverged or
/// failed trials; schedulers must treat such trials as worst-possible rather
/// than erroring.
///
/// # Fault model
///
/// Real execution layers retry, time out, and lose jobs (paper Section 4.4;
/// DESIGN.md "Fault model"), so every implementation must additionally be
/// robust to the observation stream those faults produce:
///
/// * **Non-finite losses** (`INFINITY` from a poisoned — panicked or
///   retry-exhausted — trial, or `NaN` from a numerically diverged one) must
///   never panic the scheduler and must never be *promoted*: a trial with a
///   non-finite loss stays at its rung forever.
/// * **Duplicate observations** for the same `(trial, rung)` — an executor
///   retry whose first attempt actually landed — must be idempotent: the
///   first report wins and later ones are ignored.
/// * **Observations for never-issued trials** (a misrouted or corrupted
///   report) must be ignored outright.
///
/// [`suggest`]: Scheduler::suggest
/// [`observe`]: Scheduler::observe
pub trait Scheduler {
    /// Ask for work for one free worker.
    ///
    /// `rng` drives any randomness (sampling new configurations, PBT
    /// exploration). Deterministic given the RNG stream and call order.
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision;

    /// Report a completed job.
    ///
    /// Unsolicited observations (for jobs the scheduler did not issue, or
    /// duplicates) are ignored rather than panicking, so executors can retry
    /// dropped jobs conservatively.
    fn observe(&mut self, obs: Observation);

    /// Human-readable name used in experiment output (e.g. `"ASHA"`).
    fn name(&self) -> &str;

    /// Whether a [`Decision::Wait`] from this scheduler is *stable*: once
    /// `suggest` returns `Wait`, every further `suggest` before the next
    /// [`Scheduler::observe`] is guaranteed to also return `Wait`, consume
    /// no RNG, and mutate nothing.
    ///
    /// Execution layers use this to batch idle workers: instead of re-asking
    /// once per free worker per event, a stable `Wait` is remembered until
    /// an observation arrives. The conservative default is `false` (always
    /// re-ask); only return `true` when the guarantee genuinely holds, or
    /// restored runs may diverge from uninterrupted ones.
    fn wait_is_stable(&self) -> bool {
        false
    }
}

// Allow `Box<dyn Scheduler>` to be used wherever `impl Scheduler` is.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        (**self).suggest(rng)
    }

    fn observe(&mut self, obs: Observation) {
        (**self).observe(obs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn wait_is_stable(&self) -> bool {
        (**self).wait_is_stable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_id_display() {
        assert_eq!(TrialId(7).to_string(), "trial#7");
    }

    #[test]
    fn decision_helpers() {
        assert!(Decision::Wait.is_wait());
        assert!(Decision::Finished.is_finished());
        assert!(Decision::Wait.job().is_none());
        let job = Job {
            trial: TrialId(1),
            config: Config::default(),
            rung: 0,
            resource: 1.0,
            bracket: 0,
            inherit_from: None,
        };
        assert_eq!(Decision::Run(job.clone()).job(), Some(job));
    }

    #[test]
    fn observation_for_job_copies_fields() {
        let job = Job {
            trial: TrialId(3),
            config: Config::default(),
            rung: 2,
            resource: 9.0,
            bracket: 1,
            inherit_from: None,
        };
        let obs = Observation::for_job(&job, 0.25);
        assert_eq!(obs.trial, TrialId(3));
        assert_eq!(obs.rung, 2);
        assert_eq!(obs.resource, 9.0);
        assert_eq!(obs.loss, 0.25);
    }
}

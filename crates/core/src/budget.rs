//! Closed-form promotion and budget arithmetic: the tables of Figure 1 and
//! the wall-clock bounds of Sections 3.1–3.2.

/// One row of a bracket's promotion table: rung index, number of
/// configurations, per-configuration resource, and the rung's total budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungRow {
    /// Rung index `i` within the bracket (0 = base).
    pub rung: usize,
    /// Number of configurations evaluated at this rung, `n_i = floor(n * eta^-i)`.
    pub num_configs: usize,
    /// Per-configuration cumulative resource, `r_i = r * eta^(s+i)`.
    pub resource: f64,
    /// Total budget of the rung, `n_i * r_i`.
    pub budget: f64,
}

/// The promotion scheme of a synchronous SHA bracket (Figure 1, right):
/// rows `(i, n_i, r_i, n_i * r_i)` for `i = 0 ..= floor(log_eta(R/r)) - s`.
///
/// # Panics
///
/// Panics if `eta < 2`, resources are invalid, or `s > floor(log_eta(R/r))`.
///
/// # Examples
///
/// ```
/// let rows = asha_core::budget::promotion_table(9, 1.0, 9.0, 3.0, 0);
/// let (n, r): (Vec<_>, Vec<_>) = rows.iter().map(|row| (row.num_configs, row.resource)).unzip();
/// assert_eq!(n, [9, 3, 1]);
/// assert_eq!(r, [1.0, 3.0, 9.0]);
/// ```
pub fn promotion_table(n: usize, r: f64, max_r: f64, eta: f64, s: usize) -> Vec<RungRow> {
    assert!(eta >= 2.0, "eta must be >= 2");
    assert!(r > 0.0 && max_r >= r, "resources must satisfy 0 < r <= R");
    let s_max = (max_r / r).log(eta).floor() as usize;
    assert!(s <= s_max, "stop rate {s} exceeds log_eta(R/r) = {s_max}");
    (0..=(s_max - s))
        .map(|i| {
            let num_configs = (n as f64 * eta.powi(-(i as i32))).floor() as usize;
            let resource = (r * eta.powi((s + i) as i32)).min(max_r);
            RungRow {
                rung: i,
                num_configs,
                resource,
                budget: num_configs as f64 * resource,
            }
        })
        .collect()
}

/// Total budget of a synchronous SHA bracket: the sum of its rung budgets.
/// Asynchronous Hyperband uses this as the per-bracket allotment before
/// switching brackets.
pub fn bracket_budget(n: usize, r: f64, max_r: f64, eta: f64, s: usize) -> f64 {
    promotion_table(n, r, max_r, eta, s)
        .iter()
        .map(|row| row.budget)
        .sum()
}

/// Minimum wall-clock time (in units of `time(R)`, assuming training time
/// scales linearly with resource) for *synchronous* SHA to return a
/// configuration trained to completion: one `time(R)`-equivalent per rung
/// (Section 3.1: "(log_eta(R/r) - s + 1) x time(R)").
pub fn sha_time_to_completion(r: f64, max_r: f64, eta: f64, s: usize) -> f64 {
    let s_max = (max_r / r).log(eta).floor() as usize;
    (s_max - s + 1) as f64
}

/// Wall-clock time (in units of `time(R)`) for ASHA to return a
/// configuration trained to completion given one worker per
/// rung-promotion slot (Section 3.2):
/// `sum_{i=s}^{log_eta(R)} eta^(i - log_eta(R)) <= 2`.
pub fn asha_time_to_completion(r: f64, max_r: f64, eta: f64, s: usize) -> f64 {
    let s_max = (max_r / r).log(eta).floor() as usize;
    (s..=s_max).map(|i| eta.powi(i as i32 - s_max as i32)).sum()
}

/// Number of machines needed for ASHA to advance configurations to the next
/// rung in the same time it takes to train a single configuration in that
/// rung (Section 3.2: `eta^(log_eta(R) - s)` machines).
pub fn asha_workers_for_full_throughput(r: f64, max_r: f64, eta: f64, s: usize) -> usize {
    let s_max = (max_r / r).log(eta).floor() as usize;
    eta.powi((s_max - s) as i32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_bracket0() {
        let rows = promotion_table(9, 1.0, 9.0, 3.0, 0);
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.num_configs).collect::<Vec<_>>(),
            vec![9, 3, 1]
        );
        assert_eq!(
            rows.iter().map(|r| r.resource).collect::<Vec<_>>(),
            vec![1.0, 3.0, 9.0]
        );
        // Figure 1: each rung of bracket 0 has total budget 9.
        assert!(rows.iter().all(|r| r.budget == 9.0));
        assert_eq!(bracket_budget(9, 1.0, 9.0, 3.0, 0), 27.0);
    }

    #[test]
    fn figure1_bracket1_and_2() {
        // Bracket 1: n_i = {9, 3}, r_i = {3, 9}, budgets {27, 27}.
        let rows = promotion_table(9, 1.0, 9.0, 3.0, 1);
        assert_eq!(
            rows.iter()
                .map(|r| (r.num_configs, r.resource))
                .collect::<Vec<_>>(),
            vec![(9, 3.0), (3, 9.0)]
        );
        assert!(rows.iter().all(|r| r.budget == 27.0));
        // Bracket 2: single rung of 9 configs at R = 9, budget 81.
        let rows = promotion_table(9, 1.0, 9.0, 3.0, 2);
        assert_eq!(
            rows.iter()
                .map(|r| (r.num_configs, r.resource))
                .collect::<Vec<_>>(),
            vec![(9, 9.0)]
        );
        assert_eq!(bracket_budget(9, 1.0, 9.0, 3.0, 2), 81.0);
    }

    #[test]
    fn paper_experiment_budget_scale() {
        // Sections 4.1-4.2: n=256, eta=4, r=R/256 -> 5 rungs 256..1.
        let rows = promotion_table(256, 1.0, 256.0, 4.0, 0);
        assert_eq!(rows.len(), 5);
        assert_eq!(
            rows.iter().map(|r| r.num_configs).collect::<Vec<_>>(),
            vec![256, 64, 16, 4, 1]
        );
        assert_eq!(rows.last().unwrap().resource, 256.0);
    }

    #[test]
    fn sha_completion_time_matches_section31() {
        // Bracket 0 of Figure 1: "3 x time(R), since there are three rungs".
        assert_eq!(sha_time_to_completion(1.0, 9.0, 3.0, 0), 3.0);
        assert_eq!(sha_time_to_completion(1.0, 9.0, 3.0, 1), 2.0);
    }

    #[test]
    fn asha_completion_time_matches_section32() {
        // Bracket 0 of Figure 1 with 9 machines: 13/9 x time(R).
        let t = asha_time_to_completion(1.0, 9.0, 3.0, 0);
        assert!((t - 13.0 / 9.0).abs() < 1e-12, "t = {t}");
        // The bound of Section 3.2: always <= 2 time(R).
        for (r, max_r, eta) in [(1.0, 256.0, 4.0), (1.0, 1024.0, 2.0), (1.0, 9.0, 3.0)] {
            assert!(asha_time_to_completion(r, max_r, eta, 0) <= 2.0);
        }
    }

    #[test]
    fn worker_count_for_throughput() {
        assert_eq!(asha_workers_for_full_throughput(1.0, 9.0, 3.0, 0), 9);
        assert_eq!(asha_workers_for_full_throughput(1.0, 256.0, 4.0, 0), 256);
        assert_eq!(asha_workers_for_full_throughput(1.0, 256.0, 4.0, 2), 16);
    }

    #[test]
    fn resource_clamped_to_max() {
        let rows = promotion_table(10, 1.0, 10.0, 3.0, 0);
        assert!(rows.iter().all(|r| r.resource <= 10.0));
    }

    #[test]
    #[should_panic(expected = "exceeds log_eta")]
    fn invalid_stop_rate_panics() {
        let _ = promotion_table(9, 1.0, 9.0, 3.0, 5);
    }
}

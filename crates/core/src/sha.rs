//! Synchronous Successive Halving (Algorithm 1 of the paper), including the
//! bracket-growing parallelization scheme of Falkner et al. (2018) that the
//! paper's distributed experiments compare against.

use std::collections::BTreeSet;

use asha_space::{Config, SearchSpace};

use crate::fx::{FxHashMap, FxHashSet};
use crate::sampler::{ConfigSampler, RandomSampler};
use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};
use crate::state::{BracketState, SyncShaState};

/// Configuration of a [`SyncSha`] scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ShaConfig {
    /// Number of configurations `n` evaluated in the base rung of each
    /// bracket.
    pub num_configs: usize,
    /// Minimum resource `r`.
    pub min_resource: f64,
    /// Maximum resource `R`.
    pub max_resource: f64,
    /// Reduction factor `eta >= 2`.
    pub reduction_factor: f64,
    /// Early-stopping rate `s`.
    pub stop_rate: usize,
    /// Grow a fresh bracket whenever every existing bracket is blocked
    /// waiting on stragglers — the parallelization scheme of Falkner et al.
    /// (2018) ("add brackets when there are no jobs available in existing
    /// brackets"). With `false`, a single bracket runs to completion and the
    /// scheduler then reports [`Decision::Finished`].
    pub grow_brackets: bool,
}

impl ShaConfig {
    /// Standard single-bracket configuration with `s = 0`.
    pub fn new(num_configs: usize, min_resource: f64, max_resource: f64, eta: f64) -> Self {
        ShaConfig {
            num_configs,
            min_resource,
            max_resource,
            reduction_factor: eta,
            stop_rate: 0,
            grow_brackets: false,
        }
    }

    /// Set the early-stopping rate `s`.
    pub fn with_stop_rate(mut self, stop_rate: usize) -> Self {
        self.stop_rate = stop_rate;
        self
    }

    /// Keep adding brackets when all existing ones are blocked.
    pub fn growing(mut self) -> Self {
        self.grow_brackets = true;
        self
    }

    /// Number of rungs in a bracket: `floor(log_eta(R/r)) - s + 1`.
    pub fn num_rungs(&self) -> usize {
        let s_max = (self.max_resource / self.min_resource)
            .log(self.reduction_factor)
            .floor() as usize;
        s_max - self.stop_rate + 1
    }

    /// Cumulative resource of rung `k`: `min(r * eta^(s+k), R)`.
    pub fn rung_resource(&self, rung: usize) -> f64 {
        (self.min_resource * self.reduction_factor.powi((self.stop_rate + rung) as i32))
            .min(self.max_resource)
    }

    fn validate(&self) {
        assert!(self.reduction_factor >= 2.0, "eta must be >= 2");
        assert!(
            self.min_resource > 0.0 && self.max_resource >= self.min_resource,
            "resources must satisfy 0 < r <= R"
        );
        let s_max = (self.max_resource / self.min_resource)
            .log(self.reduction_factor)
            .floor() as usize;
        assert!(
            self.stop_rate <= s_max,
            "stop rate {} exceeds log_eta(R/r) = {s_max}",
            self.stop_rate
        );
        // Line 3 of Algorithm 1: n >= eta^(s_max - s) so at least one
        // configuration reaches R.
        let needed = self.reduction_factor.powi((s_max - self.stop_rate) as i32) as usize;
        assert!(
            self.num_configs >= needed,
            "n = {} too small: need at least eta^(s_max - s) = {needed}",
            self.num_configs
        );
    }
}

/// One synchronous bracket in flight.
#[derive(Debug)]
struct Bracket {
    /// Trials not yet sampled for the base rung.
    remaining_to_sample: usize,
    /// Survivors queued for issue at the current rung.
    queue: Vec<(TrialId, Config)>,
    /// Jobs issued at the current rung and not yet reported.
    outstanding: usize,
    /// Trials currently issued (and unreported) at the current rung. A
    /// report is accepted only for trials in this set, which makes duplicate
    /// reports (executor retries) and reports for never-issued trials
    /// harmless rather than barrier-corrupting.
    issued: FxHashSet<TrialId>,
    /// Results gathered at the current rung.
    results: Vec<(TrialId, f64)>,
    /// Current rung index.
    rung: usize,
    done: bool,
}

impl Bracket {
    fn fresh(num_configs: usize) -> Self {
        Bracket {
            remaining_to_sample: num_configs,
            queue: Vec::new(),
            outstanding: 0,
            issued: FxHashSet::default(),
            results: Vec::new(),
            rung: 0,
            done: false,
        }
    }

    fn has_work(&self) -> bool {
        !self.done && (self.remaining_to_sample > 0 || !self.queue.is_empty())
    }

    fn idle(&self) -> bool {
        self.done || (self.remaining_to_sample == 0 && self.queue.is_empty())
    }
}

/// Synchronous Successive Halving: every configuration in a rung must finish
/// before the top `1/eta` are promoted to the next rung — the property that
/// makes the algorithm sensitive to stragglers and dropped jobs (Section 3.1
/// and Appendix A.1).
pub struct SyncSha {
    space: SearchSpace,
    config: ShaConfig,
    sampler: Box<dyn ConfigSampler>,
    brackets: Vec<Bracket>,
    /// Work index: exactly the bracket indices whose `has_work()` is true,
    /// kept in sync after every mutation so `suggest` finds the first
    /// issuable bracket in O(1) instead of scanning every bracket. Derived
    /// data — rebuilt by `from_state`, never serialized.
    active: BTreeSet<usize>,
    trial_meta: FxHashMap<TrialId, (usize, Config)>,
    next_trial: u64,
    name: String,
}

impl std::fmt::Debug for SyncSha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSha")
            .field("config", &self.config)
            .field("brackets", &self.brackets.len())
            .finish_non_exhaustive()
    }
}

impl SyncSha {
    /// Create a synchronous SHA scheduler with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates Algorithm 1's preconditions
    /// (`eta < 2`, bad resources, `s` too large, or `n < eta^(s_max - s)`).
    pub fn new(space: SearchSpace, config: ShaConfig) -> Self {
        SyncSha::with_sampler(space, config, Box::new(RandomSampler::new()))
    }

    /// Create a synchronous SHA scheduler with a custom sampler (BOHB uses a
    /// TPE here).
    ///
    /// # Panics
    ///
    /// Same conditions as [`SyncSha::new`].
    pub fn with_sampler(
        space: SearchSpace,
        config: ShaConfig,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        config.validate();
        let name = if sampler.name() == "random" {
            "SHA".to_owned()
        } else {
            format!("SHA+{}", sampler.name())
        };
        let first = Bracket::fresh(config.num_configs);
        let mut active = BTreeSet::new();
        if first.has_work() {
            active.insert(0);
        }
        SyncSha {
            space,
            config,
            sampler,
            brackets: vec![first],
            active,
            trial_meta: FxHashMap::default(),
            next_trial: 0,
            name,
        }
    }

    /// Rename the scheduler (used by wrappers such as BOHB).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &ShaConfig {
        &self.config
    }

    /// The attached sampler's name (`"random"` for the default).
    pub fn sampler_name(&self) -> &str {
        self.sampler.name()
    }

    /// Export the sampler's serialized model cursor, if it keeps one.
    pub fn export_sampler_cursor(&self) -> Option<String> {
        self.sampler.export_cursor()
    }

    /// Restore the sampler's model cursor (no-op on a mismatched or
    /// malformed cursor).
    pub fn restore_sampler_cursor(&mut self, cursor: &str) {
        self.sampler.restore_cursor(cursor);
    }

    /// Number of brackets started so far.
    pub fn bracket_count(&self) -> usize {
        self.brackets.len()
    }

    /// Whether every bracket has run to completion.
    pub fn all_done(&self) -> bool {
        self.brackets.iter().all(|b| b.done)
    }

    /// Capture the scheduler's full mutable state as plain data (see
    /// [`crate::state`]). Restoring it with [`SyncSha::from_state`] yields a
    /// scheduler that makes identical decisions given the same RNG stream.
    pub fn export_state(&self) -> SyncShaState {
        let brackets = self
            .brackets
            .iter()
            .map(|b| {
                let mut issued: Vec<u64> = b.issued.iter().map(|t| t.0).collect();
                issued.sort_unstable();
                BracketState {
                    remaining_to_sample: b.remaining_to_sample,
                    queue: b.queue.iter().map(|(t, c)| (t.0, c.clone())).collect(),
                    outstanding: b.outstanding,
                    issued,
                    results: b.results.iter().map(|&(t, l)| (t.0, l)).collect(),
                    rung: b.rung,
                    done: b.done,
                }
            })
            .collect();
        let mut trial_meta: Vec<(u64, usize, Config)> = self
            .trial_meta
            .iter()
            .map(|(t, (b, c))| (t.0, *b, c.clone()))
            .collect();
        trial_meta.sort_by_key(|&(t, _, _)| t);
        SyncShaState {
            config: self.config.clone(),
            brackets,
            trial_meta,
            next_trial: self.next_trial,
            name: self.name.clone(),
        }
    }

    /// Rebuild a scheduler from a state captured by
    /// [`SyncSha::export_state`], with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Panics if the embedded config is invalid (same conditions as
    /// [`SyncSha::new`]).
    pub fn from_state(space: SearchSpace, state: SyncShaState) -> Self {
        SyncSha::from_state_with_sampler(space, state, Box::new(RandomSampler::new()))
    }

    /// Rebuild a scheduler from a captured state with a custom sampler.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SyncSha::from_state`].
    pub fn from_state_with_sampler(
        space: SearchSpace,
        state: SyncShaState,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let mut sha = SyncSha::with_sampler(space, state.config.clone(), sampler);
        sha.brackets = state
            .brackets
            .into_iter()
            .map(|b| Bracket {
                remaining_to_sample: b.remaining_to_sample,
                queue: b.queue.into_iter().map(|(t, c)| (TrialId(t), c)).collect(),
                outstanding: b.outstanding,
                issued: b.issued.into_iter().map(TrialId).collect(),
                results: b
                    .results
                    .into_iter()
                    .map(|(t, l)| (TrialId(t), l))
                    .collect(),
                rung: b.rung,
                done: b.done,
            })
            .collect();
        // The work index is derived data: rebuild it from the restored
        // brackets (old snapshots carry no index fields and need none).
        sha.active = (0..sha.brackets.len())
            .filter(|&i| sha.brackets[i].has_work())
            .collect();
        sha.trial_meta = state
            .trial_meta
            .into_iter()
            .map(|(t, b, c)| (TrialId(t), (b, c)))
            .collect();
        sha.next_trial = state.next_trial;
        sha.name = state.name;
        sha
    }

    /// Re-derive one bracket's membership in the work index after a
    /// mutation.
    fn sync_active(&mut self, bracket_idx: usize) {
        if self.brackets[bracket_idx].has_work() {
            self.active.insert(bracket_idx);
        } else {
            self.active.remove(&bracket_idx);
        }
    }

    fn issue_from(&mut self, bracket_idx: usize, rng: &mut dyn rand::RngCore) -> Job {
        let rung = self.brackets[bracket_idx].rung;
        let (trial, config) = if self.brackets[bracket_idx].remaining_to_sample > 0 {
            self.brackets[bracket_idx].remaining_to_sample -= 1;
            let trial = TrialId(self.next_trial);
            self.next_trial += 1;
            let fidelity = crate::sampler::Fidelity::base(self.config.rung_resource(0));
            let config = self.sampler.propose_at(&self.space, fidelity, rng);
            self.trial_meta.insert(trial, (bracket_idx, config.clone()));
            (trial, config)
        } else {
            self.brackets[bracket_idx]
                .queue
                .pop()
                .expect("issue_from called with work available")
        };
        self.brackets[bracket_idx].outstanding += 1;
        self.brackets[bracket_idx].issued.insert(trial);
        self.sync_active(bracket_idx);
        Job {
            trial,
            config,
            rung,
            resource: self.config.rung_resource(rung),
            bracket: bracket_idx,
            inherit_from: None,
        }
    }

    fn complete_rung(&mut self, bracket_idx: usize) {
        let num_rungs = self.config.num_rungs();
        let eta = self.config.reduction_factor;
        let bracket = &mut self.brackets[bracket_idx];
        let k = (bracket.results.len() as f64 / eta).floor() as usize;
        if bracket.rung + 1 >= num_rungs || k == 0 {
            bracket.done = true;
            bracket.results.clear();
            self.sync_active(bracket_idx);
            return;
        }
        let mut sorted = std::mem::take(&mut bracket.results);
        // Poisoned trials (infinite or NaN loss — a crashed or diverged job)
        // are never promoted; `k` still follows Algorithm 1's |rung|/eta.
        sorted.retain(|&(_, loss)| loss.is_finite());
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        sorted.truncate(k);
        if sorted.is_empty() {
            // Every survivor candidate was poisoned: the bracket cannot
            // continue meaningfully.
            bracket.done = true;
            self.sync_active(bracket_idx);
            return;
        }
        bracket.rung += 1;
        // Pop order is LIFO; reverse so the best survivor is issued first.
        let meta = &self.trial_meta;
        bracket.queue = sorted
            .into_iter()
            .rev()
            .map(|(t, _)| (t, meta[&t].1.clone()))
            .collect();
        self.sync_active(bracket_idx);
    }
}

impl Scheduler for SyncSha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        // The work index holds exactly the brackets with issuable work, so
        // the lowest-index preference of the original linear scan is a
        // single ordered-set lookup.
        if let Some(&idx) = self.active.first() {
            return Decision::Run(self.issue_from(idx, rng));
        }
        if self.config.grow_brackets {
            // Every bracket is blocked (or done): start a new one, exactly
            // like the Falkner et al. scheme.
            self.brackets.push(Bracket::fresh(self.config.num_configs));
            let idx = self.brackets.len() - 1;
            self.sync_active(idx);
            return Decision::Run(self.issue_from(idx, rng));
        }
        if self.all_done() {
            Decision::Finished
        } else {
            Decision::Wait
        }
    }

    fn observe(&mut self, obs: Observation) {
        let Some((bracket_idx, config)) = self.trial_meta.get(&obs.trial).cloned() else {
            return; // unsolicited
        };
        {
            let bracket = &mut self.brackets[bracket_idx];
            if bracket.done || bracket.rung != obs.rung {
                return; // stale report
            }
            if !bracket.issued.remove(&obs.trial) {
                return; // duplicate, or never issued at this rung
            }
            bracket.outstanding -= 1;
            bracket.results.push((obs.trial, obs.loss));
        }
        self.sampler
            .record(&config, obs.rung, obs.resource, obs.loss);
        let bracket = &self.brackets[bracket_idx];
        if bracket.outstanding == 0 && bracket.idle() && !bracket.results.is_empty() {
            self.complete_rung(bracket_idx);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn wait_is_stable(&self) -> bool {
        // `suggest` returns `Wait` only when no bracket has work and
        // growing is off; that check consumes no RNG and mutates nothing,
        // so the answer cannot change until an `observe` lands.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn config_rungs_match_figure1() {
        let cfg = ShaConfig::new(9, 1.0, 9.0, 3.0);
        assert_eq!(cfg.num_rungs(), 3);
        assert_eq!(cfg.rung_resource(0), 1.0);
        assert_eq!(cfg.rung_resource(1), 3.0);
        assert_eq!(cfg.rung_resource(2), 9.0);
        let b1 = cfg.clone().with_stop_rate(1);
        assert_eq!(b1.num_rungs(), 2);
        assert_eq!(b1.rung_resource(0), 3.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_few_configs_is_rejected() {
        let _ = SyncSha::new(space(), ShaConfig::new(8, 1.0, 9.0, 3.0));
    }

    #[test]
    fn runs_one_bracket_to_completion() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut job_count = 0;
        let mut rung_sizes = [0usize; 3];
        loop {
            match sha.suggest(&mut r) {
                Decision::Run(job) => {
                    job_count += 1;
                    rung_sizes[job.rung] += 1;
                    // Deterministic losses: trial id as loss.
                    sha.observe(Observation::for_job(&job, job.trial.0 as f64));
                }
                Decision::Finished => break,
                Decision::Wait => panic!("single worker never needs to wait"),
            }
        }
        // Figure 1 bracket 0: 9 + 3 + 1 = 13 jobs.
        assert_eq!(job_count, 13);
        assert_eq!(rung_sizes, [9, 3, 1]);
        assert!(sha.all_done());
    }

    #[test]
    fn promotes_the_best_configs() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut rung1_trials = Vec::new();
        let mut rung2_trials = Vec::new();
        while let Decision::Run(job) = sha.suggest(&mut r) {
            if job.rung == 1 {
                rung1_trials.push(job.trial.0);
            }
            if job.rung == 2 {
                rung2_trials.push(job.trial.0);
            }
            sha.observe(Observation::for_job(&job, job.trial.0 as f64));
        }
        rung1_trials.sort_unstable();
        assert_eq!(rung1_trials, vec![0, 1, 2], "lowest losses promoted");
        assert_eq!(rung2_trials, vec![0]);
    }

    #[test]
    fn synchronous_barrier_blocks_on_stragglers() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut jobs = Vec::new();
        for _ in 0..9 {
            jobs.push(sha.suggest(&mut r).job().unwrap());
        }
        // Complete 8 of 9; the rung is not finished, so SHA must wait.
        for job in &jobs[..8] {
            sha.observe(Observation::for_job(job, job.trial.0 as f64));
        }
        assert!(sha.suggest(&mut r).is_wait(), "must wait for the straggler");
        sha.observe(Observation::for_job(&jobs[8], 8.0));
        let next = sha.suggest(&mut r).job().unwrap();
        assert_eq!(next.rung, 1);
    }

    #[test]
    fn growing_mode_adds_brackets_when_blocked() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0).growing());
        let mut r = rng();
        let mut jobs = Vec::new();
        for _ in 0..9 {
            jobs.push(sha.suggest(&mut r).job().unwrap());
        }
        // All 9 outstanding: a 10th worker asks for work -> a new bracket.
        let job = sha.suggest(&mut r).job().unwrap();
        assert_eq!(job.bracket, 1);
        assert_eq!(sha.bracket_count(), 2);
        // Old bracket results still promote correctly.
        for job in &jobs {
            sha.observe(Observation::for_job(job, job.trial.0 as f64));
        }
        // First bracket now has rung-1 work; it is preferred over the new
        // bracket's base rung.
        let next = sha.suggest(&mut r).job().unwrap();
        assert_eq!((next.bracket, next.rung), (0, 1));
    }

    #[test]
    fn stale_observations_are_ignored() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let job = sha.suggest(&mut r).job().unwrap();
        sha.observe(Observation::for_job(&job, 1.0));
        sha.observe(Observation::for_job(&job, 0.0)); // duplicate
        sha.observe(Observation::new(TrialId(999), 0, 1.0, 0.0)); // unknown
                                                                  // One result recorded, eight to go.
        assert!(!sha.all_done());
    }

    #[test]
    fn duplicate_reports_do_not_corrupt_the_barrier() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut jobs = Vec::new();
        for _ in 0..9 {
            jobs.push(sha.suggest(&mut r).job().unwrap());
        }
        // Report the first job three times (an executor retrying a job whose
        // first attempt actually landed): the rung must NOT complete until
        // the other eight distinct trials report.
        for _ in 0..3 {
            sha.observe(Observation::for_job(&jobs[0], 0.0));
        }
        assert!(sha.suggest(&mut r).is_wait(), "8 trials still outstanding");
        for job in &jobs[1..] {
            sha.observe(Observation::for_job(job, job.trial.0 as f64));
        }
        let next = sha.suggest(&mut r).job().unwrap();
        assert_eq!(next.rung, 1);
    }

    #[test]
    fn poisoned_trials_are_not_promoted() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut promoted = Vec::new();
        while let Decision::Run(job) = sha.suggest(&mut r) {
            if job.rung > 0 {
                promoted.push(job.trial.0);
            }
            // Trials 0 and 1 crash (INFINITY / NaN); the rest are ranked by
            // id, so the rung-1 survivors must be trials 2, 3, 4.
            let loss = match job.trial.0 {
                0 => f64::INFINITY,
                1 => f64::NAN,
                t => t as f64,
            };
            sha.observe(Observation::for_job(&job, loss));
        }
        assert!(sha.all_done());
        assert!(
            !promoted.contains(&0) && !promoted.contains(&1),
            "poisoned trials promoted: {promoted:?}"
        );
    }

    #[test]
    fn all_poisoned_rung_finishes_the_bracket() {
        let mut sha = SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut count = 0;
        while let Decision::Run(job) = sha.suggest(&mut r) {
            count += 1;
            sha.observe(Observation::for_job(&job, f64::INFINITY));
            assert!(count < 100, "runaway bracket");
        }
        // No finite survivor: the bracket stops after the base rung.
        assert_eq!(count, 9);
        assert!(sha.all_done());
    }

    #[test]
    fn nonsquare_n_still_terminates() {
        // n = 10 with eta = 3: rungs of 10, 3, 1.
        let mut sha = SyncSha::new(space(), ShaConfig::new(10, 1.0, 9.0, 3.0));
        let mut r = rng();
        let mut count = 0;
        while let Decision::Run(job) = sha.suggest(&mut r) {
            count += 1;
            sha.observe(Observation::for_job(&job, job.trial.0 as f64));
            assert!(count < 100, "runaway bracket");
        }
        assert_eq!(count, 14);
    }
}

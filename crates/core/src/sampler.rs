use asha_space::{Config, SearchSpace};

/// The fidelity a proposed configuration will first be evaluated at: the
/// rung index and its resource level. Multi-fidelity samplers (A-BOHB style)
/// use it to condition their model on the rung whose observations are most
/// informative for the proposal; single-fidelity samplers ignore it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Rung index the new configuration enters at (0 for ASHA's bottom rung).
    pub rung: usize,
    /// Resource level of that rung.
    pub resource: f64,
}

impl Fidelity {
    /// Fidelity of the base rung at resource `r`.
    pub fn base(resource: f64) -> Self {
        Fidelity { rung: 0, resource }
    }
}

/// Strategy for proposing new configurations to try in the bottom rung.
///
/// SHA and ASHA sample uniformly at random ([`RandomSampler`]); BOHB swaps in
/// a Tree-structured Parzen Estimator (`asha_baselines::TpeSampler`) — per
/// the paper, "BOHB uses SHA to perform early-stopping and differs only in
/// how configurations are sampled".
pub trait ConfigSampler: Send {
    /// Propose the next configuration to evaluate.
    fn propose(&mut self, space: &SearchSpace, rng: &mut dyn rand::RngCore) -> Config;

    /// Propose the next configuration for evaluation at a known fidelity.
    /// Schedulers call this (not [`ConfigSampler::propose`]) so that
    /// multi-fidelity samplers can condition on the target rung; the default
    /// ignores the fidelity, which keeps single-fidelity samplers (including
    /// [`RandomSampler`]) byte-for-byte identical in RNG consumption to the
    /// plain propose path.
    fn propose_at(
        &mut self,
        space: &SearchSpace,
        fidelity: Fidelity,
        rng: &mut dyn rand::RngCore,
    ) -> Config {
        let _ = fidelity;
        self.propose(space, rng)
    }

    /// Feed back an observed result so adaptive samplers can update their
    /// model. `rung` and `resource` identify the fidelity of the loss.
    fn record(&mut self, config: &Config, rung: usize, resource: f64, loss: f64);

    /// Whether this sampler consumes [`ConfigSampler::record`] calls at all.
    /// Schedulers use this to skip the per-observation config lookup on the
    /// hot path; samplers whose `record` is a no-op return `false`.
    fn wants_reports(&self) -> bool {
        true
    }

    /// Name used to label experiment output (e.g. `"random"`, `"tpe"`).
    fn name(&self) -> &str {
        "sampler"
    }

    /// Serialize the sampler's internal cursor (model state, observation
    /// buffer) for durable snapshots. The format is sampler-defined and
    /// opaque to the caller; stateless samplers return `None` (the default).
    fn export_cursor(&self) -> Option<String> {
        None
    }

    /// Restore a cursor previously produced by
    /// [`ConfigSampler::export_cursor`]. Stateless samplers ignore it (the
    /// default).
    fn restore_cursor(&mut self, _cursor: &str) {}
}

/// Uniform random sampling over the search space — the sampler of SHA, ASHA,
/// Hyperband, and random search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomSampler;

impl RandomSampler {
    /// Create a random sampler.
    pub fn new() -> Self {
        RandomSampler
    }
}

impl ConfigSampler for RandomSampler {
    fn propose(&mut self, space: &SearchSpace, rng: &mut dyn rand::RngCore) -> Config {
        space.sample(rng)
    }

    fn record(&mut self, _config: &Config, _rung: usize, _resource: f64, _loss: f64) {}

    fn wants_reports(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sampler_draws_from_space() {
        let space = SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap();
        let mut s = RandomSampler::new();
        let mut rng = StdRng::seed_from_u64(0);
        let c = s.propose(&space, &mut rng);
        let x = c.float("x", &space).unwrap();
        assert!((0.0..=1.0).contains(&x));
        // record is a no-op but must not panic.
        s.record(&c, 0, 1.0, 0.5);
        assert_eq!(s.name(), "random");
    }

    #[test]
    fn sampler_is_object_safe() {
        let _boxed: Box<dyn ConfigSampler> = Box::new(RandomSampler::new());
    }
}

//! D-ASHA: ASHA with Hyper-Tune's delayed promotion rule.
//!
//! Eager ASHA (Algorithm 2) promotes whenever the best unpromoted trial of a
//! rung ranks in the top `1/eta` — which means a strong configuration that
//! arrives *after* the rung has spent its `floor(len/eta)` quota is promoted
//! anyway, and adversarial arrival orders can over-promote a rung by
//! `O(sqrt(len))`. Hyper-Tune (Li et al., VLDB 2022) observes that those
//! excess promotions spend upper-rung budget on configurations whose rank is
//! only provisional, and *delays* them instead: a rung may promote only while
//! `promoted < floor(len/eta)`, so the promoted fraction never exceeds the
//! exact `1/eta` that synchronous SHA would allot. The held-back trial is
//! promoted as soon as the rung grows another quota slot, keeping the
//! scheduler fully asynchronous — there is still no barrier anywhere.
//!
//! [`DAsha`] is a thin wrapper over [`Asha`] flipping
//! [`PromotionRule::Delayed`](crate::PromotionRule::Delayed) on; it shares
//! ASHA's state schema, indexes, and sampler plumbing, so everything that
//! works on ASHA (durable snapshots, telemetry, samplers) works on D-ASHA
//! unchanged.

use asha_space::{Config, SearchSpace};

use crate::asha::{Asha, AshaConfig};
use crate::rung::{PromotionRule, RungLadder};
use crate::sampler::ConfigSampler;
use crate::scheduler::{Decision, Observation, Scheduler, TrialId};
use crate::state::AshaState;

/// ASHA under the delayed promotion rule (Hyper-Tune's D-ASHA).
///
/// Same inputs, state schema, and sampler support as [`Asha`]; the only
/// behavioural difference is the per-rung promotion quota described in the
/// module docs.
#[derive(Debug)]
pub struct DAsha {
    inner: Asha,
}

impl DAsha {
    /// Create a D-ASHA scheduler with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::new`].
    pub fn new(space: SearchSpace, config: AshaConfig) -> Self {
        let mut inner = Asha::new(space, config);
        inner.set_rule(PromotionRule::Delayed);
        inner.set_name("D-ASHA");
        DAsha { inner }
    }

    /// Create a D-ASHA scheduler with a custom configuration sampler.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::new`].
    pub fn with_sampler(
        space: SearchSpace,
        config: AshaConfig,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let name = if sampler.name() == "random" {
            "D-ASHA".to_owned()
        } else {
            format!("D-ASHA+{}", sampler.name())
        };
        let mut inner = Asha::with_sampler(space, config, sampler);
        inner.set_rule(PromotionRule::Delayed);
        inner.set_name(name);
        DAsha { inner }
    }

    /// Rename the scheduler.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.inner.set_name(name);
    }

    /// The rung ladder (read-only), for analysis and tests.
    pub fn ladder(&self) -> &RungLadder {
        self.inner.ladder()
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &AshaConfig {
        self.inner.config()
    }

    /// Number of distinct trials started so far.
    pub fn trials_started(&self) -> usize {
        self.inner.trials_started()
    }

    /// Number of issued-but-unreported jobs.
    pub fn outstanding_jobs(&self) -> usize {
        self.inner.outstanding_jobs()
    }

    /// The configuration of a trial, if known.
    pub fn trial_config(&self, trial: TrialId) -> Option<&Config> {
        self.inner.trial_config(trial)
    }

    /// Best `(trial, loss)` seen so far.
    pub fn best(&self) -> Option<(TrialId, f64)> {
        self.inner.best()
    }

    /// The attached sampler's name.
    pub fn sampler_name(&self) -> &str {
        self.inner.sampler_name()
    }

    /// The attached sampler's serialized cursor, if it keeps one.
    pub fn export_sampler_cursor(&self) -> Option<String> {
        self.inner.export_sampler_cursor()
    }

    /// Restore a sampler cursor produced by
    /// [`DAsha::export_sampler_cursor`].
    pub fn restore_sampler_cursor(&mut self, cursor: &str) {
        self.inner.restore_sampler_cursor(cursor);
    }

    /// Capture the scheduler's full mutable state. D-ASHA shares ASHA's
    /// state schema; the promotion rule is *not* part of the state — it is
    /// re-established by restoring through [`DAsha::from_state`] (durable
    /// stores tag the scheduler kind alongside the state for exactly this).
    pub fn export_state(&self) -> AshaState {
        self.inner.export_state()
    }

    /// Rebuild a scheduler from a state captured by [`DAsha::export_state`],
    /// with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::from_state`].
    pub fn from_state(space: SearchSpace, state: AshaState) -> Self {
        let mut inner = Asha::from_state(space, state);
        inner.set_rule(PromotionRule::Delayed);
        DAsha { inner }
    }

    /// Rebuild a scheduler from a captured state with a custom sampler. The
    /// sampler's cursor, if any, is restored separately via
    /// [`DAsha::restore_sampler_cursor`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::from_state`].
    pub fn from_state_with_sampler(
        space: SearchSpace,
        state: AshaState,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let mut inner = Asha::from_state_with_sampler(space, state, sampler);
        inner.set_rule(PromotionRule::Delayed);
        DAsha { inner }
    }
}

impl Scheduler for DAsha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        self.inner.suggest(rng)
    }

    fn observe(&mut self, obs: Observation) {
        self.inner.observe(obs);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn wait_is_stable(&self) -> bool {
        self.inner.wait_is_stable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Job;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    fn complete(d: &mut DAsha, job: &Job, loss: f64) {
        d.observe(Observation::for_job(job, loss));
    }

    #[test]
    fn dasha_promotes_like_asha_under_quota() {
        let mut d = DAsha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = StdRng::seed_from_u64(0);
        for loss in [0.3, 0.1, 0.2] {
            let job = d.suggest(&mut r).job().unwrap();
            complete(&mut d, &job, loss);
        }
        let job = d.suggest(&mut r).job().unwrap();
        assert_eq!(job.trial, TrialId(1));
        assert_eq!(job.rung, 1);
        assert_eq!(d.name(), "D-ASHA");
        assert!(d.rule_is_delayed());
    }

    impl DAsha {
        fn rule_is_delayed(&self) -> bool {
            self.inner.rule() == PromotionRule::Delayed
        }
    }

    #[test]
    fn dasha_delays_late_better_arrivals() {
        // Drive both schedulers through the quota corner case: after the
        // bottom rung promotes its floor(len/eta) quota, a strictly better
        // config arrives. Eager ASHA promotes it immediately; D-ASHA grows
        // the bottom rung instead until the quota reopens.
        let mut d = DAsha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = StdRng::seed_from_u64(7);
        for loss in [0.5, 0.6, 0.7] {
            let job = d.suggest(&mut r).job().unwrap();
            complete(&mut d, &job, loss);
        }
        // Promote trial 0 (quota k=1 for len=3).
        let promo = d.suggest(&mut r).job().unwrap();
        assert_eq!((promo.trial, promo.rung), (TrialId(0), 1));
        // A better config lands in the bottom rung.
        let j = d.suggest(&mut r).job().unwrap();
        assert_eq!(j.rung, 0);
        complete(&mut d, &j, 0.1);
        // len=4, k=1, promoted=1: eager ASHA would promote the 0.1 trial
        // here; D-ASHA must keep growing the bottom rung.
        let j = d.suggest(&mut r).job().unwrap();
        assert_eq!(j.rung, 0, "delayed rule must not over-promote");
        complete(&mut d, &j, 0.9);
        let j = d.suggest(&mut r).job().unwrap();
        assert_eq!(j.rung, 0);
        complete(&mut d, &j, 0.9);
        // len=6, k=2 > promoted=1: the held-back trial is promoted now.
        let j = d.suggest(&mut r).job().unwrap();
        assert_eq!(j.rung, 1);
    }

    #[test]
    fn dasha_state_roundtrips_and_keeps_the_rule() {
        let mut d = DAsha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            if let Some(job) = d.suggest(&mut r).job() {
                complete(&mut d, &job, job.trial.0 as f64 * 0.01);
            }
        }
        let state = d.export_state();
        let mut restored = DAsha::from_state(space(), state);
        assert!(restored.rule_is_delayed());
        assert_eq!(restored.name(), d.name());
        // Identical decision streams from the same RNG.
        let mut ra = StdRng::seed_from_u64(11);
        let mut rb = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let a = d.suggest(&mut ra);
            let b = restored.suggest(&mut rb);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            if let (Some(ja), Some(jb)) = (a.job(), b.job()) {
                complete(&mut d, &ja, 0.42);
                complete(&mut restored, &jb, 0.42);
            }
        }
        assert_eq!(
            format!("{:?}", d.export_state()),
            format!("{:?}", restored.export_state())
        );
    }
}

//! Naive linear-scan reference schedulers for differential testing.
//!
//! The production schedulers maintain incremental promotion-candidate
//! indexes (see [`crate::Rung`]) so the hot path stops being O(rung size).
//! The implementations in this module are the *specification*: they make
//! every decision by brute force — sorting the full rung on each query,
//! scanning every bracket linearly — with no caches, heaps, or work
//! indexes, while consuming the RNG stream at exactly the same points.
//! Property tests (`tests/asha_properties.rs`) drive an indexed scheduler
//! and its reference twin through identical hostile event streams and
//! assert bitwise-identical decisions and exported state at every step;
//! any divergence is a bug in the index maintenance.
//!
//! Compiled only for tests and under the `reference` cargo feature so the
//! production binary never carries the slow path.

use std::collections::{HashMap, HashSet};

use asha_space::{Config, SearchSpace};

use crate::budget;
use crate::rung::{PromotionRule, ScanOrder};
use crate::sampler::{ConfigSampler, Fidelity, RandomSampler};
use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};
use crate::state::{AshaState, AsyncHyperbandState, BracketState, RungState, SyncShaState};
use crate::{AshaConfig, HyperbandConfig, ShaConfig};

/// One rung with no indexes: arrival-ordered records and a promoted set.
#[derive(Debug, Clone, Default)]
struct RefRung {
    /// `(trial, loss)` in arrival order, losses NaN-normalized to `+inf`.
    records: Vec<(TrialId, f64)>,
    promoted: Vec<TrialId>,
}

impl RefRung {
    fn record(&mut self, trial: TrialId, loss: f64) {
        if !self.records.iter().any(|&(t, _)| t == trial) {
            let loss = if loss.is_nan() { f64::INFINITY } else { loss };
            self.records.push((trial, loss));
        }
    }

    fn is_promoted(&self, trial: TrialId) -> bool {
        self.promoted.contains(&trial)
    }

    fn mark_promoted(&mut self, trial: TrialId) {
        if self.records.iter().any(|&(t, _)| t == trial) && !self.is_promoted(trial) {
            self.promoted.push(trial);
        }
    }

    /// The spec of `Rung::promotable`, by brute force: sort the whole rung
    /// by `(loss, trial)`, find the first unpromoted trial, and answer yes
    /// iff it ranks inside the top `floor(len/eta)` with a finite loss.
    fn promotable(&self, eta: f64) -> Option<(TrialId, f64)> {
        let k = (self.records.len() as f64 / eta).floor() as usize;
        if k == 0 {
            return None;
        }
        let mut sorted: Vec<(f64, TrialId)> = self.records.iter().map(|&(t, l)| (l, t)).collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (rank, &(loss, trial)) = sorted
            .iter()
            .enumerate()
            .find(|&(_, &(_, t))| !self.is_promoted(t))?;
        if rank < k && loss.is_finite() {
            Some((trial, loss))
        } else {
            None
        }
    }

    /// The spec of `Rung::promotable_ruled`: the delayed rule additionally
    /// requires the promoted count to stay under `floor(len/eta)`.
    fn promotable_ruled(&self, eta: f64, rule: PromotionRule) -> Option<(TrialId, f64)> {
        if rule == PromotionRule::Delayed {
            let k = (self.records.len() as f64 / eta).floor() as usize;
            if self.promoted.len() >= k {
                return None;
            }
        }
        self.promotable(eta)
    }

    fn best(&self) -> Option<(TrialId, f64)> {
        self.records
            .iter()
            .map(|&(t, l)| (l, t))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(l, t)| (t, l))
    }

    fn export(&self) -> RungState {
        RungState {
            records: self.records.iter().map(|&(t, l)| (t.0, l)).collect(),
            promoted: self
                .records
                .iter()
                .filter(|&&(t, _)| self.is_promoted(t))
                .map(|&(t, _)| t.0)
                .collect(),
        }
    }
}

/// Index-free rung ladder with the same geometry as `RungLadder`.
#[derive(Debug, Clone)]
struct RefLadder {
    rungs: Vec<RefRung>,
    min_resource: f64,
    max_resource: f64,
    eta: f64,
    stop_rate: usize,
    max_rung: Option<usize>,
}

impl RefLadder {
    fn new(config: &AshaConfig) -> Self {
        let (max_resource, max_rung) = if config.infinite_horizon {
            (f64::INFINITY, None)
        } else {
            let s_max = (config.max_resource / config.min_resource)
                .log(config.reduction_factor)
                .floor() as usize;
            (config.max_resource, Some(s_max - config.stop_rate))
        };
        let len = max_rung.map_or(1, |m| m + 1);
        RefLadder {
            rungs: vec![RefRung::default(); len],
            min_resource: config.min_resource,
            max_resource,
            eta: config.reduction_factor,
            stop_rate: config.stop_rate,
            max_rung,
        }
    }

    fn resource(&self, rung: usize) -> f64 {
        (self.min_resource * self.eta.powi((self.stop_rate + rung) as i32)).min(self.max_resource)
    }

    fn rung_mut(&mut self, k: usize) -> &mut RefRung {
        if let Some(max) = self.max_rung {
            assert!(k <= max, "rung {k} exceeds finite-horizon top rung {max}");
        } else if k >= self.rungs.len() {
            self.rungs.resize_with(k + 1, RefRung::default);
        }
        &mut self.rungs[k]
    }

    fn find_promotable_ruled(
        &self,
        order: ScanOrder,
        rule: PromotionRule,
    ) -> Option<(TrialId, f64, usize)> {
        let top = match self.max_rung {
            Some(max) => max,
            None => self.rungs.len(),
        };
        let limit = top.min(self.rungs.len());
        let scan = |k: usize| {
            self.rungs[k]
                .promotable_ruled(self.eta, rule)
                .map(|(t, l)| (t, l, k))
        };
        match order {
            ScanOrder::TopDown => (0..limit).rev().find_map(scan),
            ScanOrder::BottomUp => (0..limit).find_map(scan),
        }
    }

    fn best_loss(&self) -> Option<(TrialId, f64)> {
        self.rungs
            .iter()
            .flat_map(|r| r.best())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

/// Linear-scan ASHA: decision-for-decision identical to [`crate::Asha`],
/// implemented with no promotion indexes. Supports the same pluggable
/// samplers as the indexed scheduler (an independent sampler instance fed
/// the identical observation stream proposes identical configurations, so
/// differential twins stay bitwise-equal with adaptive samplers too).
pub struct RefAsha {
    space: SearchSpace,
    config: AshaConfig,
    ladder: RefLadder,
    sampler: Box<dyn ConfigSampler>,
    trial_configs: HashMap<TrialId, Config>,
    outstanding: HashSet<(TrialId, usize)>,
    next_trial: u64,
    trials_started: usize,
    name: String,
    rule: PromotionRule,
}

impl std::fmt::Debug for RefAsha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefAsha")
            .field("config", &self.config)
            .field("trials_started", &self.trials_started)
            .finish_non_exhaustive()
    }
}

impl RefAsha {
    /// Create a reference ASHA scheduler with uniform random sampling.
    pub fn new(space: SearchSpace, config: AshaConfig) -> Self {
        RefAsha::with_sampler(space, config, Box::new(RandomSampler::new()))
    }

    /// Create a reference ASHA scheduler with a custom sampler, mirroring
    /// [`crate::Asha::with_sampler`]'s naming.
    pub fn with_sampler(
        space: SearchSpace,
        config: AshaConfig,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let ladder = RefLadder::new(&config);
        let name = if sampler.name() == "random" {
            "ASHA".to_owned()
        } else {
            format!("ASHA+{}", sampler.name())
        };
        RefAsha {
            space,
            config,
            ladder,
            sampler,
            trial_configs: HashMap::new(),
            outstanding: HashSet::new(),
            next_trial: 0,
            trials_started: 0,
            name,
            rule: PromotionRule::Eager,
        }
    }

    /// The attached sampler's serialized cursor, if it keeps one.
    pub fn export_sampler_cursor(&self) -> Option<String> {
        self.sampler.export_cursor()
    }

    /// Best `(trial, loss)` seen so far, using intermediate losses.
    pub fn best(&self) -> Option<(TrialId, f64)> {
        self.ladder.best_loss()
    }

    /// Export state in exactly [`crate::Asha::export_state`]'s format.
    pub fn export_state(&self) -> AshaState {
        let mut trials: Vec<(u64, Config)> = self
            .trial_configs
            .iter()
            .map(|(t, c)| (t.0, c.clone()))
            .collect();
        trials.sort_by_key(|&(t, _)| t);
        let mut outstanding: Vec<(u64, usize)> =
            self.outstanding.iter().map(|&(t, r)| (t.0, r)).collect();
        outstanding.sort_unstable();
        AshaState {
            config: self.config.clone(),
            rungs: self.ladder.rungs.iter().map(RefRung::export).collect(),
            trials,
            outstanding,
            next_trial: self.next_trial,
            trials_started: self.trials_started,
            name: self.name.clone(),
        }
    }
}

impl Scheduler for RefAsha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        if let Some((trial, _loss, rung)) = self
            .ladder
            .find_promotable_ruled(self.config.scan_order, self.rule)
        {
            self.ladder.rung_mut(rung).mark_promoted(trial);
            let rung = rung + 1;
            self.outstanding.insert((trial, rung));
            return Decision::Run(Job {
                trial,
                config: self.trial_configs[&trial].clone(),
                rung,
                resource: self.ladder.resource(rung),
                bracket: self.config.stop_rate,
                inherit_from: None,
            });
        }
        if let Some(cap) = self.config.max_trials {
            if self.trials_started >= cap {
                return if self.outstanding.is_empty() {
                    Decision::Finished
                } else {
                    Decision::Wait
                };
            }
        }
        let trial = TrialId(self.next_trial);
        self.next_trial += 1;
        self.trials_started += 1;
        let fidelity = Fidelity::base(self.ladder.resource(0));
        let config = self.sampler.propose_at(&self.space, fidelity, rng);
        self.trial_configs.insert(trial, config.clone());
        self.outstanding.insert((trial, 0));
        Decision::Run(Job {
            trial,
            config,
            rung: 0,
            resource: self.ladder.resource(0),
            bracket: self.config.stop_rate,
            inherit_from: None,
        })
    }

    fn observe(&mut self, obs: Observation) {
        if !self.outstanding.remove(&(obs.trial, obs.rung)) {
            return;
        }
        self.ladder.rung_mut(obs.rung).record(obs.trial, obs.loss);
        if self.sampler.wants_reports() {
            if let Some(config) = self.trial_configs.get(&obs.trial) {
                self.sampler
                    .record(config, obs.rung, obs.resource, obs.loss);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Linear-scan D-ASHA: [`RefAsha`] under the brute-force delayed promotion
/// rule — the reference twin of [`crate::DAsha`].
pub struct RefDAsha {
    inner: RefAsha,
}

impl std::fmt::Debug for RefDAsha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefDAsha")
            .field("config", &self.inner.config)
            .field("trials_started", &self.inner.trials_started)
            .finish_non_exhaustive()
    }
}

impl RefDAsha {
    /// Create a reference D-ASHA scheduler with uniform random sampling.
    pub fn new(space: SearchSpace, config: AshaConfig) -> Self {
        RefDAsha::with_sampler(space, config, Box::new(RandomSampler::new()))
    }

    /// Create a reference D-ASHA scheduler with a custom sampler, mirroring
    /// [`crate::DAsha::with_sampler`]'s naming.
    pub fn with_sampler(
        space: SearchSpace,
        config: AshaConfig,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let name = if sampler.name() == "random" {
            "D-ASHA".to_owned()
        } else {
            format!("D-ASHA+{}", sampler.name())
        };
        let mut inner = RefAsha::with_sampler(space, config, sampler);
        inner.rule = PromotionRule::Delayed;
        inner.name = name;
        RefDAsha { inner }
    }

    /// Best `(trial, loss)` seen so far.
    pub fn best(&self) -> Option<(TrialId, f64)> {
        self.inner.best()
    }

    /// The attached sampler's serialized cursor, if it keeps one.
    pub fn export_sampler_cursor(&self) -> Option<String> {
        self.inner.export_sampler_cursor()
    }

    /// Export state in exactly [`crate::DAsha::export_state`]'s format.
    pub fn export_state(&self) -> AshaState {
        self.inner.export_state()
    }
}

impl Scheduler for RefDAsha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        self.inner.suggest(rng)
    }

    fn observe(&mut self, obs: Observation) {
        self.inner.observe(obs);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// One synchronous bracket with no issued-set shortcuts beyond the spec.
#[derive(Debug)]
struct RefBracket {
    remaining_to_sample: usize,
    queue: Vec<(TrialId, Config)>,
    outstanding: usize,
    issued: HashSet<TrialId>,
    results: Vec<(TrialId, f64)>,
    rung: usize,
    done: bool,
}

impl RefBracket {
    fn fresh(num_configs: usize) -> Self {
        RefBracket {
            remaining_to_sample: num_configs,
            queue: Vec::new(),
            outstanding: 0,
            issued: HashSet::new(),
            results: Vec::new(),
            rung: 0,
            done: false,
        }
    }

    fn has_work(&self) -> bool {
        !self.done && (self.remaining_to_sample > 0 || !self.queue.is_empty())
    }

    fn idle(&self) -> bool {
        self.done || (self.remaining_to_sample == 0 && self.queue.is_empty())
    }
}

/// Linear-scan synchronous SHA: decision-for-decision identical to
/// [`crate::SyncSha`], finding issuable brackets by scanning the full
/// bracket list every `suggest` instead of via a work index.
pub struct RefSyncSha {
    space: SearchSpace,
    config: ShaConfig,
    brackets: Vec<RefBracket>,
    trial_meta: HashMap<TrialId, (usize, Config)>,
    next_trial: u64,
    name: String,
}

impl std::fmt::Debug for RefSyncSha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefSyncSha")
            .field("config", &self.config)
            .field("brackets", &self.brackets.len())
            .finish_non_exhaustive()
    }
}

impl RefSyncSha {
    /// Create a reference synchronous SHA scheduler.
    ///
    /// # Panics
    ///
    /// Same configuration preconditions as [`crate::SyncSha::new`].
    pub fn new(space: SearchSpace, config: ShaConfig) -> Self {
        // Reuse the production validation so invalid configs fail the same.
        let _ = crate::SyncSha::new(space.clone(), config.clone());
        let first = RefBracket::fresh(config.num_configs);
        RefSyncSha {
            space,
            config,
            brackets: vec![first],
            trial_meta: HashMap::new(),
            next_trial: 0,
            name: "SHA".to_owned(),
        }
    }

    /// Whether every bracket has run to completion.
    pub fn all_done(&self) -> bool {
        self.brackets.iter().all(|b| b.done)
    }

    /// Export state in exactly [`crate::SyncSha::export_state`]'s format.
    pub fn export_state(&self) -> SyncShaState {
        let brackets = self
            .brackets
            .iter()
            .map(|b| {
                let mut issued: Vec<u64> = b.issued.iter().map(|t| t.0).collect();
                issued.sort_unstable();
                BracketState {
                    remaining_to_sample: b.remaining_to_sample,
                    queue: b.queue.iter().map(|(t, c)| (t.0, c.clone())).collect(),
                    outstanding: b.outstanding,
                    issued,
                    results: b.results.iter().map(|&(t, l)| (t.0, l)).collect(),
                    rung: b.rung,
                    done: b.done,
                }
            })
            .collect();
        let mut trial_meta: Vec<(u64, usize, Config)> = self
            .trial_meta
            .iter()
            .map(|(t, (b, c))| (t.0, *b, c.clone()))
            .collect();
        trial_meta.sort_by_key(|&(t, _, _)| t);
        SyncShaState {
            config: self.config.clone(),
            brackets,
            trial_meta,
            next_trial: self.next_trial,
            name: self.name.clone(),
        }
    }

    fn issue_from(&mut self, bracket_idx: usize, rng: &mut dyn rand::RngCore) -> Job {
        let rung = self.brackets[bracket_idx].rung;
        let (trial, config) = if self.brackets[bracket_idx].remaining_to_sample > 0 {
            self.brackets[bracket_idx].remaining_to_sample -= 1;
            let trial = TrialId(self.next_trial);
            self.next_trial += 1;
            let config = self.space.sample(rng);
            self.trial_meta.insert(trial, (bracket_idx, config.clone()));
            (trial, config)
        } else {
            self.brackets[bracket_idx]
                .queue
                .pop()
                .expect("issue_from called with work available")
        };
        self.brackets[bracket_idx].outstanding += 1;
        self.brackets[bracket_idx].issued.insert(trial);
        Job {
            trial,
            config,
            rung,
            resource: self.config.rung_resource(rung),
            bracket: bracket_idx,
            inherit_from: None,
        }
    }

    fn complete_rung(&mut self, bracket_idx: usize) {
        let num_rungs = self.config.num_rungs();
        let eta = self.config.reduction_factor;
        let bracket = &mut self.brackets[bracket_idx];
        let k = (bracket.results.len() as f64 / eta).floor() as usize;
        if bracket.rung + 1 >= num_rungs || k == 0 {
            bracket.done = true;
            bracket.results.clear();
            return;
        }
        let mut sorted = std::mem::take(&mut bracket.results);
        sorted.retain(|&(_, loss)| loss.is_finite());
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        sorted.truncate(k);
        if sorted.is_empty() {
            bracket.done = true;
            return;
        }
        bracket.rung += 1;
        let meta = &self.trial_meta;
        bracket.queue = sorted
            .into_iter()
            .rev()
            .map(|(t, _)| (t, meta[&t].1.clone()))
            .collect();
    }
}

impl Scheduler for RefSyncSha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        // The original linear scan: first bracket (lowest index) with work.
        if let Some(idx) = (0..self.brackets.len()).find(|&i| self.brackets[i].has_work()) {
            return Decision::Run(self.issue_from(idx, rng));
        }
        if self.config.grow_brackets {
            self.brackets
                .push(RefBracket::fresh(self.config.num_configs));
            let idx = self.brackets.len() - 1;
            return Decision::Run(self.issue_from(idx, rng));
        }
        if self.all_done() {
            Decision::Finished
        } else {
            Decision::Wait
        }
    }

    fn observe(&mut self, obs: Observation) {
        let Some((bracket_idx, _config)) = self.trial_meta.get(&obs.trial).cloned() else {
            return;
        };
        {
            let bracket = &mut self.brackets[bracket_idx];
            if bracket.done || bracket.rung != obs.rung {
                return;
            }
            if !bracket.issued.remove(&obs.trial) {
                return;
            }
            bracket.outstanding -= 1;
            bracket.results.push((obs.trial, obs.loss));
        }
        let bracket = &self.brackets[bracket_idx];
        if bracket.outstanding == 0 && bracket.idle() && !bracket.results.is_empty() {
            self.complete_rung(bracket_idx);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

const BRACKET_STRIDE: u64 = 1 << 40;

/// Linear-scan asynchronous Hyperband: [`RefAsha`] brackets behind the same
/// budget-rotation logic as [`crate::AsyncHyperband`].
pub struct RefAsyncHyperband {
    config: HyperbandConfig,
    brackets: Vec<RefAsha>,
    budgets: Vec<f64>,
    spent: f64,
    current: usize,
    name: String,
}

impl std::fmt::Debug for RefAsyncHyperband {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefAsyncHyperband")
            .field("config", &self.config)
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl RefAsyncHyperband {
    /// Create a reference asynchronous Hyperband scheduler.
    ///
    /// # Panics
    ///
    /// Same configuration preconditions as [`crate::AsyncHyperband::new`].
    pub fn new(space: SearchSpace, config: HyperbandConfig) -> Self {
        let brackets: Vec<RefAsha> = (0..config.num_brackets)
            .map(|s| {
                RefAsha::new(
                    space.clone(),
                    AshaConfig::new(
                        config.min_resource,
                        config.max_resource,
                        config.reduction_factor,
                    )
                    .with_stop_rate(s),
                )
            })
            .collect();
        let budgets: Vec<f64> = (0..config.num_brackets)
            .map(|s| {
                budget::bracket_budget(
                    config.bracket_num_configs(s),
                    config.min_resource,
                    config.max_resource,
                    config.reduction_factor,
                    s,
                )
            })
            .collect();
        RefAsyncHyperband {
            config,
            brackets,
            budgets,
            spent: 0.0,
            current: 0,
            name: "Hyperband (async)".to_owned(),
        }
    }

    /// Export state in [`crate::AsyncHyperband::export_state`]'s format.
    pub fn export_state(&self) -> AsyncHyperbandState {
        AsyncHyperbandState {
            config: self.config.clone(),
            brackets: self.brackets.iter().map(RefAsha::export_state).collect(),
            spent: self.spent,
            current: self.current,
            name: self.name.clone(),
        }
    }
}

impl Scheduler for RefAsyncHyperband {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        if self.spent >= self.budgets[self.current] {
            self.current = (self.current + 1) % self.brackets.len();
            self.spent = 0.0;
        }
        let b = self.current;
        match self.brackets[b].suggest(rng) {
            Decision::Run(mut job) => {
                self.spent += job.resource;
                job.trial = TrialId(job.trial.0 + b as u64 * BRACKET_STRIDE);
                job.bracket = b;
                Decision::Run(job)
            }
            other => other,
        }
    }

    fn observe(&mut self, obs: Observation) {
        let b = (obs.trial.0 / BRACKET_STRIDE) as usize;
        if b >= self.brackets.len() {
            return;
        }
        let local = Observation {
            trial: TrialId(obs.trial.0 % BRACKET_STRIDE),
            ..obs
        };
        self.brackets[b].observe(local);
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    #[test]
    fn ref_asha_matches_indexed_on_a_serial_run() {
        let mut fast = crate::Asha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let mut slow = RefAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        for i in 0..300u64 {
            let a = fast.suggest(&mut rng_a);
            let b = slow.suggest(&mut rng_b);
            assert_eq!(a, b, "diverged at step {i}");
            if let Decision::Run(job) = a {
                let loss = ((i * 37) % 101) as f64;
                fast.observe(Observation::for_job(&job, loss));
                slow.observe(Observation::for_job(&job, loss));
            }
        }
        assert_eq!(fast.export_state(), slow.export_state());
    }

    #[test]
    fn ref_dasha_matches_indexed_on_a_serial_run() {
        let mut fast = crate::DAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let mut slow = RefDAsha::new(space(), AshaConfig::new(1.0, 27.0, 3.0));
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        for i in 0..300u64 {
            let a = fast.suggest(&mut rng_a);
            let b = slow.suggest(&mut rng_b);
            assert_eq!(a, b, "diverged at step {i}");
            if let Decision::Run(job) = a {
                let loss = ((i * 53) % 89) as f64;
                fast.observe(Observation::for_job(&job, loss));
                slow.observe(Observation::for_job(&job, loss));
            }
        }
        assert_eq!(fast.export_state(), slow.export_state());
    }

    #[test]
    fn ref_sync_sha_matches_indexed_to_completion() {
        let mut fast = crate::SyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut slow = RefSyncSha::new(space(), ShaConfig::new(9, 1.0, 9.0, 3.0));
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        loop {
            let a = fast.suggest(&mut rng_a);
            let b = slow.suggest(&mut rng_b);
            assert_eq!(a, b);
            match a {
                Decision::Run(job) => {
                    let loss = job.trial.0 as f64;
                    fast.observe(Observation::for_job(&job, loss));
                    slow.observe(Observation::for_job(&job, loss));
                }
                _ => break,
            }
        }
        assert_eq!(fast.export_state(), slow.export_state());
        assert!(fast.all_done() && slow.all_done());
    }
}

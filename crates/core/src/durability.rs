//! The workspace-wide durability knob.
//!
//! Two layers grew their own overlapping dials: `asha-obs`'s `JsonlWriter`
//! had a two-state `Durability` (flush vs. fsync per commit) and
//! `asha-store`'s WAL had a three-state `SyncPolicy` (never / every N /
//! always). They answer the same question — *when does appended data become
//! crash-durable?* — so both now share this one type. The old names remain
//! as deprecated aliases for one release (`asha_store::SyncPolicy`,
//! `asha_obs::Durability` re-export).
//!
//! Semantics, common to every writer that takes a [`Durability`]:
//!
//! * Appends always reach the OS (flushed through userspace buffers) at
//!   each commit point, so a *process* crash loses at most a torn tail.
//! * `fsync` cadence is what the variant controls: it bounds what a
//!   *machine* crash can lose.

use crate::error::Error;

/// When appended records become crash-durable (`fsync` cadence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Flush to the OS at every commit point but never fsync; rely on OS
    /// writeback. Fastest; a machine crash loses up to the writeback
    /// window.
    Flush,
    /// Fsync after every N committed records. The middle ground: bounded
    /// loss window, amortized fsync cost.
    EveryN(usize),
    /// Fsync at every commit point. Slowest, loses nothing.
    Sync,
}

impl Durability {
    /// Old `asha_store::SyncPolicy::Never` spelling.
    #[deprecated(note = "renamed to `Durability::Flush`")]
    #[allow(non_upper_case_globals)]
    pub const Never: Durability = Durability::Flush;

    /// Old `asha_store::SyncPolicy::Always` spelling.
    #[deprecated(note = "renamed to `Durability::Sync`")]
    #[allow(non_upper_case_globals)]
    pub const Always: Durability = Durability::Sync;

    /// A validating builder; defaults match [`Durability::default`].
    pub fn builder() -> DurabilityBuilder {
        DurabilityBuilder {
            mode: Durability::default(),
        }
    }

    /// Whether an fsync is due after a commit point, given how many records
    /// were committed since the last fsync (including the current one).
    pub fn fsync_due(&self, since_sync: usize) -> bool {
        match self {
            Durability::Flush => false,
            Durability::EveryN(n) => since_sync >= (*n).max(1),
            Durability::Sync => true,
        }
    }

    /// Stable lowercase name (`"flush"`, `"every_n"`, `"sync"`).
    pub fn name(&self) -> &'static str {
        match self {
            Durability::Flush => "flush",
            Durability::EveryN(_) => "every_n",
            Durability::Sync => "sync",
        }
    }
}

impl Default for Durability {
    /// Fsync every 64 records — the WAL's historical default.
    fn default() -> Self {
        Durability::EveryN(64)
    }
}

/// Builder for [`Durability`]; see [`Durability::builder`].
///
/// ```
/// use asha_core::Durability;
///
/// let d = Durability::builder().fsync_every(16).build()?;
/// assert_eq!(d, Durability::EveryN(16));
/// assert!(Durability::builder().fsync_every(0).build().is_err());
/// # Ok::<(), asha_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DurabilityBuilder {
    mode: Durability,
}

impl DurabilityBuilder {
    /// Never fsync; flush to the OS only.
    pub fn flush_only(mut self) -> Self {
        self.mode = Durability::Flush;
        self
    }

    /// Fsync every `n` records (must end up positive).
    pub fn fsync_every(mut self, n: usize) -> Self {
        self.mode = Durability::EveryN(n);
        self
    }

    /// Fsync at every commit point.
    pub fn fsync_always(mut self) -> Self {
        self.mode = Durability::Sync;
        self
    }

    /// Validate and produce the durability mode.
    pub fn build(self) -> Result<Durability, Error> {
        if let Durability::EveryN(0) = self.mode {
            return Err(Error::config("fsync cadence must be positive"));
        }
        Ok(self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_cadence() {
        assert!(!Durability::Flush.fsync_due(1_000_000));
        assert!(Durability::Sync.fsync_due(1));
        let every4 = Durability::EveryN(4);
        assert!(!every4.fsync_due(3));
        assert!(every4.fsync_due(4));
        // A zero cadence degrades to "every record", not a division hazard.
        assert!(Durability::EveryN(0).fsync_due(1));
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            Durability::builder().flush_only().build().unwrap(),
            Durability::Flush
        );
        assert_eq!(
            Durability::builder().fsync_always().build().unwrap(),
            Durability::Sync
        );
        assert!(Durability::builder().fsync_every(0).build().is_err());
        assert_eq!(
            Durability::builder().build().unwrap(),
            Durability::default()
        );
    }

    #[test]
    #[allow(deprecated)]
    fn old_spellings_still_name_the_same_modes() {
        assert_eq!(Durability::Never, Durability::Flush);
        assert_eq!(Durability::Always, Durability::Sync);
    }
}

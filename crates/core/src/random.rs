//! Random search: the embarrassingly parallel baseline. Every configuration
//! is trained for the full maximum resource `R`.

use asha_space::SearchSpace;

use crate::sampler::{ConfigSampler, RandomSampler};
use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};

/// Random search over a search space, training every sampled configuration
/// to the maximum resource.
pub struct RandomSearch {
    space: SearchSpace,
    max_resource: f64,
    sampler: Box<dyn ConfigSampler>,
    next_trial: u64,
    completed: usize,
    best_loss: f64,
    name: String,
}

impl std::fmt::Debug for RandomSearch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomSearch")
            .field("max_resource", &self.max_resource)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

impl RandomSearch {
    /// Create a random-search scheduler training each configuration for
    /// `max_resource`.
    ///
    /// # Panics
    ///
    /// Panics if `max_resource` is not positive.
    pub fn new(space: SearchSpace, max_resource: f64) -> Self {
        assert!(max_resource > 0.0, "maximum resource must be positive");
        RandomSearch {
            space,
            max_resource,
            sampler: Box::new(RandomSampler::new()),
            next_trial: 0,
            completed: 0,
            best_loss: f64::INFINITY,
            name: "Random".to_owned(),
        }
    }

    /// Number of completed evaluations.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Best loss observed so far (`INFINITY` before the first completion).
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }
}

impl Scheduler for RandomSearch {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        let trial = TrialId(self.next_trial);
        self.next_trial += 1;
        Decision::Run(Job {
            trial,
            config: self.sampler.propose(&self.space, rng),
            rung: 0,
            resource: self.max_resource,
            bracket: 0,
            inherit_from: None,
        })
    }

    fn observe(&mut self, obs: Observation) {
        self.completed += 1;
        if obs.loss < self.best_loss {
            self.best_loss = obs.loss;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_runs_full_budget() {
        let space = SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap();
        let mut rs = RandomSearch::new(space, 100.0);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..10 {
            let job = rs.suggest(&mut rng).job().unwrap();
            assert_eq!(job.resource, 100.0);
            assert_eq!(job.rung, 0);
            assert_eq!(job.trial, TrialId(i));
            rs.observe(Observation::for_job(&job, 1.0 / (i + 1) as f64));
        }
        assert_eq!(rs.completed(), 10);
        assert!((rs.best_loss() - 0.1).abs() < 1e-12);
        assert_eq!(rs.name(), "Random");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let space = SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap();
        let _ = RandomSearch::new(space, 0.0);
    }
}

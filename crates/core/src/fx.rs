//! A minimal, deterministic Fx-style hasher for hot-path integer keys.
//!
//! The scheduler's inner maps are keyed by [`TrialId`](crate::TrialId)s and
//! small tuples of integers. The standard library's default SipHash spends
//! more time hashing than the map spends probing for such keys, and its
//! per-process random seed buys nothing here: every map whose contents reach
//! serialization is sorted first (the determinism contract), so iteration
//! order is never observable. This multiplicative hasher (the `rustc-hash`
//! design) folds each 8-byte word with a rotate-xor-multiply, which is
//! enough diffusion for sequential trial ids and runs in a couple of cycles.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] — for hot-path maps with integer keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`] — for hot-path sets with integer keys.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher behind [`FxHashMap`]/[`FxHashSet`]: deterministic (no random
/// state), word-at-a-time multiplicative mixing.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn is_deterministic_across_builders() {
        let a = BuildHasherDefault::<FxHasher>::default();
        let b = BuildHasherDefault::<FxHasher>::default();
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash_one(key), b.hash_one(key));
        }
    }

    #[test]
    fn sequential_keys_spread() {
        // Sequential trial ids must not collapse onto a few buckets.
        let builder = BuildHasherDefault::<FxHasher>::default();
        let mut low_bits = std::collections::HashSet::new();
        for key in 0u64..256 {
            low_bits.insert(builder.hash_one(key) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn byte_slices_hash_by_word() {
        let mut h = FxHasher::default();
        h.write(b"trial-id-bytes");
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(b"trial-id-bytez");
        assert_ne!(full, h2.finish());
    }
}

//! The unified error type every asha crate's fallible surface converges on.
//!
//! Four PRs of growth left the workspace with three error dialects — ad-hoc
//! `Result<_, String>` in codecs and parsers, a crate-local `StoreError`
//! enum in `asha-store`, and panics in config constructors. This module
//! replaces all of them with one [`Error`] value: a machine-matchable
//! [`ErrorKind`], a human-readable message, an optional filesystem path,
//! and a context chain that call sites push onto as the error propagates
//! upward (outermost context first, like `anyhow`).
//!
//! `From` impls make `?` work across crate boundaries: `std::io::Error`
//! converts with [`ErrorKind::Io`], and bare `String`/`&str` messages (the
//! legacy codec dialect) convert with [`ErrorKind::Codec`], so hand-rolled
//! JSON decoders keep their terse `ok_or("missing field")?` style while
//! surfacing a real error type.
//!
//! ```
//! use asha_core::error::{Error, ErrorKind, ResultContext};
//!
//! fn parse(text: &str) -> Result<u64, Error> {
//!     text.trim().parse::<u64>().map_err(|e| Error::codec(e.to_string()))
//! }
//!
//! let err = parse("nope").context("reading worker count").unwrap_err();
//! assert_eq!(err.kind(), ErrorKind::Codec);
//! assert!(err.to_string().starts_with("reading worker count: "));
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

/// Broad category of an [`Error`], for programmatic matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// An underlying I/O operation (filesystem or socket) failed.
    Io,
    /// Stored or received data exists but violates its schema.
    Corrupt,
    /// A required file, experiment, or entity is absent.
    Missing,
    /// An operation does not apply to the current state (duplicate create,
    /// pausing a stopped experiment, ...).
    Invalid,
    /// Encoding or decoding a persisted/wire value failed.
    Codec,
    /// A wire-protocol violation: malformed, oversized, or torn frame,
    /// unsupported version, or an unexpected reply.
    Protocol,
    /// A configuration value failed validation.
    Config,
}

impl ErrorKind {
    /// Stable lowercase name (used on the wire and in logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Io => "io",
            ErrorKind::Corrupt => "corrupt",
            ErrorKind::Missing => "missing",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Codec => "codec",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Config => "config",
        }
    }

    /// Parse a kind name written by [`ErrorKind::as_str`]. Unknown names
    /// (e.g. from a newer peer) fall back to [`ErrorKind::Invalid`].
    pub fn parse(s: &str) -> Self {
        match s {
            "io" => ErrorKind::Io,
            "corrupt" => ErrorKind::Corrupt,
            "missing" => ErrorKind::Missing,
            "codec" => ErrorKind::Codec,
            "protocol" => ErrorKind::Protocol,
            "config" => ErrorKind::Config,
            _ => ErrorKind::Invalid,
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The unified asha error: kind + message + optional path + context chain.
///
/// Construct one with the kind-named constructors ([`Error::io`],
/// [`Error::corrupt`], [`Error::missing`], [`Error::invalid`],
/// [`Error::codec`], [`Error::protocol`], [`Error::config`]) and add caller
/// context with [`Error::context`] or the [`ResultContext`] extension
/// trait as it propagates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    path: Option<PathBuf>,
    /// Outermost context first.
    context: Vec<String>,
}

impl Error {
    /// A new error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error {
            kind,
            message: message.into(),
            path: None,
            context: Vec::new(),
        }
    }

    /// An [`ErrorKind::Io`] error for an operation on `path`.
    pub fn io(path: &Path, err: std::io::Error) -> Self {
        Error::new(ErrorKind::Io, err.to_string()).with_path(path)
    }

    /// An [`ErrorKind::Corrupt`] error for the file at `path`.
    pub fn corrupt(path: &Path, message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Corrupt, message).with_path(path)
    }

    /// An [`ErrorKind::Missing`] error: `what` was looked for and absent.
    pub fn missing(what: impl Into<String>) -> Self {
        Error::new(ErrorKind::Missing, what)
    }

    /// An [`ErrorKind::Invalid`] error.
    pub fn invalid(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Invalid, message)
    }

    /// An [`ErrorKind::Codec`] error.
    pub fn codec(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Codec, message)
    }

    /// An [`ErrorKind::Protocol`] error.
    pub fn protocol(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Protocol, message)
    }

    /// An [`ErrorKind::Config`] error.
    pub fn config(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Config, message)
    }

    /// Attach the filesystem path the error concerns.
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Push a layer of caller context; the most recently added context
    /// renders outermost.
    pub fn context(mut self, ctx: impl Into<String>) -> Self {
        self.context.insert(0, ctx.into());
        self
    }

    /// Recast as [`ErrorKind::Corrupt`] at `path`, keeping the message and
    /// context chain — for wrapping decode failures once the offending file
    /// is known.
    pub fn corrupt_at(mut self, path: &Path) -> Self {
        self.kind = ErrorKind::Corrupt;
        self.path = Some(path.to_owned());
        self
    }

    /// The error's category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The innermost message (no context, no path).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The filesystem path the error concerns, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The context chain, outermost first.
    pub fn context_chain(&self) -> &[String] {
        &self.context
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for ctx in &self.context {
            write!(f, "{ctx}: ")?;
        }
        match self.kind {
            ErrorKind::Io => {}
            ErrorKind::Corrupt => write!(f, "corrupt: ")?,
            ErrorKind::Missing => write!(f, "not found: ")?,
            ErrorKind::Invalid => write!(f, "invalid: ")?,
            ErrorKind::Codec => write!(f, "decode: ")?,
            ErrorKind::Protocol => write!(f, "protocol: ")?,
            ErrorKind::Config => write!(f, "config: ")?,
        }
        if let Some(path) = &self.path {
            write!(f, "{}: ", path.display())?;
        }
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::new(ErrorKind::Io, err.to_string())
    }
}

impl From<String> for Error {
    /// Bare-`String` errors are the legacy codec dialect; they convert as
    /// [`ErrorKind::Codec`] so `?` keeps working in hand-rolled decoders.
    fn from(message: String) -> Self {
        Error::codec(message)
    }
}

impl From<&str> for Error {
    fn from(message: &str) -> Self {
        Error::codec(message)
    }
}

/// Extension adding [`Error::context`] directly on `Result`.
pub trait ResultContext<T> {
    /// Wrap any error with a fixed layer of context.
    fn context(self, ctx: impl Into<String>) -> Result<T, Error>;
    /// Wrap any error with lazily built context.
    fn with_context<F: FnOnce() -> String>(self, f: F) -> Result<T, Error>;
}

impl<T, E: Into<Error>> ResultContext<T> for Result<T, E> {
    fn context(self, ctx: impl Into<String>) -> Result<T, Error> {
        self.map_err(|e| e.into().context(ctx))
    }

    fn with_context<F: FnOnce() -> String>(self, f: F) -> Result<T, Error> {
        self.map_err(|e| e.into().context(f()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_context_kind_path_message() {
        let err = Error::corrupt(Path::new("/tmp/wal.jsonl"), "bad line")
            .context("recovering experiment \"demo\"");
        assert_eq!(
            err.to_string(),
            "recovering experiment \"demo\": corrupt: /tmp/wal.jsonl: bad line"
        );
        assert_eq!(err.kind(), ErrorKind::Corrupt);
        assert_eq!(err.path(), Some(Path::new("/tmp/wal.jsonl")));
    }

    #[test]
    fn string_errors_convert_as_codec() {
        fn inner() -> Result<(), String> {
            Err("missing field".to_owned())
        }
        fn outer() -> Result<(), Error> {
            inner()?;
            Ok(())
        }
        let err = outer().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Codec);
        assert_eq!(err.message(), "missing field");
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in [
            ErrorKind::Io,
            ErrorKind::Corrupt,
            ErrorKind::Missing,
            ErrorKind::Invalid,
            ErrorKind::Codec,
            ErrorKind::Protocol,
            ErrorKind::Config,
        ] {
            assert_eq!(ErrorKind::parse(kind.as_str()), kind);
        }
        assert_eq!(ErrorKind::parse("from-the-future"), ErrorKind::Invalid);
    }
}

//! The Asynchronous Successive Halving Algorithm (ASHA) and its relatives.
//!
//! This crate implements the scheduling core of *Li et al., "A System for
//! Massively Parallel Hyperparameter Tuning" (MLSys 2020)*:
//!
//! * [`Asha`] — Algorithm 2 of the paper: promote a configuration to the
//!   next rung whenever possible; otherwise grow the bottom rung.
//! * [`DAsha`] — ASHA under Hyper-Tune's delayed promotion rule: per-rung
//!   promotions never exceed the exact `1/eta` quota.
//! * [`SyncSha`] — Algorithm 1, the synchronous Successive Halving
//!   Algorithm, including the bracket-growing parallelization of Falkner
//!   et al. (2018) that the paper compares against.
//! * [`Hyperband`] / [`AsyncHyperband`] — loop over SHA/ASHA brackets with
//!   different early-stopping rates.
//! * [`RandomSearch`] — the embarrassingly parallel baseline.
//! * [`budget`] — the closed-form promotion/budget tables of Figure 1 and
//!   the wall-clock bounds of Section 3.2.
//! * [`telemetry`] — the structured-event vocabulary (suggest / promote /
//!   grow_bottom / job lifecycle / faults), the zero-cost [`Recorder`] sink
//!   both execution layers emit into, and the [`InstrumentedScheduler`]
//!   decorator; collection and reporting live in `asha-obs`.
//! * [`error`] — the unified [`Error`] type (kind + context chain) every
//!   fallible surface in the workspace converges on.
//!
//! All schedulers implement the pull-based [`Scheduler`] trait, so the same
//! implementation runs under the discrete-event simulator (`asha-sim`), the
//! real thread-pool executor (`asha-exec`), and plain unit tests.
//!
//! # Examples
//!
//! Drive ASHA by hand for a few steps:
//!
//! ```
//! use asha_core::{Asha, AshaConfig, Decision, Observation, Scheduler};
//! use asha_space::{Scale, SearchSpace};
//! use rand::SeedableRng;
//!
//! let space = SearchSpace::builder()
//!     .continuous("lr", 1e-4, 1.0, Scale::Log)
//!     .build()?;
//! let mut asha = Asha::new(space, AshaConfig::new(1.0, 9.0, 3.0));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//!
//! // Nothing has run yet, so the first job grows the bottom rung.
//! let job = match asha.suggest(&mut rng) {
//!     Decision::Run(job) => job,
//!     other => panic!("expected a job, got {other:?}"),
//! };
//! assert_eq!(job.rung, 0);
//! asha.observe(Observation::new(job.trial, job.rung, job.resource, 0.5));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asha;
pub mod budget;
mod dasha;
pub mod durability;
pub mod error;
pub mod fx;
mod hyperband;
mod random;
#[cfg(any(test, feature = "reference"))]
pub mod reference;
mod rung;
mod sampler;
mod scheduler;
mod sha;
pub mod state;
pub mod telemetry;

pub use crate::asha::{Asha, AshaConfig};
pub use crate::dasha::DAsha;
pub use crate::durability::{Durability, DurabilityBuilder};
pub use crate::error::{Error, ErrorKind, ResultContext};
pub use crate::fx::{FxHashMap, FxHashSet};
pub use crate::hyperband::{AsyncHyperband, Hyperband, HyperbandConfig};
pub use crate::random::RandomSearch;
pub use crate::rung::{PromotionRule, Rung, RungLadder, ScanOrder};
pub use crate::sampler::{ConfigSampler, Fidelity, RandomSampler};
pub use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};
pub use crate::sha::{ShaConfig, SyncSha};
pub use crate::state::{AshaState, AsyncHyperbandState, BracketState, RungState, SyncShaState};
pub use crate::telemetry::{
    DropCause, Event, EventKind, IdleKind, InstrumentedScheduler, NoopRecorder, Recorder,
};

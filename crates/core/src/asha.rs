//! The Asynchronous Successive Halving Algorithm (Algorithm 2 of the paper).

use asha_space::{Config, SearchSpace};

use crate::fx::{FxHashMap, FxHashSet};

use crate::rung::{PromotionRule, RungLadder, ScanOrder};
use crate::sampler::{ConfigSampler, Fidelity, RandomSampler};
use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};
use crate::state::{AshaState, RungState};

/// Configuration of an [`Asha`] scheduler.
///
/// Mirrors the inputs of Algorithm 2: minimum resource `r`, maximum resource
/// `R`, reduction factor `eta`, and minimum early-stopping rate `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct AshaConfig {
    /// Minimum resource `r` allocated at the base rung (before the `eta^s`
    /// shift from the early-stopping rate).
    pub min_resource: f64,
    /// Maximum resource `R` a single trial may consume. Ignored in the
    /// infinite horizon.
    pub max_resource: f64,
    /// Reduction factor `eta >= 2`; each rung keeps the top `1/eta`.
    pub reduction_factor: f64,
    /// Early-stopping rate `s`: the base rung trains for `r * eta^s`.
    pub stop_rate: usize,
    /// Run without a top rung (Section 3.3's infinite-horizon variant).
    pub infinite_horizon: bool,
    /// Optional cap on the number of trials added to the bottom rung. When
    /// the cap is reached and nothing is promotable, `suggest` returns
    /// [`Decision::Wait`] (and [`Decision::Finished`] once every trial has
    /// reached the top rung).
    pub max_trials: Option<usize>,
    /// Rung visiting order of the promotion scan. Algorithm 2 prescribes
    /// top-down; bottom-up exists for the ablation study.
    pub scan_order: ScanOrder,
}

impl AshaConfig {
    /// Standard finite-horizon configuration with `s = 0` (the paper's
    /// recommended aggressive early-stopping rate).
    pub fn new(min_resource: f64, max_resource: f64, reduction_factor: f64) -> Self {
        AshaConfig {
            min_resource,
            max_resource,
            reduction_factor,
            stop_rate: 0,
            infinite_horizon: false,
            max_trials: None,
            scan_order: ScanOrder::TopDown,
        }
    }

    /// Set the early-stopping rate `s`.
    pub fn with_stop_rate(mut self, stop_rate: usize) -> Self {
        self.stop_rate = stop_rate;
        self
    }

    /// Cap the number of distinct trials.
    pub fn with_max_trials(mut self, max_trials: usize) -> Self {
        self.max_trials = Some(max_trials);
        self
    }

    /// Switch to the infinite horizon (no top rung).
    pub fn infinite(mut self) -> Self {
        self.infinite_horizon = true;
        self
    }

    /// Use a non-default promotion scan order (ablation knob).
    pub fn with_scan_order(mut self, scan_order: ScanOrder) -> Self {
        self.scan_order = scan_order;
        self
    }
}

/// Asynchronous Successive Halving (ASHA), Algorithm 2 of the paper.
///
/// Every call to [`Scheduler::suggest`] runs the `get_job` procedure: scan
/// the rungs from top to bottom for a configuration in the top `1/eta` of
/// its rung that has not yet been promoted; promote the best such
/// configuration one rung up, or grow the bottom rung with a freshly sampled
/// configuration if no promotion is possible. There is no synchronization
/// barrier anywhere, which is what makes the algorithm robust to stragglers
/// and dropped jobs.
pub struct Asha {
    space: SearchSpace,
    config: AshaConfig,
    ladder: RungLadder,
    sampler: Box<dyn ConfigSampler>,
    trial_configs: FxHashMap<TrialId, Config>,
    outstanding: FxHashSet<(TrialId, usize)>,
    next_trial: u64,
    trials_started: usize,
    name: String,
    rule: PromotionRule,
}

impl std::fmt::Debug for Asha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Asha")
            .field("config", &self.config)
            .field("trials_started", &self.trials_started)
            .field("outstanding", &self.outstanding.len())
            .finish_non_exhaustive()
    }
}

impl Asha {
    /// Create an ASHA scheduler with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (`eta < 2`, non-positive resources,
    /// or `s > log_eta(R/r)`); see [`RungLadder::finite`].
    pub fn new(space: SearchSpace, config: AshaConfig) -> Self {
        Asha::with_sampler(space, config, Box::new(RandomSampler::new()))
    }

    /// Create an ASHA scheduler with a custom configuration sampler (e.g.
    /// BOHB's TPE).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::new`].
    pub fn with_sampler(
        space: SearchSpace,
        config: AshaConfig,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let ladder = if config.infinite_horizon {
            RungLadder::infinite(
                config.min_resource,
                config.reduction_factor,
                config.stop_rate,
            )
        } else {
            RungLadder::finite(
                config.min_resource,
                config.max_resource,
                config.reduction_factor,
                config.stop_rate,
            )
        };
        let name = if sampler.name() == "random" {
            "ASHA".to_owned()
        } else {
            format!("ASHA+{}", sampler.name())
        };
        Asha {
            space,
            config,
            ladder,
            sampler,
            trial_configs: FxHashMap::default(),
            outstanding: FxHashSet::default(),
            next_trial: 0,
            trials_started: 0,
            name,
            rule: PromotionRule::Eager,
        }
    }

    /// Switch the promotion rule (used by the D-ASHA wrapper; Algorithm 2's
    /// eager rule is the default).
    pub(crate) fn set_rule(&mut self, rule: PromotionRule) {
        self.rule = rule;
    }

    /// The promotion rule in effect.
    pub fn rule(&self) -> PromotionRule {
        self.rule
    }

    /// Rename the scheduler (used when ASHA is embedded in a larger method).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The rung ladder (read-only), for analysis and tests.
    pub fn ladder(&self) -> &RungLadder {
        &self.ladder
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &AshaConfig {
        &self.config
    }

    /// Number of distinct trials started so far.
    pub fn trials_started(&self) -> usize {
        self.trials_started
    }

    /// Number of issued-but-unreported jobs.
    pub fn outstanding_jobs(&self) -> usize {
        self.outstanding.len()
    }

    /// The configuration of a trial, if known.
    pub fn trial_config(&self, trial: TrialId) -> Option<&Config> {
        self.trial_configs.get(&trial)
    }

    /// Best `(trial, loss)` seen so far, using intermediate losses from every
    /// rung (Section 3.3).
    pub fn best(&self) -> Option<(TrialId, f64)> {
        self.ladder.best_loss()
    }

    /// The attached sampler's name (`"random"`, `"tpe"`, ...).
    pub fn sampler_name(&self) -> &str {
        self.sampler.name()
    }

    /// The attached sampler's serialized cursor, if it keeps one (see
    /// [`ConfigSampler::export_cursor`]). Durable stores persist this next
    /// to [`Asha::export_state`] so adaptive samplers survive recovery warm.
    pub fn export_sampler_cursor(&self) -> Option<String> {
        self.sampler.export_cursor()
    }

    /// Restore a sampler cursor previously produced by
    /// [`Asha::export_sampler_cursor`].
    pub fn restore_sampler_cursor(&mut self, cursor: &str) {
        self.sampler.restore_cursor(cursor);
    }

    /// Capture the scheduler's full mutable state as plain data (see
    /// [`crate::state`]). Restoring it with [`Asha::from_state`] yields a
    /// scheduler that makes identical decisions given the same RNG stream.
    pub fn export_state(&self) -> AshaState {
        let mut trials: Vec<(u64, Config)> = self
            .trial_configs
            .iter()
            .map(|(t, c)| (t.0, c.clone()))
            .collect();
        trials.sort_by_key(|&(t, _)| t);
        let mut outstanding: Vec<(u64, usize)> =
            self.outstanding.iter().map(|&(t, r)| (t.0, r)).collect();
        outstanding.sort_unstable();
        AshaState {
            config: self.config.clone(),
            rungs: self.ladder.rungs().iter().map(RungState::of).collect(),
            trials,
            outstanding,
            next_trial: self.next_trial,
            trials_started: self.trials_started,
            name: self.name.clone(),
        }
    }

    /// Rebuild a scheduler from a state captured by [`Asha::export_state`],
    /// with uniform random sampling.
    ///
    /// # Panics
    ///
    /// Panics if the embedded config is invalid (same conditions as
    /// [`Asha::new`]).
    pub fn from_state(space: SearchSpace, state: AshaState) -> Self {
        Asha::from_state_with_sampler(space, state, Box::new(RandomSampler::new()))
    }

    /// Rebuild a scheduler from a captured state with a custom sampler. The
    /// sampler's own cursor, if any, is restored separately via
    /// [`ConfigSampler::restore_cursor`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`Asha::from_state`].
    pub fn from_state_with_sampler(
        space: SearchSpace,
        state: AshaState,
        sampler: Box<dyn ConfigSampler>,
    ) -> Self {
        let mut asha = Asha::with_sampler(space, state.config.clone(), sampler);
        for (k, rung) in state.rungs.iter().enumerate() {
            rung.replay_into(&mut asha.ladder, k);
        }
        // Infinite-horizon ladders grow on demand; force the restored ladder
        // to the snapshot's length even if trailing rungs are empty.
        if state.config.infinite_horizon && !state.rungs.is_empty() {
            asha.ladder.rung_mut(state.rungs.len() - 1);
        }
        asha.trial_configs = state
            .trials
            .into_iter()
            .map(|(t, c)| (TrialId(t), c))
            .collect();
        asha.outstanding = state
            .outstanding
            .into_iter()
            .map(|(t, r)| (TrialId(t), r))
            .collect();
        asha.next_trial = state.next_trial;
        asha.trials_started = state.trials_started;
        asha.name = state.name;
        asha
    }

    fn promote(&mut self, trial: TrialId, from_rung: usize) -> Job {
        self.ladder.mark_promoted(from_rung, trial);
        let rung = from_rung + 1;
        let job = Job {
            trial,
            config: self.trial_configs[&trial].clone(),
            rung,
            resource: self.ladder.resource(rung),
            bracket: self.config.stop_rate,
            inherit_from: None,
        };
        self.outstanding.insert((trial, rung));
        job
    }

    fn grow_bottom(&mut self, rng: &mut dyn rand::RngCore) -> Job {
        let trial = TrialId(self.next_trial);
        self.next_trial += 1;
        self.trials_started += 1;
        let fidelity = Fidelity::base(self.ladder.resource(0));
        let config = self.sampler.propose_at(&self.space, fidelity, rng);
        self.trial_configs.insert(trial, config.clone());
        self.outstanding.insert((trial, 0));
        Job {
            trial,
            config,
            rung: 0,
            resource: self.ladder.resource(0),
            bracket: self.config.stop_rate,
            inherit_from: None,
        }
    }
}

impl Scheduler for Asha {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        // Lines 12–19 of Algorithm 2: look for a promotable configuration,
        // scanning rungs from the top down.
        if let Some((trial, _loss, rung)) = self
            .ladder
            .find_promotable_ruled(self.config.scan_order, self.rule)
        {
            return Decision::Run(self.promote(trial, rung));
        }
        // Line 20: otherwise grow the bottom rung — unless a trial cap says
        // we are done adding configurations.
        if let Some(cap) = self.config.max_trials {
            if self.trials_started >= cap {
                return if self.outstanding.is_empty() {
                    Decision::Finished
                } else {
                    Decision::Wait
                };
            }
        }
        Decision::Run(self.grow_bottom(rng))
    }

    fn observe(&mut self, obs: Observation) {
        // Ignore results for jobs we did not issue (or duplicate reports):
        // executors may retry dropped jobs.
        if !self.outstanding.remove(&(obs.trial, obs.rung)) {
            return;
        }
        self.ladder.record(obs.rung, obs.trial, obs.loss);
        // Skip the per-trial config lookup entirely for samplers that do not
        // consume reports (the random sampler) — this is the observe hot path.
        if self.sampler.wants_reports() {
            if let Some(config) = self.trial_configs.get(&obs.trial) {
                self.sampler
                    .record(config, obs.rung, obs.resource, obs.loss);
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn wait_is_stable(&self) -> bool {
        // `suggest` only returns `Wait` on the trial-cap path, which consumes
        // no RNG and mutates nothing: re-asking without an intervening
        // `observe` always yields `Wait` again.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Helper: run a job synchronously with loss = f(trial id).
    fn complete(asha: &mut Asha, job: &Job, loss: f64) {
        asha.observe(Observation::for_job(job, loss));
    }

    #[test]
    fn first_jobs_grow_the_bottom_rung() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = rng();
        for i in 0..5 {
            let job = asha.suggest(&mut r).job().expect("asha never waits");
            assert_eq!(job.rung, 0);
            assert_eq!(job.resource, 1.0);
            assert_eq!(job.trial, TrialId(i));
        }
        assert_eq!(asha.trials_started(), 5);
        assert_eq!(asha.outstanding_jobs(), 5);
    }

    #[test]
    fn promotes_after_eta_completions() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = rng();
        // Complete 3 bottom-rung trials with known losses.
        for loss in [0.3, 0.1, 0.2] {
            let job = asha.suggest(&mut r).job().unwrap();
            complete(&mut asha, &job, loss);
        }
        // Next suggest must promote the best (loss 0.1 = trial 1) to rung 1.
        let job = asha.suggest(&mut r).job().unwrap();
        assert_eq!(job.trial, TrialId(1));
        assert_eq!(job.rung, 1);
        assert_eq!(job.resource, 3.0);
    }

    #[test]
    fn never_waits_without_trial_cap() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 81.0, 3.0));
        let mut r = rng();
        for _ in 0..500 {
            match asha.suggest(&mut r) {
                Decision::Run(_) => {}
                other => panic!("ASHA should always have work, got {other:?}"),
            }
        }
    }

    #[test]
    fn asha_reproduces_figure2_promotion_order() {
        // Figure 2 (right): with 1 worker, losses equal to the config number
        // (configs 1..9 in arrival order, lower is better), ASHA's job
        // sequence is: 1,2,3 at rung 0, then promote config 1 to rung 1,
        // then 4,5,6 at rung 0, promote 6?? — the figure promotes configs
        // 1, 6, 8 based on *its* loss ordering. Here we use losses where
        // trial 0 is best of {0,1,2}: after 3 completions the best is
        // promoted immediately, matching the "promote whenever possible"
        // rule.
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = rng();
        let mut sequence = Vec::new();
        // Simulate a single worker: run each suggested job to completion.
        // Losses: lower trial id = better config.
        for _ in 0..13 {
            let job = asha.suggest(&mut r).job().unwrap();
            sequence.push((job.trial.0, job.rung));
            complete(&mut asha, &job, job.trial.0 as f64);
        }
        // Rung-0 jobs 0,1,2 then promotion of 0; then 3,4,5... after 6 more
        // rung-0 results another promotion becomes available, etc.
        assert_eq!(sequence[0..3], [(0, 0), (1, 0), (2, 0)]);
        assert_eq!(sequence[3], (0, 1), "best config promoted immediately");
        // Eventually a rung-2 job appears once rung 1 has 3 trials.
        assert!(
            sequence.iter().any(|&(_, rung)| rung == 2),
            "no rung-2 promotion in {sequence:?}"
        );
    }

    #[test]
    fn trial_cap_finishes_cleanly() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_max_trials(3));
        let mut r = rng();
        let mut jobs = Vec::new();
        for _ in 0..3 {
            jobs.push(asha.suggest(&mut r).job().unwrap());
        }
        // Cap reached, jobs outstanding -> Wait.
        assert!(asha.suggest(&mut r).is_wait());
        for (job, loss) in jobs.iter().zip([0.2, 0.1, 0.3]) {
            complete(&mut asha, job, loss);
        }
        // One promotion available (trial 1).
        let promo = asha.suggest(&mut r).job().unwrap();
        assert_eq!(promo.rung, 1);
        assert!(asha.suggest(&mut r).is_wait());
        complete(&mut asha, &promo, 0.05);
        // Rung 1 has 1 trial; 1/3 floor = 0 promotable; nothing outstanding.
        assert!(asha.suggest(&mut r).is_finished());
    }

    #[test]
    fn infinite_horizon_keeps_promoting() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).infinite());
        let mut r = rng();
        let mut max_rung = 0;
        for _ in 0..200 {
            let job = asha.suggest(&mut r).job().unwrap();
            max_rung = max_rung.max(job.rung);
            complete(&mut asha, &job, job.trial.0 as f64);
        }
        // In the finite horizon with R=9 the top rung would be 2; infinite
        // horizon must exceed it.
        assert!(max_rung > 2, "max rung {max_rung}");
    }

    #[test]
    fn unsolicited_observations_are_ignored() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        asha.observe(Observation::new(TrialId(99), 0, 1.0, 0.1));
        assert_eq!(asha.best(), None);
    }

    #[test]
    fn duplicate_observations_are_ignored() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = rng();
        let job = asha.suggest(&mut r).job().unwrap();
        complete(&mut asha, &job, 0.5);
        complete(&mut asha, &job, 0.1); // retry of the same job
        assert_eq!(asha.best(), Some((job.trial, 0.5)));
    }

    #[test]
    fn stop_rate_shifts_base_resource() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0).with_stop_rate(1));
        let mut r = rng();
        let job = asha.suggest(&mut r).job().unwrap();
        assert_eq!(job.resource, 3.0, "s=1 starts at r*eta");
        assert_eq!(job.bracket, 1);
    }

    #[test]
    fn best_uses_intermediate_losses() {
        let mut asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        let mut r = rng();
        for loss in [0.5, 0.4, 0.6] {
            let job = asha.suggest(&mut r).job().unwrap();
            complete(&mut asha, &job, loss);
        }
        let promo = asha.suggest(&mut r).job().unwrap();
        complete(&mut asha, &promo, 0.2);
        assert_eq!(asha.best().unwrap().1, 0.2);
    }

    #[test]
    fn name_reflects_sampler() {
        let asha = Asha::new(space(), AshaConfig::new(1.0, 9.0, 3.0));
        assert_eq!(asha.name(), "ASHA");
        assert!(format!("{asha:?}").contains("Asha"));
    }
}

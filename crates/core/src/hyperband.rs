//! Hyperband (synchronous) and asynchronous Hyperband.
//!
//! Hyperband runs SHA brackets with different early-stopping rates `s` to
//! hedge over the choice of `s`. The asynchronous variant of Section 3.2
//! "loops through brackets of ASHA sequentially as is done in the original
//! Hyperband", switching brackets "when a budget corresponding to a
//! hypothetical bracket of SHA would be depleted".

use asha_space::SearchSpace;

use crate::asha::{Asha, AshaConfig};
use crate::budget;
use crate::sampler::ConfigSampler;
use crate::scheduler::{Decision, Job, Observation, Scheduler, TrialId};
use crate::sha::{ShaConfig, SyncSha};
use crate::state::AsyncHyperbandState;

/// Trial-id stride separating the namespaces of different brackets, so that
/// wrappers can route observations back to the bracket that issued them
/// without a lookup table.
const BRACKET_STRIDE: u64 = 1 << 40;

/// Configuration shared by [`Hyperband`] and [`AsyncHyperband`].
#[derive(Debug, Clone, PartialEq)]
pub struct HyperbandConfig {
    /// Minimum resource `r` (the most aggressive bracket's base allocation).
    pub min_resource: f64,
    /// Maximum resource `R`.
    pub max_resource: f64,
    /// Reduction factor `eta >= 2`.
    pub reduction_factor: f64,
    /// Number of brackets to loop through (early-stopping rates
    /// `s = 0..num_brackets`). Defaults to `floor(log_eta(R/r)) + 1`, i.e.
    /// every bracket from the most aggressive to "no early stopping".
    pub num_brackets: usize,
}

impl HyperbandConfig {
    /// Standard configuration covering every early-stopping rate.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or the resources are invalid.
    pub fn new(min_resource: f64, max_resource: f64, eta: f64) -> Self {
        assert!(eta >= 2.0, "eta must be >= 2");
        assert!(
            min_resource > 0.0 && max_resource >= min_resource,
            "resources must satisfy 0 < r <= R"
        );
        let s_max = (max_resource / min_resource).log(eta).floor() as usize;
        HyperbandConfig {
            min_resource,
            max_resource,
            reduction_factor: eta,
            num_brackets: s_max + 1,
        }
    }

    /// Restrict to the first `num_brackets` early-stopping rates
    /// (`s = 0..num_brackets`). The paper's Figure 5 uses brackets
    /// `s = 0, 1, 2, 3`.
    pub fn with_brackets(mut self, num_brackets: usize) -> Self {
        assert!(num_brackets >= 1, "need at least one bracket");
        self.num_brackets = num_brackets;
        self
    }

    /// The number of base-rung configurations Hyperband assigns to bracket
    /// `s`: `ceil((s_max + 1) * eta^(s_max - s) / (s_max - s + 1))`, which
    /// equalizes total budget across brackets (Li et al., 2018), adapted to
    /// this paper's convention that `s = 0` is the *most* aggressive
    /// bracket.
    pub fn bracket_num_configs(&self, s: usize) -> usize {
        let s_max = (self.max_resource / self.min_resource)
            .log(self.reduction_factor)
            .floor() as usize;
        let s = s.min(s_max);
        let rungs = (s_max - s + 1) as f64;
        let n = ((s_max as f64 + 1.0) * self.reduction_factor.powi((s_max - s) as i32) / rungs)
            .ceil() as usize;
        // Algorithm 1's precondition: n >= eta^(s_max - s).
        n.max(self.reduction_factor.powi((s_max - s) as i32) as usize)
    }

    fn sha_config(&self, s: usize) -> ShaConfig {
        ShaConfig {
            num_configs: self.bracket_num_configs(s),
            min_resource: self.min_resource,
            max_resource: self.max_resource,
            reduction_factor: self.reduction_factor,
            stop_rate: s,
            grow_brackets: false,
        }
    }
}

/// Synchronous Hyperband: run SHA brackets `s = 0, 1, ..., num_brackets-1`
/// to completion, one after another, looping back to `s = 0` (the paper's
/// sequential experiments loop "through 5 brackets of SHA, moving from
/// bracket `s=0, r=R/256` to bracket `s=4, r=R`").
pub struct Hyperband {
    space: SearchSpace,
    config: HyperbandConfig,
    current: SyncSha,
    bracket_idx: usize,
    generation: u64,
    name: String,
}

impl std::fmt::Debug for Hyperband {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hyperband")
            .field("config", &self.config)
            .field("bracket_idx", &self.bracket_idx)
            .finish_non_exhaustive()
    }
}

impl Hyperband {
    /// Create a synchronous Hyperband scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HyperbandConfig::new`]).
    pub fn new(space: SearchSpace, config: HyperbandConfig) -> Self {
        let current = SyncSha::new(space.clone(), config.sha_config(0));
        Hyperband {
            space,
            config,
            current,
            bracket_idx: 0,
            generation: 0,
            name: "Hyperband".to_owned(),
        }
    }

    /// The early-stopping rate of the bracket currently running.
    pub fn current_bracket(&self) -> usize {
        self.bracket_idx
    }

    fn advance_bracket(&mut self) {
        self.bracket_idx = (self.bracket_idx + 1) % self.config.num_brackets;
        self.generation += 1;
        self.current = SyncSha::new(self.space.clone(), self.config.sha_config(self.bracket_idx));
    }

    fn tag(&self, mut job: Job) -> Job {
        job.trial = TrialId(job.trial.0 + self.generation * BRACKET_STRIDE);
        job.bracket = self.bracket_idx;
        job
    }
}

impl Scheduler for Hyperband {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        loop {
            match self.current.suggest(rng) {
                Decision::Run(job) => return Decision::Run(self.tag(job)),
                Decision::Wait => return Decision::Wait,
                Decision::Finished => self.advance_bracket(),
            }
        }
    }

    fn observe(&mut self, obs: Observation) {
        // Only the current bracket has outstanding jobs; results from an
        // earlier generation are stale by construction.
        if obs.trial.0 / BRACKET_STRIDE != self.generation {
            return;
        }
        let local = Observation {
            trial: TrialId(obs.trial.0 % BRACKET_STRIDE),
            ..obs
        };
        self.current.observe(local);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn wait_is_stable(&self) -> bool {
        // A `Wait` comes straight from the current (stable) SyncSha bracket
        // without advancing generations, so re-asking is a pure re-read.
        true
    }
}

/// Asynchronous Hyperband (Section 3.2): one ASHA instance per bracket,
/// visited round-robin, switching when the bracket has *issued* as much
/// resource as a hypothetical synchronous SHA bracket would consume.
pub struct AsyncHyperband {
    config: HyperbandConfig,
    brackets: Vec<Asha>,
    /// Per-bracket budget of the hypothetical SHA bracket.
    budgets: Vec<f64>,
    /// Resource issued in the current activation of the current bracket.
    spent: f64,
    current: usize,
    name: String,
}

impl std::fmt::Debug for AsyncHyperband {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncHyperband")
            .field("config", &self.config)
            .field("current", &self.current)
            .field("spent", &self.spent)
            .finish_non_exhaustive()
    }
}

impl AsyncHyperband {
    /// Create an asynchronous Hyperband scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HyperbandConfig::new`]).
    pub fn new(space: SearchSpace, config: HyperbandConfig) -> Self {
        AsyncHyperband::with_sampler_factory(space, config, |_| {
            Box::new(crate::sampler::RandomSampler::new())
        })
    }

    /// Create an asynchronous Hyperband scheduler with a per-bracket sampler
    /// built by `factory` (called once per early-stopping rate `s`). Each
    /// bracket owns an independent sampler instance: brackets observe
    /// disjoint trial populations at different base fidelities, so sharing a
    /// model across them would mix incomparable losses.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`HyperbandConfig::new`]).
    pub fn with_sampler_factory(
        space: SearchSpace,
        config: HyperbandConfig,
        factory: impl Fn(usize) -> Box<dyn ConfigSampler>,
    ) -> Self {
        let brackets: Vec<Asha> = (0..config.num_brackets)
            .map(|s| {
                Asha::with_sampler(
                    space.clone(),
                    AshaConfig::new(
                        config.min_resource,
                        config.max_resource,
                        config.reduction_factor,
                    )
                    .with_stop_rate(s),
                    factory(s),
                )
            })
            .collect();
        let budgets: Vec<f64> = (0..config.num_brackets)
            .map(|s| {
                budget::bracket_budget(
                    config.bracket_num_configs(s),
                    config.min_resource,
                    config.max_resource,
                    config.reduction_factor,
                    s,
                )
            })
            .collect();
        let name = match brackets.first().map(Asha::sampler_name) {
            Some("random") | None => "Hyperband (async)".to_owned(),
            Some(sampler) => format!("Hyperband (async)+{sampler}"),
        };
        AsyncHyperband {
            config,
            brackets,
            budgets,
            spent: 0.0,
            current: 0,
            name,
        }
    }

    /// The early-stopping rate of the bracket currently being filled.
    pub fn current_bracket(&self) -> usize {
        self.current
    }

    /// Capture the scheduler's full mutable state as plain data (see
    /// [`crate::state`]): one [`crate::state::AshaState`] per bracket plus
    /// the budget cursor. Per-bracket budgets are recomputed on restore.
    pub fn export_state(&self) -> AsyncHyperbandState {
        AsyncHyperbandState {
            config: self.config.clone(),
            brackets: self.brackets.iter().map(Asha::export_state).collect(),
            spent: self.spent,
            current: self.current,
            name: self.name.clone(),
        }
    }

    /// Rebuild a scheduler from a state captured by
    /// [`AsyncHyperband::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the embedded config is invalid (see
    /// [`HyperbandConfig::new`]) or the bracket count does not match the
    /// config.
    pub fn from_state(space: SearchSpace, state: AsyncHyperbandState) -> Self {
        AsyncHyperband::from_state_with_sampler_factory(space, state, |_| {
            Box::new(crate::sampler::RandomSampler::new())
        })
    }

    /// Rebuild a scheduler from a captured state with per-bracket samplers
    /// built by `factory`. Sampler cursors, if any, are restored separately
    /// via [`AsyncHyperband::restore_sampler_cursors`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`AsyncHyperband::from_state`].
    pub fn from_state_with_sampler_factory(
        space: SearchSpace,
        state: AsyncHyperbandState,
        factory: impl Fn(usize) -> Box<dyn ConfigSampler>,
    ) -> Self {
        let mut ahb =
            AsyncHyperband::with_sampler_factory(space.clone(), state.config.clone(), &factory);
        assert_eq!(
            state.brackets.len(),
            ahb.brackets.len(),
            "bracket count mismatch between snapshot and config"
        );
        ahb.brackets = state
            .brackets
            .into_iter()
            .enumerate()
            .map(|(s, b)| Asha::from_state_with_sampler(space.clone(), b, factory(s)))
            .collect();
        ahb.spent = state.spent;
        ahb.current = state.current;
        ahb.name = state.name;
        ahb
    }

    /// The attached samplers' name (`"random"`, `"tpe"`, ...); every bracket
    /// uses the same sampler kind by construction.
    pub fn sampler_name(&self) -> &str {
        self.brackets
            .first()
            .map(Asha::sampler_name)
            .unwrap_or("random")
    }

    /// Serialized sampler cursors, one per bracket (see
    /// [`Asha::export_sampler_cursor`]).
    pub fn export_sampler_cursors(&self) -> Vec<Option<String>> {
        self.brackets
            .iter()
            .map(Asha::export_sampler_cursor)
            .collect()
    }

    /// Restore per-bracket sampler cursors previously produced by
    /// [`AsyncHyperband::export_sampler_cursors`]. Extra or missing entries
    /// are ignored (a bracket without a cursor stays cold).
    pub fn restore_sampler_cursors(&mut self, cursors: &[Option<String>]) {
        for (bracket, cursor) in self.brackets.iter_mut().zip(cursors) {
            if let Some(cursor) = cursor {
                bracket.restore_sampler_cursor(cursor);
            }
        }
    }

    /// Read-only access to the per-bracket ASHA instances.
    pub fn brackets(&self) -> &[Asha] {
        &self.brackets
    }

    /// Best `(trial, loss)` across every bracket, using intermediate losses.
    pub fn best(&self) -> Option<(TrialId, f64)> {
        self.brackets
            .iter()
            .enumerate()
            .filter_map(|(b, asha)| {
                asha.best()
                    .map(|(t, l)| (TrialId(t.0 + b as u64 * BRACKET_STRIDE), l))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

impl Scheduler for AsyncHyperband {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        if self.spent >= self.budgets[self.current] {
            self.current = (self.current + 1) % self.brackets.len();
            self.spent = 0.0;
        }
        let b = self.current;
        match self.brackets[b].suggest(rng) {
            Decision::Run(mut job) => {
                self.spent += job.resource;
                job.trial = TrialId(job.trial.0 + b as u64 * BRACKET_STRIDE);
                job.bracket = b;
                Decision::Run(job)
            }
            // Per-bracket ASHA without a trial cap never waits/finishes, but
            // keep the fallthrough total.
            other => other,
        }
    }

    fn observe(&mut self, obs: Observation) {
        let b = (obs.trial.0 / BRACKET_STRIDE) as usize;
        if b >= self.brackets.len() {
            return;
        }
        let local = Observation {
            trial: TrialId(obs.trial.0 % BRACKET_STRIDE),
            ..obs
        };
        self.brackets[b].observe(local);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn wait_is_stable(&self) -> bool {
        // A `Wait` can only come from a bracket whose own `Wait` is stable,
        // after any budget rotation already happened on the first call;
        // re-asking repeats the same rotation-free, RNG-free path.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asha_space::Scale;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .continuous("x", 0.0, 1.0, Scale::Linear)
            .build()
            .unwrap()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn bracket_sizes_decrease_with_s() {
        let cfg = HyperbandConfig::new(1.0, 256.0, 4.0);
        assert_eq!(cfg.num_brackets, 5);
        let sizes: Vec<usize> = (0..5).map(|s| cfg.bracket_num_configs(s)).collect();
        assert_eq!(sizes[0], 256, "s=0 matches the paper's n=256 setup");
        for w in sizes.windows(2) {
            assert!(w[0] > w[1], "sizes must decrease: {sizes:?}");
        }
        assert_eq!(sizes[4], 5);
    }

    #[test]
    fn hyperband_moves_through_brackets() {
        let cfg = HyperbandConfig::new(1.0, 9.0, 3.0);
        let mut hb = Hyperband::new(space(), cfg);
        let mut r = rng();
        let mut brackets_seen = Vec::new();
        // Run serially; record bracket of each job.
        for _ in 0..100 {
            let job = hb.suggest(&mut r).job().expect("serial never waits");
            if brackets_seen.last() != Some(&job.bracket) {
                brackets_seen.push(job.bracket);
            }
            hb.observe(Observation::for_job(&job, job.trial.0 as f64));
        }
        // Must cycle s = 0, 1, 2 and wrap back to 0.
        assert!(
            brackets_seen.starts_with(&[0, 1, 2, 0]),
            "{brackets_seen:?}"
        );
    }

    #[test]
    fn hyperband_waits_when_bracket_blocked() {
        let cfg = HyperbandConfig::new(1.0, 9.0, 3.0);
        let mut hb = Hyperband::new(space(), cfg.clone());
        let mut r = rng();
        let n0 = cfg.bracket_num_configs(0);
        let mut jobs = Vec::new();
        for _ in 0..n0 {
            jobs.push(hb.suggest(&mut r).job().unwrap());
        }
        assert!(hb.suggest(&mut r).is_wait());
        for job in &jobs {
            hb.observe(Observation::for_job(job, job.trial.0 as f64));
        }
        assert!(matches!(hb.suggest(&mut r), Decision::Run(_)));
    }

    #[test]
    fn async_hyperband_switches_on_budget() {
        let cfg = HyperbandConfig::new(1.0, 9.0, 3.0);
        let mut ahb = AsyncHyperband::new(space(), cfg);
        let mut r = rng();
        let mut brackets_seen = vec![];
        for _ in 0..500 {
            let job = ahb.suggest(&mut r).job().expect("asha never waits");
            if brackets_seen.last() != Some(&job.bracket) {
                brackets_seen.push(job.bracket);
            }
            ahb.observe(Observation::for_job(&job, job.trial.0 as f64));
        }
        assert!(
            brackets_seen.len() >= 4 && brackets_seen.starts_with(&[0, 1, 2, 0]),
            "bracket loop order: {brackets_seen:?}"
        );
    }

    #[test]
    fn async_hyperband_routes_observations_to_brackets() {
        let cfg = HyperbandConfig::new(1.0, 9.0, 3.0);
        let mut ahb = AsyncHyperband::new(space(), cfg);
        let mut r = rng();
        // Issue jobs until we are in bracket 1, then make sure the
        // observation lands in bracket 1's ladder.
        let job = loop {
            let job = ahb.suggest(&mut r).job().unwrap();
            if job.bracket == 1 {
                break job;
            }
            ahb.observe(Observation::for_job(&job, 1.0));
        };
        ahb.observe(Observation::for_job(&job, 0.123));
        let bracket1 = &ahb.brackets()[1];
        assert_eq!(bracket1.best().map(|(_, l)| l), Some(0.123));
    }

    #[test]
    fn async_hyperband_best_spans_brackets() {
        let cfg = HyperbandConfig::new(1.0, 9.0, 3.0);
        let mut ahb = AsyncHyperband::new(space(), cfg);
        let mut r = rng();
        for i in 0..50 {
            let job = ahb.suggest(&mut r).job().unwrap();
            ahb.observe(Observation::for_job(&job, 100.0 - i as f64));
        }
        let (_, best) = ahb.best().unwrap();
        assert_eq!(best, 51.0);
    }

    #[test]
    fn with_brackets_limits_the_loop() {
        let cfg = HyperbandConfig::new(1.0, 256.0, 4.0).with_brackets(4);
        let ahb = AsyncHyperband::new(space(), cfg);
        assert_eq!(ahb.brackets().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bracket")]
    fn zero_brackets_rejected() {
        let _ = HyperbandConfig::new(1.0, 9.0, 3.0).with_brackets(0);
    }
}

//! Structured run telemetry: scheduling events, the [`Recorder`] sink, and
//! the [`InstrumentedScheduler`] decorator.
//!
//! Every claim about ASHA is a claim about *scheduling dynamics under
//! parallelism* — who sits in which rung, how long promotable configurations
//! wait, how busy the workers stay when stragglers and drops hit. This
//! module defines the event vocabulary for observing those dynamics and the
//! sink trait execution layers emit into. The collection side (append-only
//! JSONL event logs, the online metrics registry, run reports) lives in the
//! `asha-obs` crate; this module holds only what the hot paths need, so the
//! scheduling core stays dependency-free.
//!
//! # Zero cost when disabled
//!
//! Emitters guard every event behind [`Recorder::enabled`]. The execution
//! layers (`asha-sim`, `asha-exec`) are generic over `R: Recorder`, so with
//! the default [`NoopRecorder`] the check monomorphizes to a constant
//! `false` and the whole telemetry path — including [`EventKind`]
//! construction — compiles away. [`EventKind`] is `Copy` and holds only
//! scalars, so even with recording *on* the hot path performs no
//! allocations per event (the collecting recorder amortizes its buffer).
//!
//! # Clocks
//!
//! Event timestamps use the *driving execution layer's clock*: simulated
//! time in `asha-sim` (the same clock as `asha_metrics::TraceEvent::time`)
//! and wall-clock seconds since run start in `asha-exec` (again matching
//! that backend's `TraceEvent::time`). A telemetry event log and the
//! `RunTrace` of the same run are therefore directly joinable on time.
//! Recorders may assume timestamps are non-decreasing and sequence numbers
//! strictly increasing; the collecting recorder in `asha-obs` debug-asserts
//! both.

use crate::scheduler::{Decision, Job, Observation, Scheduler};

/// Why a suggest call produced no job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleKind {
    /// The scheduler returned [`Decision::Wait`].
    Wait,
    /// The scheduler returned [`Decision::Finished`].
    Finished,
}

impl IdleKind {
    /// Stable lowercase name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            IdleKind::Wait => "wait",
            IdleKind::Finished => "finished",
        }
    }
}

/// Why a running attempt's result was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The result was dropped in flight (simulated network drop, or an
    /// executor drop fault).
    Dropped,
    /// The attempt exceeded its wall-clock budget and its (eventual) result
    /// was discarded.
    Timeout,
}

impl DropCause {
    /// Stable lowercase name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Dropped => "drop",
            DropCause::Timeout => "timeout",
        }
    }
}

/// One telemetry event. All fields are scalars (no `Config` clones), so
/// constructing a kind is allocation-free.
///
/// The schema is stable and append-only: renames or semantic changes require
/// a new kind, never a repurposed field (logs must stay diffable across
/// versions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A suggest call returned no job (`decision` says whether the scheduler
    /// is waiting or finished). Suggest calls that *do* return a job appear
    /// as [`EventKind::Promote`] or [`EventKind::GrowBottom`] instead.
    Suggest {
        /// Wait or Finished.
        decision: IdleKind,
    },
    /// A suggest call promoted an existing trial one rung up.
    Promote {
        /// The promoted trial.
        trial: u64,
        /// Bracket that issued the job.
        bracket: usize,
        /// Rung the trial was promoted out of.
        from: usize,
        /// Rung the trial now trains for (`from + 1`).
        to: usize,
        /// Cumulative resource target of the new job.
        resource: f64,
    },
    /// A suggest call grew the bottom rung with a freshly sampled trial.
    GrowBottom {
        /// The new trial.
        trial: u64,
        /// Bracket that issued the job.
        bracket: usize,
        /// Cumulative resource target of the base-rung job.
        resource: f64,
    },
    /// A job (or a retry attempt of one) began executing on a worker.
    JobStart {
        /// The trial being trained.
        trial: u64,
        /// Bracket that issued the job.
        bracket: usize,
        /// Rung the job trains for.
        rung: usize,
        /// Cumulative resource target.
        resource: f64,
    },
    /// A job completed and its loss was reported to the scheduler.
    JobEnd {
        /// The trial that completed.
        trial: u64,
        /// Rung the job trained for.
        rung: usize,
        /// Cumulative resource reached.
        resource: f64,
        /// Validation loss observed (`f64::INFINITY` for poisoned trials).
        loss: f64,
    },
    /// A running attempt's result was lost; the worker is free again.
    Drop {
        /// The affected trial.
        trial: u64,
        /// Rung the lost attempt trained for.
        rung: usize,
        /// Drop vs. timeout.
        cause: DropCause,
    },
    /// A previously dropped job was re-issued (always immediately followed
    /// by the matching [`EventKind::JobStart`]).
    Retry {
        /// The retried trial.
        trial: u64,
        /// Rung being retried.
        rung: usize,
    },
    /// A scheduling round left workers idle (the scheduler is waiting while
    /// other jobs run).
    WorkerIdle {
        /// Number of workers with nothing to do.
        idle: usize,
    },
}

impl EventKind {
    /// Stable lowercase name of this kind, as used in the JSONL `ev` field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Suggest { .. } => "suggest",
            EventKind::Promote { .. } => "promote",
            EventKind::GrowBottom { .. } => "grow_bottom",
            EventKind::JobStart { .. } => "job_start",
            EventKind::JobEnd { .. } => "job_end",
            EventKind::Drop { .. } => "drop",
            EventKind::Retry { .. } => "retry",
            EventKind::WorkerIdle { .. } => "worker_idle",
        }
    }

    /// Classify a scheduler decision. A `Run` job targeting rung 0 grew the
    /// bottom rung; a job targeting a higher rung is a promotion out of
    /// `rung - 1` (every scheduler in this workspace issues rung `k > 0`
    /// jobs only by promoting from rung `k - 1`).
    pub fn of_decision(decision: &Decision) -> EventKind {
        match decision {
            Decision::Run(job) => {
                if job.rung > 0 {
                    EventKind::Promote {
                        trial: job.trial.0,
                        bracket: job.bracket,
                        from: job.rung - 1,
                        to: job.rung,
                        resource: job.resource,
                    }
                } else {
                    EventKind::GrowBottom {
                        trial: job.trial.0,
                        bracket: job.bracket,
                        resource: job.resource,
                    }
                }
            }
            Decision::Wait => EventKind::Suggest {
                decision: IdleKind::Wait,
            },
            Decision::Finished => EventKind::Suggest {
                decision: IdleKind::Finished,
            },
        }
    }

    /// The job-start event for `job`.
    pub fn job_start(job: &Job) -> EventKind {
        EventKind::JobStart {
            trial: job.trial.0,
            bracket: job.bracket,
            rung: job.rung,
            resource: job.resource,
        }
    }

    /// The job-end event for an observation.
    pub fn job_end(obs: &Observation) -> EventKind {
        EventKind::JobEnd {
            trial: obs.trial.0,
            rung: obs.rung,
            resource: obs.resource,
            loss: obs.loss,
        }
    }
}

/// A recorded event: a kind stamped with a sequence number and a timestamp.
///
/// `seq` is strictly increasing within one run, so two events at the same
/// timestamp (common in simulated time) still have a total, deterministic,
/// diffable order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Monotone sequence number (0-based, no gaps).
    pub seq: u64,
    /// Timestamp on the driving execution layer's clock (see module docs).
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// A sink for telemetry events.
///
/// The default methods are no-ops and report `enabled() == false`, so
/// implementing a collecting recorder means overriding both, while the
/// [`NoopRecorder`] is a one-liner. Emitters must guard event construction
/// behind [`enabled`](Recorder::enabled):
///
/// ```
/// # use asha_core::telemetry::{EventKind, IdleKind, Recorder};
/// # fn emit<R: Recorder>(recorder: &mut R, now: f64) {
/// if recorder.enabled() {
///     recorder.record(now, EventKind::Suggest { decision: IdleKind::Wait });
/// }
/// # }
/// ```
///
/// so that a monomorphized no-op recorder erases the entire path.
pub trait Recorder {
    /// Whether this recorder collects anything. Hot paths skip event
    /// construction entirely when this is `false`.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Record `kind` at time `now`. Callers guarantee `now` is
    /// non-decreasing across calls within one run.
    #[inline]
    fn record(&mut self, now: f64, kind: EventKind) {
        let _ = (now, kind);
    }
}

/// The always-off recorder: every telemetry guard folds to `false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<R: Recorder + ?Sized> Recorder for &mut R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, now: f64, kind: EventKind) {
        (**self).record(now, kind);
    }
}

/// A [`Scheduler`] decorator that records every decision and observation
/// into a [`Recorder`], without changing behaviour: the wrapped scheduler
/// sees exactly the calls (and RNG stream) the bare one would.
///
/// Use this when driving a scheduler *directly* (custom loops, tests,
/// throughput rigs). Under `asha-sim` / `asha-exec`, prefer their
/// `run_recorded` entry points instead — the execution layer also emits job
/// lifecycle and fault events and stamps everything with its own clock,
/// which this decorator cannot see. Set the decorator's clock with
/// [`set_time`](InstrumentedScheduler::set_time) if the driver has one;
/// otherwise all events are stamped 0.0 and ordered by `seq` alone.
#[derive(Debug)]
pub struct InstrumentedScheduler<S, R> {
    inner: S,
    recorder: R,
    now: f64,
}

impl<S: Scheduler, R: Recorder> InstrumentedScheduler<S, R> {
    /// Wrap `inner`, recording into `recorder`.
    pub fn new(inner: S, recorder: R) -> Self {
        InstrumentedScheduler {
            inner,
            recorder,
            now: 0.0,
        }
    }

    /// Advance the clock used to stamp subsequent events. Must be
    /// non-decreasing.
    pub fn set_time(&mut self, now: f64) {
        self.now = now;
    }

    /// The wrapped scheduler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Unwrap into the scheduler and the recorder.
    pub fn into_parts(self) -> (S, R) {
        (self.inner, self.recorder)
    }
}

impl<S: Scheduler, R: Recorder> Scheduler for InstrumentedScheduler<S, R> {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        let decision = self.inner.suggest(rng);
        if self.recorder.enabled() {
            self.recorder
                .record(self.now, EventKind::of_decision(&decision));
            if let Decision::Run(job) = &decision {
                self.recorder.record(self.now, EventKind::job_start(job));
            }
        }
        decision
    }

    fn observe(&mut self, obs: Observation) {
        if self.recorder.enabled() {
            self.recorder.record(self.now, EventKind::job_end(&obs));
        }
        self.inner.observe(obs);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn wait_is_stable(&self) -> bool {
        // With an active recorder every `suggest` emits a wait event — an
        // observable effect — so batching may only elide re-asks when the
        // recorder is off and the inner scheduler's `Wait` is stable.
        !self.recorder.enabled() && self.inner.wait_is_stable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::TrialId;
    use asha_space::Config;

    #[test]
    fn kind_names_are_stable() {
        let names = [
            EventKind::Suggest {
                decision: IdleKind::Wait,
            }
            .name(),
            EventKind::Promote {
                trial: 0,
                bracket: 0,
                from: 0,
                to: 1,
                resource: 1.0,
            }
            .name(),
            EventKind::GrowBottom {
                trial: 0,
                bracket: 0,
                resource: 1.0,
            }
            .name(),
            EventKind::JobStart {
                trial: 0,
                bracket: 0,
                rung: 0,
                resource: 1.0,
            }
            .name(),
            EventKind::JobEnd {
                trial: 0,
                rung: 0,
                resource: 1.0,
                loss: 0.1,
            }
            .name(),
            EventKind::Drop {
                trial: 0,
                rung: 0,
                cause: DropCause::Dropped,
            }
            .name(),
            EventKind::Retry { trial: 0, rung: 0 }.name(),
            EventKind::WorkerIdle { idle: 1 }.name(),
        ];
        assert_eq!(
            names,
            [
                "suggest",
                "promote",
                "grow_bottom",
                "job_start",
                "job_end",
                "drop",
                "retry",
                "worker_idle"
            ]
        );
    }

    #[test]
    fn decisions_classify_by_target_rung() {
        let job = |rung| Job {
            trial: TrialId(7),
            config: Config::default(),
            rung,
            resource: 4.0,
            bracket: 1,
            inherit_from: None,
        };
        match EventKind::of_decision(&Decision::Run(job(0))) {
            EventKind::GrowBottom { trial, bracket, .. } => {
                assert_eq!((trial, bracket), (7, 1));
            }
            other => panic!("expected grow_bottom, got {other:?}"),
        }
        match EventKind::of_decision(&Decision::Run(job(3))) {
            EventKind::Promote { from, to, .. } => assert_eq!((from, to), (2, 3)),
            other => panic!("expected promote, got {other:?}"),
        }
        assert_eq!(
            EventKind::of_decision(&Decision::Wait),
            EventKind::Suggest {
                decision: IdleKind::Wait
            }
        );
        assert_eq!(
            EventKind::of_decision(&Decision::Finished),
            EventKind::Suggest {
                decision: IdleKind::Finished
            }
        );
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut noop = NoopRecorder;
        assert!(!noop.enabled());
        // Recording into it is a no-op, not a panic.
        noop.record(1.0, EventKind::WorkerIdle { idle: 3 });
    }
}

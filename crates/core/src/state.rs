//! Plain-data snapshots of scheduler state, for durable persistence.
//!
//! Each scheduler (`Asha`, `SyncSha`, `AsyncHyperband`) can export its full
//! mutable state as one of these structs and be rebuilt from it so that the
//! restored instance is *decision-for-decision identical* to the original:
//! given the same RNG stream and the same `suggest`/`observe` call sequence,
//! both produce the same decisions forever after. That contract is what
//! `asha-store`'s snapshot + write-ahead-log recovery relies on.
//!
//! The structs deliberately contain only owned plain data (ids as raw
//! `u64`, configurations by value, collections as sorted `Vec`s) so they can
//! be serialized by any codec without touching scheduler internals. Sorting
//! matters: the live schedulers keep some collections in hash maps whose
//! iteration order is nondeterministic, and a snapshot must be byte-stable
//! for a given logical state.

use asha_space::Config;

use crate::rung::{Rung, RungLadder};
use crate::scheduler::TrialId;

/// Snapshot of one [`Rung`]: every recorded `(trial, loss)` in arrival
/// order, plus which trials have been promoted out.
///
/// Losses are stored post-normalization (the rung records NaN as
/// `+inf`), so replaying `records` through [`Rung::record`] reproduces the
/// rung exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RungState {
    /// `(trial, loss)` in arrival order.
    pub records: Vec<(u64, f64)>,
    /// Trials promoted out of this rung, in arrival order.
    pub promoted: Vec<u64>,
}

impl RungState {
    /// Capture the state of a rung.
    pub fn of(rung: &Rung) -> Self {
        let records: Vec<(u64, f64)> = rung.records().iter().map(|&(t, l)| (t.0, l)).collect();
        let promoted = rung
            .records()
            .iter()
            .filter(|&&(t, _)| rung.is_promoted(t))
            .map(|&(t, _)| t.0)
            .collect();
        RungState { records, promoted }
    }

    /// Replay this rung's history into rung `k` of a fresh ladder.
    pub fn replay_into(&self, ladder: &mut RungLadder, k: usize) {
        for &(trial, loss) in &self.records {
            ladder.record(k, TrialId(trial), loss);
        }
        for &trial in &self.promoted {
            ladder.mark_promoted(k, TrialId(trial));
        }
    }
}

/// Snapshot of an [`Asha`](crate::Asha) scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct AshaState {
    /// The scheduler's configuration (the ladder is rebuilt from it).
    pub config: crate::AshaConfig,
    /// Per-rung history, bottom rung first.
    pub rungs: Vec<RungState>,
    /// Every trial's sampled configuration, sorted by trial id.
    pub trials: Vec<(u64, Config)>,
    /// Issued-but-unreported `(trial, rung)` jobs, sorted.
    pub outstanding: Vec<(u64, usize)>,
    /// Next trial id to assign.
    pub next_trial: u64,
    /// Number of distinct trials started.
    pub trials_started: usize,
    /// The scheduler's display name.
    pub name: String,
}

/// Snapshot of one synchronous SHA bracket (private to `SyncSha`; exported
/// here as plain data).
#[derive(Debug, Clone, PartialEq)]
pub struct BracketState {
    /// Base-rung configurations not yet sampled.
    pub remaining_to_sample: usize,
    /// Survivors queued for issue at the current rung (LIFO pop order, as
    /// stored by the live bracket).
    pub queue: Vec<(u64, Config)>,
    /// Jobs issued at the current rung and not yet reported.
    pub outstanding: usize,
    /// Trials currently issued and unreported, sorted by trial id.
    pub issued: Vec<u64>,
    /// Results gathered at the current rung, in arrival order.
    pub results: Vec<(u64, f64)>,
    /// Current rung index.
    pub rung: usize,
    /// Whether the bracket has run to completion.
    pub done: bool,
}

/// Snapshot of a [`SyncSha`](crate::SyncSha) scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncShaState {
    /// The scheduler's configuration.
    pub config: crate::ShaConfig,
    /// Every bracket started so far, in creation order.
    pub brackets: Vec<BracketState>,
    /// `(trial, bracket, config)` for every sampled trial, sorted by trial
    /// id.
    pub trial_meta: Vec<(u64, usize, Config)>,
    /// Next trial id to assign.
    pub next_trial: u64,
    /// The scheduler's display name.
    pub name: String,
}

/// Snapshot of an [`AsyncHyperband`](crate::AsyncHyperband) scheduler: one
/// [`AshaState`] per bracket plus the round-robin budget cursor. Per-bracket
/// budgets are a pure function of the configuration and are recomputed on
/// restore.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncHyperbandState {
    /// The scheduler's configuration.
    pub config: crate::HyperbandConfig,
    /// Per-bracket ASHA state, `s = 0` first.
    pub brackets: Vec<AshaState>,
    /// Resource issued in the current activation of the current bracket.
    pub spent: f64,
    /// Index of the bracket currently being filled.
    pub current: usize,
    /// The scheduler's display name.
    pub name: String,
}

//! Rung bookkeeping shared by ASHA and the analysis tooling.
//!
//! A *rung* is the set of configurations that have been trained for a given
//! resource level within a bracket; a [`RungLadder`] is the full stack of
//! rungs for one bracket (Figure 1 of the paper).
//!
//! The promotion query (`top_k(rung, |rung|/eta)` minus already-promoted,
//! line 14–15 of Algorithm 2) is the hot path of ASHA — it runs once per
//! `suggest`, and large-scale runs issue hundreds of thousands of jobs. The
//! implementation keeps an incremental promotion-candidate index per rung so
//! the common case is O(1):
//!
//! * a *candidate cache* memoizes the full answer of the last promotability
//!   check, keyed on `(len, promoted, eta)`. Rungs only ever mutate by
//!   appending a record (`len` grows) or promoting a trial (`promoted`
//!   grows), so that key uniquely identifies the rung's decision-relevant
//!   state and the cache never needs explicit invalidation — both "yes,
//!   this trial" and "no" answers are served without touching any ordered
//!   structure until the rung actually changes;
//! * the unpromoted population lives in a lazy-deletion min-heap ordered by
//!   `(loss, trial)`: `record` is an O(1) amortized push, and promotions
//!   leave stale entries behind that are popped (each at most once) the
//!   next time the heap minimum is consulted;
//! * the promoted population stays in an ordered set so the exact rank
//!   check — is the best unpromoted trial within the top `k`? — remains
//!   available: if `promoted < k` the best unpromoted trial is *always*
//!   within the top `k` (every trial better than it is promoted, so its
//!   rank is at most `promoted`); otherwise an early-exit rank count runs,
//!   bounded by `promoted - k + 1` steps — a handful in practice because
//!   the rank gate keeps the promoted population tracking `k`.
//!
//! None of these indexes is serialized: [`crate::state::RungState`] stores
//! only the arrival-ordered records and the promoted set, and
//! `replay_into` rebuilds the indexes by replaying them — which is also
//! what makes old snapshots (written before the indexes existed) load
//! unchanged.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, BinaryHeap};

use crate::fx::FxHashMap;
use crate::scheduler::TrialId;

/// Which direction [`RungLadder::find_promotable_ordered`] visits rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanOrder {
    /// Highest promotable rung first — Algorithm 2's prescription, which
    /// pushes promising configurations toward `R` as fast as possible.
    #[default]
    TopDown,
    /// Lowest rung first — keeps lower rungs flowing at the cost of
    /// latency to the top (the ablation alternative).
    BottomUp,
}

/// When a rung lets its best unpromoted trial move up.
///
/// [`PromotionRule::Eager`] is Algorithm 2's rule: promote whenever the best
/// unpromoted trial ranks in the top `1/eta` of the rung — even after the
/// rung has already promoted `floor(len/eta)` trials, if a strictly better
/// configuration arrives late it is promoted too, so a rung can over-promote
/// by up to `O(sqrt(len))` under adversarial arrival orders.
///
/// [`PromotionRule::Delayed`] is Hyper-Tune's D-ASHA gate: additionally
/// require `promoted < floor(len/eta)`, so promotions out of a rung never
/// exceed the exact `1/eta` fraction. Promotion of a strong late arrival is
/// *delayed* until the rung has grown enough to afford another slot, which
/// trades promotion latency for never spending upper-rung budget beyond the
/// quota that synchronous SHA would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromotionRule {
    /// Promote whenever the rank gate alone passes (Algorithm 2).
    #[default]
    Eager,
    /// Also require the promoted count to stay below `floor(len/eta)`
    /// (Hyper-Tune's delayed promotion).
    Delayed,
}

/// Monotone map from (non-NaN) `f64` to `u64` preserving order.
fn loss_key(loss: f64) -> u64 {
    let bits = loss.to_bits();
    if loss >= 0.0 {
        bits ^ 0x8000_0000_0000_0000
    } else {
        !bits
    }
}

/// Inverse of [`loss_key`].
fn key_loss(key: u64) -> f64 {
    if key >= 0x8000_0000_0000_0000 {
        f64::from_bits(key ^ 0x8000_0000_0000_0000)
    } else {
        f64::from_bits(!key)
    }
}

/// Memoized answer of the last promotability check. The `(len, promoted,
/// eta_bits)` triple fully determines the answer because rungs mutate only
/// by appending records or promoting trials, each of which changes the
/// triple.
#[derive(Debug, Clone, Copy)]
struct PromoCache {
    len: usize,
    promoted: usize,
    eta_bits: u64,
    result: Option<(u64, TrialId)>,
}

/// One rung: the trials evaluated at this resource level, their losses, and
/// which of them have already been promoted.
#[derive(Debug, Clone, Default)]
pub struct Rung {
    /// `(trial, loss)` in arrival order, for traces and analysis.
    records: Vec<(TrialId, f64)>,
    /// `(loss key, promoted)` per member; doubles as the membership set.
    /// Keeping the promoted flag here makes the lazy-heap cleanup a single
    /// hash probe instead of an ordered-set seek.
    loss_of: FxHashMap<TrialId, (u64, bool)>,
    /// Lazy-deletion min-heap of `(loss_key, trial)` candidates: promoted
    /// entries are left in place and skipped (popped) at the next peek.
    /// `RefCell` because the cleanup happens inside `&self` queries.
    unpromoted: RefCell<BinaryHeap<Reverse<(u64, TrialId)>>>,
    /// Promoted trials ordered by `(loss_key, trial)`, for the exact rank
    /// check.
    promoted_sorted: BTreeSet<(u64, TrialId)>,
    /// The worst and second-worst promoted entries (`promoted_top[0]` is the
    /// worst). Promotions only ever insert, so these are maintained with two
    /// compares and answer the rank check without touching the ordered set
    /// whenever `promoted - k <= 1` — the common case by far, since the rank
    /// gate keeps the promoted population tracking `k`.
    promoted_top: [(u64, TrialId); 2],
    /// Candidate cache: the last promotability answer, success or failure.
    cache: Cell<Option<PromoCache>>,
}

impl Rung {
    /// Create an empty rung.
    pub fn new() -> Self {
        Rung::default()
    }

    /// Record a trial's loss at this rung. Re-reports of the same trial are
    /// ignored (first result wins), which makes executors free to retry jobs.
    pub fn record(&mut self, trial: TrialId, loss: f64) {
        // Treat NaN losses as worst-possible rather than corrupting sorts.
        let loss = if loss.is_nan() { f64::INFINITY } else { loss };
        let key = loss_key(loss);
        if let Entry::Vacant(slot) = self.loss_of.entry(trial) {
            slot.insert((key, false));
            self.records.push((trial, loss));
            self.unpromoted.get_mut().push(Reverse((key, trial)));
        }
    }

    /// Number of trials recorded at this rung.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no trial has reached this rung yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether the given trial has a recorded result here.
    pub fn contains(&self, trial: TrialId) -> bool {
        self.loss_of.contains_key(&trial)
    }

    /// Whether the given trial has already been promoted out of this rung.
    pub fn is_promoted(&self, trial: TrialId) -> bool {
        self.loss_of.get(&trial).is_some_and(|&(_, p)| p)
    }

    /// Number of trials promoted out of this rung so far.
    pub fn promoted_count(&self) -> usize {
        self.promoted_sorted.len()
    }

    /// All `(trial, loss)` records in arrival order.
    pub fn records(&self) -> &[(TrialId, f64)] {
        &self.records
    }

    /// The best (lowest `(loss, trial)`) not-yet-promoted entry, discarding
    /// stale heap entries along the way. Each promoted trial is discarded at
    /// most once over the rung's lifetime, so this is O(1) amortized.
    fn best_unpromoted(&self) -> Option<(u64, TrialId)> {
        let mut heap = self.unpromoted.borrow_mut();
        while let Some(&Reverse(entry)) = heap.peek() {
            if self.is_promoted(entry.1) {
                heap.pop();
            } else {
                return Some(entry);
            }
        }
        None
    }

    /// The `top_k` operator of Algorithms 1–2: the `k` best (lowest-loss)
    /// trials at this rung, best first. Ties break by trial id, which keeps
    /// promotion deterministic. This is an analysis/test path and pays an
    /// O(n log n) sort of the unpromoted population; the scheduler's hot
    /// path never calls it.
    pub fn top_k(&self, k: usize) -> Vec<(TrialId, f64)> {
        let heap = self.unpromoted.borrow();
        let mut unpromoted: Vec<(u64, TrialId)> = heap
            .iter()
            .map(|&Reverse(entry)| entry)
            .filter(|&(_, trial)| !self.is_promoted(trial))
            .collect();
        unpromoted.sort_unstable();
        // Merge the two ordered populations, taking the first k.
        let mut a = unpromoted.iter().peekable();
        let mut b = self.promoted_sorted.iter().peekable();
        let mut out = Vec::with_capacity(k.min(self.records.len()));
        while out.len() < k {
            let take_a = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let &(key, trial) = if take_a {
                a.next().expect("peeked")
            } else {
                b.next().expect("peeked")
            };
            out.push((trial, key_loss(key)));
        }
        out
    }

    /// The best not-yet-promoted trial among the top `1/eta` fraction of this
    /// rung (line 14–17 of Algorithm 2), if any. O(1) when the rung is
    /// unchanged since the last call (candidate cache hit, either answer).
    pub fn promotable(&self, eta: f64) -> Option<(TrialId, f64)> {
        let len = self.records.len();
        let p = self.promoted_sorted.len();
        let eta_bits = eta.to_bits();
        // The cache is consulted before `k` is even computed: the hit path —
        // several times per `suggest`, since the ladder scan revisits every
        // rung — is three integer compares and a `Cell` copy.
        if let Some(cached) = self.cache.get() {
            if (cached.len, cached.promoted, cached.eta_bits) == (len, p, eta_bits) {
                return cached.result.map(|(key, trial)| (trial, key_loss(key)));
            }
        }
        let k = (len as f64 / eta).floor() as usize;
        let result = if k == 0 {
            None
        } else {
            self.compute_promotable(k, p)
        };
        self.cache.set(Some(PromoCache {
            len,
            promoted: p,
            eta_bits,
            result,
        }));
        result.map(|(key, trial)| (trial, key_loss(key)))
    }

    /// The promotability check under an explicit [`PromotionRule`].
    ///
    /// The delayed gate — `promoted < floor(len/eta)` — depends only on the
    /// `(len, promoted, eta)` triple the candidate cache is keyed on, so it
    /// runs as pure arithmetic *before* the cached check and adds nothing to
    /// the indexes: whenever the gate passes, `promoted < k` means the eager
    /// answer (the fast path of [`Rung::promotable`]) is already exactly the
    /// delayed answer.
    pub fn promotable_ruled(&self, eta: f64, rule: PromotionRule) -> Option<(TrialId, f64)> {
        if rule == PromotionRule::Delayed {
            let k = (self.records.len() as f64 / eta).floor() as usize;
            if self.promoted_sorted.len() >= k {
                return None;
            }
        }
        self.promotable(eta)
    }

    /// The uncached promotability check (runs once per rung mutation).
    fn compute_promotable(&self, k: usize, p: usize) -> Option<(u64, TrialId)> {
        let (best_key, best_trial) = self.best_unpromoted()?;
        // Poisoned or diverged trials (infinite loss, NaN recorded as such)
        // are never promoted, even when the rung is small enough that they
        // would rank in the top `1/eta`: promoting them would spend higher
        // rungs on configurations known to be broken.
        if !key_loss(best_key).is_finite() {
            return None;
        }
        // Fast path: every trial better than the best unpromoted one is
        // promoted, so its rank is at most p.
        if p < k {
            return Some((best_key, best_trial));
        }
        // Exact rank check: the best unpromoted trial is in the top k iff
        // fewer than k promoted trials are strictly better, i.e. iff more
        // than `p - k` promoted trials are at or beyond it.
        let threshold = p - k;
        let candidate = (best_key, best_trial);
        // For `threshold <= 1` the incrementally maintained worst and
        // second-worst promoted entries decide this with one compare (the
        // (threshold+1)-th worst promoted entry must sit at or beyond the
        // candidate); `p` tracks `k` closely because promotions are gated on
        // this very check, so the ordered-set walk below almost never runs.
        if threshold <= 1 {
            return if self.promoted_top[threshold] >= candidate {
                Some(candidate)
            } else {
                None
            };
        }
        // General case: early-exit count, O(min(w, p - k + 1)) where `w` is
        // the number of promoted entries at or beyond the candidate.
        let mut count = 0usize;
        for _ in self.promoted_sorted.range(candidate..) {
            count += 1;
            if count > threshold {
                return Some(candidate);
            }
        }
        None
    }

    /// Mark a trial as promoted out of this rung. Unknown trials are
    /// ignored. The stale heap entry is *not* removed here (lazy deletion);
    /// the candidate cache self-invalidates because `promoted_count` grew.
    pub fn mark_promoted(&mut self, trial: TrialId) {
        if let Some(slot) = self.loss_of.get_mut(&trial) {
            slot.1 = true;
            let entry = (slot.0, trial);
            if self.promoted_sorted.insert(entry) {
                if entry > self.promoted_top[0] {
                    self.promoted_top[1] = self.promoted_top[0];
                    self.promoted_top[0] = entry;
                } else if entry > self.promoted_top[1] {
                    self.promoted_top[1] = entry;
                }
            }
        }
    }

    /// Best (lowest) loss at this rung, if any trial has completed.
    pub fn best(&self) -> Option<(TrialId, f64)> {
        let a = self.best_unpromoted();
        let b = self.promoted_sorted.first().copied();
        let (key, trial) = match (a, b) {
            (Some(x), Some(y)) => x.min(y),
            (Some(x), None) => x,
            (None, Some(y)) => y,
            (None, None) => return None,
        };
        Some((trial, key_loss(key)))
    }
}

/// The stack of rungs of one bracket, together with the resource level of
/// each rung: `r_k = min(r * eta^(s + k), R)`.
#[derive(Debug, Clone)]
pub struct RungLadder {
    rungs: Vec<Rung>,
    min_resource: f64,
    max_resource: f64,
    eta: f64,
    stop_rate: usize,
    max_rung: Option<usize>,
}

impl RungLadder {
    /// Build a ladder for a finite-horizon bracket: rungs `0..=K` with
    /// `K = floor(log_eta(R / r)) - s` (Algorithm 2 line 13 scans `K-1..=0`).
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2`, resources are non-positive, `r > R`, or the
    /// early-stopping rate `s` exceeds `floor(log_eta(R / r))`.
    pub fn finite(min_resource: f64, max_resource: f64, eta: f64, stop_rate: usize) -> Self {
        assert!(eta >= 2.0, "reduction factor eta must be >= 2");
        assert!(
            min_resource > 0.0 && max_resource >= min_resource,
            "resources must satisfy 0 < r <= R"
        );
        let s_max = (max_resource / min_resource).log(eta).floor() as usize;
        assert!(
            stop_rate <= s_max,
            "early-stopping rate s={stop_rate} exceeds log_eta(R/r)={s_max}"
        );
        let max_rung = s_max - stop_rate;
        RungLadder {
            rungs: vec![Rung::new(); max_rung + 1],
            min_resource,
            max_resource,
            eta,
            stop_rate,
            max_rung: Some(max_rung),
        }
    }

    /// Build an infinite-horizon ladder (Section 3.3): no top rung; the
    /// maximum resource grows as configurations keep being promoted.
    ///
    /// # Panics
    ///
    /// Panics if `eta < 2` or `min_resource <= 0`.
    pub fn infinite(min_resource: f64, eta: f64, stop_rate: usize) -> Self {
        assert!(eta >= 2.0, "reduction factor eta must be >= 2");
        assert!(min_resource > 0.0, "minimum resource must be positive");
        RungLadder {
            rungs: vec![Rung::new()],
            min_resource,
            max_resource: f64::INFINITY,
            eta,
            stop_rate,
            max_rung: None,
        }
    }

    /// The reduction factor `eta`.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// The early-stopping rate `s`.
    pub fn stop_rate(&self) -> usize {
        self.stop_rate
    }

    /// Index of the highest rung, if the horizon is finite.
    pub fn max_rung(&self) -> Option<usize> {
        self.max_rung
    }

    /// Cumulative resource allocated to a trial at rung `k`:
    /// `min(r * eta^(s + k), R)`.
    pub fn resource(&self, rung: usize) -> f64 {
        (self.min_resource * self.eta.powi((self.stop_rate + rung) as i32)).min(self.max_resource)
    }

    /// The rungs, bottom first. Infinite-horizon ladders grow on demand.
    pub fn rungs(&self) -> &[Rung] {
        &self.rungs
    }

    /// Mutable access to rung `k`, growing the ladder in the infinite
    /// horizon.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the top rung of a finite-horizon ladder.
    pub fn rung_mut(&mut self, k: usize) -> &mut Rung {
        if let Some(max) = self.max_rung {
            assert!(k <= max, "rung {k} exceeds finite-horizon top rung {max}");
        } else if k >= self.rungs.len() {
            self.rungs.resize_with(k + 1, Rung::new);
        }
        &mut self.rungs[k]
    }

    /// Record an observation at rung `k`.
    pub fn record(&mut self, rung: usize, trial: TrialId, loss: f64) {
        self.rung_mut(rung).record(trial, loss);
    }

    /// ASHA's promotion scan (Algorithm 2, `get_job`): walk rungs from the
    /// top promotable rung down to 0, returning the first `(trial, loss,
    /// rung)` whose trial sits in the top `1/eta` of its rung and has not
    /// been promoted. The returned rung is the rung the trial is *in*; the
    /// caller promotes it to `rung + 1`.
    pub fn find_promotable(&self) -> Option<(TrialId, f64, usize)> {
        self.find_promotable_ordered(ScanOrder::TopDown)
    }

    /// The promotion scan with an explicit rung visiting order. Algorithm 2
    /// prescribes [`ScanOrder::TopDown`] (line 13 iterates `K-1, ..., 1, 0`);
    /// [`ScanOrder::BottomUp`] is provided for the ablation study of that
    /// design choice. With the per-rung candidate caches, an unchanged
    /// ladder answers this scan in a handful of integer compares.
    pub fn find_promotable_ordered(&self, order: ScanOrder) -> Option<(TrialId, f64, usize)> {
        self.find_promotable_ruled(order, PromotionRule::Eager)
    }

    /// The promotion scan with an explicit visiting order *and* promotion
    /// rule. [`PromotionRule::Delayed`] is the D-ASHA scan: identical walk,
    /// but each rung's candidate must also fit under the `floor(len/eta)`
    /// promotion quota.
    pub fn find_promotable_ruled(
        &self,
        order: ScanOrder,
        rule: PromotionRule,
    ) -> Option<(TrialId, f64, usize)> {
        let top = match self.max_rung {
            // Finite horizon: scan K-1 .. 0 (trials at rung K are done).
            Some(max) => max,
            // Infinite horizon: every existing rung may promote upward.
            None => self.rungs.len(),
        };
        let limit = top.min(self.rungs.len());
        let scan = |k: usize| {
            self.rungs[k]
                .promotable_ruled(self.eta, rule)
                .map(|(t, l)| (t, l, k))
        };
        match order {
            ScanOrder::TopDown => (0..limit).rev().find_map(scan),
            ScanOrder::BottomUp => (0..limit).find_map(scan),
        }
    }

    /// Mark a trial as promoted out of rung `k`.
    pub fn mark_promoted(&mut self, rung: usize, trial: TrialId) {
        self.rung_mut(rung).mark_promoted(trial);
    }

    /// The best loss observed anywhere in the ladder, preferring higher
    /// rungs' intermediate losses as ASHA does for incumbent reporting
    /// (Section 3.3: "ASHA uses intermediate losses to determine the current
    /// best performing configuration").
    pub fn best_loss(&self) -> Option<(TrialId, f64)> {
        self.rungs
            .iter()
            .flat_map(|r| r.best())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_key_is_monotone() {
        let values = [-1e9, -1.0, -1e-12, 0.0, 1e-12, 0.5, 1.0, 1e9, f64::INFINITY];
        for w in values.windows(2) {
            assert!(loss_key(w[0]) < loss_key(w[1]), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn resources_follow_geometric_schedule() {
        // Figure 1 bracket 0: r=1, R=9, eta=3 -> rungs at 1, 3, 9.
        let ladder = RungLadder::finite(1.0, 9.0, 3.0, 0);
        assert_eq!(ladder.max_rung(), Some(2));
        assert_eq!(ladder.resource(0), 1.0);
        assert_eq!(ladder.resource(1), 3.0);
        assert_eq!(ladder.resource(2), 9.0);
        assert_eq!(ladder.eta(), 3.0);
        assert_eq!(ladder.stop_rate(), 0);
    }

    #[test]
    fn stop_rate_shifts_the_base_resource() {
        // Figure 1 bracket 1: rungs at 3, 9. Bracket 2: rung at 9.
        let b1 = RungLadder::finite(1.0, 9.0, 3.0, 1);
        assert_eq!(b1.max_rung(), Some(1));
        assert_eq!(b1.resource(0), 3.0);
        assert_eq!(b1.resource(1), 9.0);
        let b2 = RungLadder::finite(1.0, 9.0, 3.0, 2);
        assert_eq!(b2.max_rung(), Some(0));
        assert_eq!(b2.resource(0), 9.0);
    }

    #[test]
    fn resource_is_capped_at_r_max() {
        // R/r not a power of eta: top rung resource is clamped to R.
        let ladder = RungLadder::finite(1.0, 10.0, 3.0, 0);
        assert_eq!(ladder.max_rung(), Some(2));
        assert_eq!(ladder.resource(2), 9.0);
        assert_eq!(ladder.resource(3), 10.0); // hypothetical rung clamps
    }

    #[test]
    fn promotable_needs_eta_records() {
        let mut rung = Rung::new();
        rung.record(TrialId(0), 0.5);
        rung.record(TrialId(1), 0.3);
        // |rung|/eta = 2/3 -> floor 0 candidates.
        assert_eq!(rung.promotable(3.0), None);
        rung.record(TrialId(2), 0.8);
        // Now 3/3 = 1 candidate: trial 1 with loss 0.3.
        assert_eq!(rung.promotable(3.0), Some((TrialId(1), 0.3)));
        assert!(rung.contains(TrialId(1)));
        assert!(!rung.contains(TrialId(9)));
    }

    #[test]
    fn non_finite_losses_are_never_promotable() {
        let mut rung = Rung::new();
        rung.record(TrialId(0), f64::INFINITY);
        rung.record(TrialId(1), f64::NAN); // recorded as INFINITY
        rung.record(TrialId(2), f64::INFINITY);
        // 3/3 = 1 candidate by count, but every loss is poisoned.
        assert_eq!(rung.promotable(3.0), None);
        // A finite arrival is promotable as usual; the poisoned ones stay.
        for t in 3..9 {
            rung.record(TrialId(t), 0.5);
        }
        rung.record(TrialId(9), 0.1);
        assert_eq!(rung.promotable(3.0), Some((TrialId(9), 0.1)));
        rung.mark_promoted(TrialId(9));
        for t in 3..9 {
            rung.mark_promoted(TrialId(t));
        }
        // Only the non-finite trials remain unpromoted; k = 3 but none pass.
        assert_eq!(rung.promotable(3.0), None);
    }

    #[test]
    fn promoted_trials_are_skipped() {
        let mut rung = Rung::new();
        for (i, loss) in [0.9, 0.1, 0.2, 0.3, 0.4, 0.5].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        // top 6/3 = 2: trials 1 (0.1) and 2 (0.2).
        assert_eq!(rung.promotable(3.0), Some((TrialId(1), 0.1)));
        rung.mark_promoted(TrialId(1));
        assert!(rung.is_promoted(TrialId(1)));
        assert_eq!(rung.promotable(3.0), Some((TrialId(2), 0.2)));
        rung.mark_promoted(TrialId(2));
        assert_eq!(rung.promotable(3.0), None);
        assert_eq!(rung.promoted_count(), 2);
    }

    #[test]
    fn late_better_arrivals_reopen_promotion() {
        // The exact Algorithm 2 corner case: the rung has promoted its k
        // quota, but a strictly better configuration arrives later — it
        // ranks inside the top k, so it must be promotable.
        let mut rung = Rung::new();
        for (i, loss) in [0.5, 0.6, 0.7].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        let (t, _) = rung.promotable(3.0).unwrap();
        rung.mark_promoted(t); // quota of k=1 used
        assert_eq!(rung.promotable(3.0), None);
        rung.record(TrialId(10), 0.1); // better than everything promoted
                                       // k is still floor(4/3) = 1 and promoted = 1, but trial 10 ranks 0.
        assert_eq!(rung.promotable(3.0), Some((TrialId(10), 0.1)));
    }

    #[test]
    fn delayed_rule_enforces_the_promotion_quota() {
        // Same setup as `late_better_arrivals_reopen_promotion`: eager ASHA
        // promotes the late better arrival immediately, D-ASHA delays it
        // until the rung grows another quota slot.
        let mut rung = Rung::new();
        for (i, loss) in [0.5, 0.6, 0.7].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        let (t, _) = rung.promotable_ruled(3.0, PromotionRule::Delayed).unwrap();
        assert_eq!(t, TrialId(0));
        rung.mark_promoted(t); // quota of k=1 used
        rung.record(TrialId(10), 0.1); // better than everything promoted
        assert_eq!(
            rung.promotable(3.0),
            Some((TrialId(10), 0.1)),
            "eager rule promotes the late arrival"
        );
        assert_eq!(
            rung.promotable_ruled(3.0, PromotionRule::Delayed),
            None,
            "delayed rule holds it back: promoted = k = floor(4/3)"
        );
        // Two more records make k = 2 > promoted = 1: the slot opens.
        rung.record(TrialId(11), 0.9);
        rung.record(TrialId(12), 0.9);
        assert_eq!(
            rung.promotable_ruled(3.0, PromotionRule::Delayed),
            Some((TrialId(10), 0.1))
        );
    }

    #[test]
    fn delayed_rule_matches_eager_under_quota() {
        let mut rung = Rung::new();
        for (i, loss) in [0.9, 0.1, 0.2, 0.3, 0.4, 0.5].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        // k = 2, promoted = 0: both rules agree.
        assert_eq!(
            rung.promotable_ruled(3.0, PromotionRule::Delayed),
            rung.promotable_ruled(3.0, PromotionRule::Eager),
        );
    }

    #[test]
    fn candidate_cache_invalidates_on_change() {
        let mut rung = Rung::new();
        for (i, loss) in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        rung.mark_promoted(TrialId(0));
        rung.mark_promoted(TrialId(1));
        assert_eq!(rung.promotable(3.0), None);
        assert_eq!(rung.promotable(3.0), None); // cached path
                                                // Growth changes k: 9 records -> k = 3.
        for i in 6..9 {
            rung.record(TrialId(i), 0.9);
        }
        assert_eq!(rung.promotable(3.0), Some((TrialId(2), 0.3)));
    }

    #[test]
    fn candidate_cache_serves_success_repeatedly() {
        // A cached *success* must also survive repeated queries (analysis
        // code may probe without promoting) and must change the moment the
        // caller promotes.
        let mut rung = Rung::new();
        for (i, loss) in [0.3, 0.1, 0.2].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        assert_eq!(rung.promotable(3.0), Some((TrialId(1), 0.1)));
        assert_eq!(rung.promotable(3.0), Some((TrialId(1), 0.1))); // cache hit
        rung.mark_promoted(TrialId(1));
        assert_eq!(rung.promotable(3.0), None);
    }

    #[test]
    fn candidate_cache_distinguishes_eta() {
        let mut rung = Rung::new();
        for (i, loss) in [0.4, 0.1, 0.2, 0.3].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        rung.mark_promoted(TrialId(1));
        // k = floor(4/4) = 1 and the only top-1 trial is promoted.
        assert_eq!(rung.promotable(4.0), None);
        // A different eta must not reuse that answer: k = floor(4/2) = 2.
        assert_eq!(rung.promotable(2.0), Some((TrialId(2), 0.2)));
    }

    #[test]
    fn top_k_merges_promoted_and_unpromoted() {
        let mut rung = Rung::new();
        for (i, loss) in [0.4, 0.1, 0.3, 0.2].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        rung.mark_promoted(TrialId(1));
        let top = rung.top_k(3);
        let ids: Vec<u64> = top.iter().map(|(t, _)| t.0).collect();
        assert_eq!(ids, vec![1, 3, 2]);
        assert_eq!(top[0].1, 0.1);
    }

    #[test]
    fn duplicate_records_are_ignored() {
        let mut rung = Rung::new();
        rung.record(TrialId(0), 0.5);
        rung.record(TrialId(0), 0.1);
        assert_eq!(rung.len(), 1);
        assert_eq!(rung.records()[0].1, 0.5);
        assert!(!rung.is_empty());
    }

    #[test]
    fn nan_losses_become_infinite() {
        let mut rung = Rung::new();
        rung.record(TrialId(0), f64::NAN);
        rung.record(TrialId(1), 0.4);
        assert_eq!(rung.best(), Some((TrialId(1), 0.4)));
        assert_eq!(rung.top_k(2)[1].0, TrialId(0));
    }

    #[test]
    fn best_is_stable_after_promotions() {
        // best() consults the lazy heap; stale entries must not resurface.
        let mut rung = Rung::new();
        for (i, loss) in [0.2, 0.1, 0.3].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        assert_eq!(rung.best(), Some((TrialId(1), 0.1)));
        rung.mark_promoted(TrialId(1));
        // Trial 1 is promoted but still the rung's best loss.
        assert_eq!(rung.best(), Some((TrialId(1), 0.1)));
        rung.mark_promoted(TrialId(0));
        assert_eq!(rung.best(), Some((TrialId(1), 0.1)));
        assert_eq!(rung.promoted_count(), 2);
    }

    #[test]
    fn mark_promoted_unknown_trial_is_ignored() {
        let mut rung = Rung::new();
        rung.record(TrialId(0), 0.5);
        rung.mark_promoted(TrialId(42));
        assert_eq!(rung.promoted_count(), 0);
    }

    #[test]
    fn mark_promoted_is_idempotent() {
        let mut rung = Rung::new();
        for (i, loss) in [0.1, 0.2, 0.3].iter().enumerate() {
            rung.record(TrialId(i as u64), *loss);
        }
        rung.mark_promoted(TrialId(0));
        rung.mark_promoted(TrialId(0));
        assert_eq!(rung.promoted_count(), 1);
        assert_eq!(rung.promotable(3.0), None);
    }

    #[test]
    fn find_promotable_scans_top_down() {
        let mut ladder = RungLadder::finite(1.0, 27.0, 3.0, 0);
        for i in 0..3 {
            ladder.record(0, TrialId(i), 0.1 * (i + 1) as f64);
        }
        for i in 3..6 {
            ladder.record(1, TrialId(i), 0.1 * (i + 1) as f64);
        }
        // Rung 1's best (trial 3) wins over rung 0's best (trial 0).
        let (t, _, k) = ladder.find_promotable().unwrap();
        assert_eq!((t, k), (TrialId(3), 1));
        ladder.mark_promoted(1, TrialId(3));
        let (t, _, k) = ladder.find_promotable().unwrap();
        assert_eq!((t, k), (TrialId(0), 0));
    }

    #[test]
    fn top_rung_never_promotes_in_finite_horizon() {
        let mut ladder = RungLadder::finite(1.0, 9.0, 3.0, 0);
        for i in 0..9 {
            ladder.record(2, TrialId(i), i as f64);
        }
        assert_eq!(ladder.find_promotable(), None);
    }

    #[test]
    fn infinite_horizon_grows_rungs() {
        let mut ladder = RungLadder::infinite(1.0, 3.0, 0);
        assert_eq!(ladder.max_rung(), None);
        for i in 0..3 {
            ladder.record(4, TrialId(i), i as f64);
        }
        assert_eq!(ladder.rungs().len(), 5);
        // Rung 4 can promote upward: resources keep scaling.
        let (t, _, k) = ladder.find_promotable().unwrap();
        assert_eq!((t, k), (TrialId(0), 4));
        assert_eq!(ladder.resource(5), 3f64.powi(5));
    }

    #[test]
    fn best_loss_uses_intermediate_results() {
        let mut ladder = RungLadder::finite(1.0, 9.0, 3.0, 0);
        ladder.record(0, TrialId(0), 0.9);
        ladder.record(1, TrialId(1), 0.2);
        assert_eq!(ladder.best_loss(), Some((TrialId(1), 0.2)));
    }

    #[test]
    fn promotion_scales_to_large_rungs() {
        // Performance smoke test: 50k records with interleaved promotions
        // must complete fast (quadratic behaviour would take minutes).
        let start = std::time::Instant::now();
        let mut rung = Rung::new();
        let mut promoted = 0u64;
        for i in 0..50_000u64 {
            rung.record(TrialId(i), (i % 977) as f64);
            if let Some((t, _)) = rung.promotable(4.0) {
                rung.mark_promoted(t);
                promoted += 1;
            }
        }
        assert!(promoted > 10_000, "promoted {promoted}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "promotion path too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    #[should_panic(expected = "exceeds finite-horizon top rung")]
    fn finite_ladder_rejects_out_of_range_rung() {
        let mut ladder = RungLadder::finite(1.0, 9.0, 3.0, 0);
        ladder.record(3, TrialId(0), 0.1);
    }

    #[test]
    #[should_panic(expected = "eta must be >= 2")]
    fn small_eta_is_rejected() {
        let _ = RungLadder::finite(1.0, 9.0, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds log_eta")]
    fn oversized_stop_rate_is_rejected() {
        let _ = RungLadder::finite(1.0, 9.0, 3.0, 3);
    }
}

//! Property tests of mid-run scheduler persistence: for every scheduler
//! kind, driving it partway through a run (with arbitrary interleavings of
//! suggestions and observations, including non-finite losses and pending
//! promotions), serializing its state to JSON, parsing that text back, and
//! restoring must yield a scheduler whose subsequent decision stream is
//! identical to the original's — the property crash recovery rests on.

use std::collections::VecDeque;

use asha_core::{
    Asha, AshaConfig, AsyncHyperband, Decision, HyperbandConfig, Job, Observation, Scheduler,
    ShaConfig, SyncSha,
};
use asha_metrics::JsonValue;
use asha_space::{Scale, SearchSpace};
use asha_store::{SchedulerState, StoredScheduler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-4, 1.0, Scale::Log)
        .discrete("layers", 1, 8)
        .categorical("opt", &["sgd", "adam", "rms"])
        .build()
        .expect("valid space")
}

/// Deterministic loss for a finished job: mostly finite, with the script
/// able to force divergence-style non-finite values.
fn loss_for(job: &Job, kind: u8) -> f64 {
    match kind {
        0 => f64::INFINITY,
        1 => f64::NAN,
        _ => 0.5 + ((job.trial.0 as f64 * 0.37 + job.rung as f64 * 0.11).sin() * 0.4),
    }
}

/// One driving step: whether to retire a pending job before suggesting, and
/// how its loss behaves (0 = +inf, 1 = NaN, else finite).
type ScriptStep = (bool, u8);

/// Drive `scheduler` through `script`, keeping issued-but-unfinished jobs in
/// a pending queue (so promotions can be outstanding when we stop).
fn drive(
    scheduler: &mut StoredScheduler,
    rng: &mut StdRng,
    pending: &mut VecDeque<Job>,
    script: &[ScriptStep],
) {
    for &(observe_first, loss_kind) in script {
        if observe_first {
            if let Some(job) = pending.pop_front() {
                let loss = loss_for(&job, loss_kind);
                scheduler.observe(Observation::for_job(&job, loss));
            }
        }
        match scheduler.suggest(rng) {
            Decision::Run(job) => pending.push_back(job),
            Decision::Wait | Decision::Finished => {}
        }
    }
}

/// Serialize → render → parse → restore, then check the original and the
/// restored copy produce identical decision streams from identical RNGs.
fn check_roundtrip(
    mut original: StoredScheduler,
    script: Vec<ScriptStep>,
    seed: u64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending = VecDeque::new();
    drive(&mut original, &mut rng, &mut pending, &script);

    // Full JSON round trip through rendered text, exactly as a snapshot
    // file would store it.
    let state = original.export_state();
    let text = state.to_json().render();
    let parsed = JsonValue::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|v| SchedulerState::from_json(&v).map_err(|e| e.to_string()))?;
    // State equality is checked via re-rendered JSON (NaN losses make the
    // structural PartialEq vacuously false).
    prop_assert_eq!(&text, &parsed.to_json().render());
    let mut restored = StoredScheduler::from_state(space(), parsed);

    // Identical RNG streams from the captured state.
    let words = rng.state();
    let mut rng_a = StdRng::from_state(words);
    let mut rng_b = StdRng::from_state(words);
    let mut pending_b = pending.clone();

    for step in 0..60 {
        // Deterministically retire one job on alternating steps so rungs
        // keep filling and promotions keep happening.
        if step % 2 == 1 {
            if let (Some(ja), Some(jb)) = (pending.pop_front(), pending_b.pop_front()) {
                prop_assert_eq!(&ja, &jb);
                let loss = loss_for(&ja, (step % 5) as u8);
                original.observe(Observation::for_job(&ja, loss));
                restored.observe(Observation::for_job(&jb, loss));
            }
        }
        let da = original.suggest(&mut rng_a);
        let db = restored.suggest(&mut rng_b);
        prop_assert_eq!(&da, &db, "decision streams diverged at step {}", step);
        if let Decision::Run(job) = da {
            pending.push_back(job.clone());
            pending_b.push_back(job);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn asha_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::Asha(Asha::new(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn sync_sha_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::SyncSha(SyncSha::new(
            space(),
            ShaConfig::new(27, 1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn async_hyperband_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::AsyncHyperband(AsyncHyperband::new(
            space(),
            HyperbandConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }
}

//! Property tests of mid-run scheduler persistence: for every scheduler
//! kind, driving it partway through a run (with arbitrary interleavings of
//! suggestions and observations, including non-finite losses and pending
//! promotions), serializing its state to JSON, parsing that text back, and
//! restoring must yield a scheduler whose subsequent decision stream is
//! identical to the original's — the property crash recovery rests on.

use std::collections::VecDeque;

use asha_baselines::{bohb_asha, dasha_tpe, GpSampler, GpSamplerConfig};
use asha_core::{
    Asha, AshaConfig, AsyncHyperband, DAsha, Decision, HyperbandConfig, Job, Observation,
    Scheduler, ShaConfig, SyncSha,
};
use asha_metrics::JsonValue;
use asha_space::{Scale, SearchSpace};
use asha_store::{SamplerSpec, SchedulerState, StoredScheduler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .continuous("lr", 1e-4, 1.0, Scale::Log)
        .discrete("layers", 1, 8)
        .categorical("opt", &["sgd", "adam", "rms"])
        .build()
        .expect("valid space")
}

/// Deterministic loss for a finished job: mostly finite, with the script
/// able to force divergence-style non-finite values.
fn loss_for(job: &Job, kind: u8) -> f64 {
    match kind {
        0 => f64::INFINITY,
        1 => f64::NAN,
        _ => 0.5 + ((job.trial.0 as f64 * 0.37 + job.rung as f64 * 0.11).sin() * 0.4),
    }
}

/// One driving step: whether to retire a pending job before suggesting, and
/// how its loss behaves (0 = +inf, 1 = NaN, else finite).
type ScriptStep = (bool, u8);

/// Drive `scheduler` through `script`, keeping issued-but-unfinished jobs in
/// a pending queue (so promotions can be outstanding when we stop).
fn drive(
    scheduler: &mut StoredScheduler,
    rng: &mut StdRng,
    pending: &mut VecDeque<Job>,
    script: &[ScriptStep],
) {
    for &(observe_first, loss_kind) in script {
        if observe_first {
            if let Some(job) = pending.pop_front() {
                let loss = loss_for(&job, loss_kind);
                scheduler.observe(Observation::for_job(&job, loss));
            }
        }
        match scheduler.suggest(rng) {
            Decision::Run(job) => pending.push_back(job),
            Decision::Wait | Decision::Finished => {}
        }
    }
}

/// Serialize → render → parse → restore, then check the original and the
/// restored copy produce identical decision streams from identical RNGs.
fn check_roundtrip(
    mut original: StoredScheduler,
    script: Vec<ScriptStep>,
    seed: u64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending = VecDeque::new();
    drive(&mut original, &mut rng, &mut pending, &script);

    // Full JSON round trip through rendered text, exactly as a snapshot
    // file would store it.
    let state = original.export_state();
    let text = state.to_json().render();
    let parsed = JsonValue::parse(&text)
        .map_err(|e| e.to_string())
        .and_then(|v| SchedulerState::from_json(&v).map_err(|e| e.to_string()))?;
    // State equality is checked via re-rendered JSON (NaN losses make the
    // structural PartialEq vacuously false).
    prop_assert_eq!(&text, &parsed.to_json().render());
    // The sampling plane takes the same trip: kind + cursors through JSON,
    // then a fresh sampler instance rehydrated from the parsed spec — the
    // exact path `DurableRun::resume` walks.
    let spec = original.export_sampler_spec();
    let parsed_spec = match &spec {
        None => None,
        Some(s) => {
            let spec_text = s.to_json().render();
            let v = JsonValue::parse(&spec_text).map_err(|e| e.to_string())?;
            let back = SamplerSpec::from_json(&v).map_err(|e| e.to_string())?;
            prop_assert_eq!(s, &back, "sampler spec JSON roundtrip changed it");
            Some(back)
        }
    };
    let kind = parsed_spec
        .as_ref()
        .map(|s| s.kind.as_str())
        .unwrap_or("random");
    let mut restored = StoredScheduler::from_state_with_sampler(space(), parsed, kind)
        .map_err(|e| e.to_string())?;
    if let Some(s) = &parsed_spec {
        restored.restore_sampler_spec(s);
    }
    prop_assert_eq!(
        &spec,
        &restored.export_sampler_spec(),
        "restored sampler cursor differs from the exported one"
    );

    // Identical RNG streams from the captured state.
    let words = rng.state();
    let mut rng_a = StdRng::from_state(words);
    let mut rng_b = StdRng::from_state(words);
    let mut pending_b = pending.clone();

    for step in 0..60 {
        // Deterministically retire one job on alternating steps so rungs
        // keep filling and promotions keep happening.
        if step % 2 == 1 {
            if let (Some(ja), Some(jb)) = (pending.pop_front(), pending_b.pop_front()) {
                prop_assert_eq!(&ja, &jb);
                let loss = loss_for(&ja, (step % 5) as u8);
                original.observe(Observation::for_job(&ja, loss));
                restored.observe(Observation::for_job(&jb, loss));
            }
        }
        let da = original.suggest(&mut rng_a);
        let db = restored.suggest(&mut rng_b);
        prop_assert_eq!(&da, &db, "decision streams diverged at step {}", step);
        if let Decision::Run(job) = da {
            pending.push_back(job.clone());
            pending_b.push_back(job);
        }
    }
    // Continued-export equality: after sixty further events the restored
    // scheduler's *exportable state* — not just its decision stream — must
    // still match the original's. This is what pins the promotion indexes
    // (candidate caches, lazy heaps, rank sets) as pure derived data: a
    // ladder rebuilt by replay and then mutated further is observationally
    // identical to one that never went through serialization.
    prop_assert_eq!(
        original.export_state().to_json().render(),
        restored.export_state().to_json().render(),
        "continued exports diverged after restore"
    );
    // And the sampling plane too: sixty further shared observations must
    // leave both sampler models (cursors) identical — a restored model that
    // silently dropped observations would diverge here.
    prop_assert_eq!(
        original.export_sampler_spec(),
        restored.export_sampler_spec(),
        "continued sampler cursors diverged after restore"
    );
    Ok(())
}

/// Compatibility: snapshots written before the promotion-candidate indexes
/// existed contain only arrival-ordered records and promoted lists — no
/// index data. Loading such a snapshot must rebuild every index by replay
/// and make the exact promotion decisions the records imply.
///
/// The fixture is hand-written JSON in the v1 snapshot scheduler schema
/// (which the index work deliberately left unchanged): a two-rung ASHA
/// ladder mid-run, with rung 0 at its promotion quota and rung 1 holding an
/// unpromoted best trial.
#[test]
fn pre_index_snapshot_restores_and_promotes_correctly() {
    let fixture_space = SearchSpace::builder()
        .continuous("x", 0.0, 1.0, Scale::Linear)
        .build()
        .expect("valid space");
    let trials_json: String = (0..9)
        .map(|t| format!("[{t}, [{{\"float\": 0.{t}5}}]]"))
        .collect::<Vec<_>>()
        .join(", ");
    let text = format!(
        r#"{{
        "kind": "asha",
        "state": {{
            "config": {{
                "min_resource": 1.0, "max_resource": 9.0,
                "reduction_factor": 3.0, "stop_rate": 0,
                "infinite_horizon": false, "max_trials": null,
                "scan_order": "top_down"
            }},
            "rungs": [
                {{"records": [[0, 0.5], [1, 0.1], [2, 0.3], [3, 0.9], [4, 0.2],
                              [5, 0.6], [6, 0.05], [7, 0.8], [8, 0.7]],
                  "promoted": [1, 4, 6]}},
                {{"records": [[6, 0.06], [1, 0.12], [4, 0.22]], "promoted": []}}
            ],
            "trials": [{trials_json}],
            "outstanding": [],
            "next_trial": 9,
            "trials_started": 9,
            "name": "ASHA"
        }}
    }}"#
    );
    let parsed = JsonValue::parse(&text).expect("fixture parses");
    let state = SchedulerState::from_json(&parsed).expect("fixture decodes");
    let mut restored = StoredScheduler::from_state(fixture_space, state);
    let mut rng = StdRng::seed_from_u64(0);

    // Rung 1 (len 3, eta 3 -> k = 1, none promoted) holds the best
    // unpromoted trial 6 at loss 0.06: the top-down scan must promote it to
    // rung 2 at resource 9. Rung 0 must NOT promote: its best unpromoted
    // trial 2 (loss 0.3) ranks behind the three promoted trials (0.05, 0.1,
    // 0.2) with k = floor(9/3) = 3.
    let first = restored.suggest(&mut rng);
    match &first {
        Decision::Run(job) => {
            assert_eq!(job.trial.0, 6, "expected trial 6 promoted, got {first:?}");
            assert_eq!(job.rung, 2);
            assert_eq!(job.resource, 9.0);
        }
        other => panic!("expected a promotion, got {other:?}"),
    }

    // With trial 6 promoted, rung 1's quota (k = 1) is used and rung 0 is
    // still at quota, so the next decision must grow the bottom rung with a
    // freshly sampled trial 9 — exercising the rebuilt rank index's "no"
    // answer on both rungs.
    let second = restored.suggest(&mut rng);
    match &second {
        Decision::Run(job) => {
            assert_eq!(job.trial.0, 9, "expected fresh trial 9, got {second:?}");
            assert_eq!(job.rung, 0);
            assert_eq!(job.resource, 1.0);
        }
        other => panic!("expected a fresh sample, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn asha_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::Asha(Asha::new(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn dasha_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::DAsha(DAsha::new(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn asha_tpe_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        // Model-based sampling through the snapshot path: the TPE cursor
        // must survive serialization and keep proposing identically.
        let scheduler = StoredScheduler::Asha(bohb_asha(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn dasha_tpe_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::DAsha(dasha_tpe(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn asha_gp_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..40),
        seed in 0u64..1000,
    ) {
        let sampler = Box::new(GpSampler::new(space(), GpSamplerConfig::default()));
        let scheduler = StoredScheduler::Asha(Asha::with_sampler(
            space(),
            AshaConfig::new(1.0, 27.0, 3.0),
            sampler,
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn sync_sha_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::SyncSha(SyncSha::new(
            space(),
            ShaConfig::new(27, 1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }

    #[test]
    fn async_hyperband_roundtrips_mid_run(
        script in prop::collection::vec((any::<bool>(), 0u8..5), 1..80),
        seed in 0u64..1000,
    ) {
        let scheduler = StoredScheduler::AsyncHyperband(AsyncHyperband::new(
            space(),
            HyperbandConfig::new(1.0, 27.0, 3.0),
        ));
        check_roundtrip(scheduler, script, seed)?;
    }
}

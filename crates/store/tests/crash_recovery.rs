//! Crash-recovery integration tests: a durable run killed at an arbitrary
//! point and recovered must finish with a result bitwise-identical to an
//! uninterrupted run of the same seed — the store's core guarantee.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};

use asha_baselines::{bohb_asha, dasha_tpe};
use asha_core::{Asha, AshaConfig, Decision, Observation, Scheduler};
use asha_sim::{SimConfig, SimResult};
use asha_store::{
    read_meta, read_wal, replay_scheduler, BenchSpec, Durability, DurableRun, ExperimentMeta,
    ExperimentStatus, ExperimentSupervisor, RunOptions, SchedulerState, StoreFormat,
    StoredScheduler, WAL_FILE,
};
use asha_surrogate::BenchmarkModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asha-store-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small chaos experiment (stragglers + drops) over a real surrogate.
fn chaos_meta(name: &str, seed: u64) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: name.to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed,
        sim: SimConfig::new(6, 50.0)
            .with_stragglers(0.4)
            .with_drops(0.02),
        bench: spec,
    }
}

/// Like [`chaos_meta`] but with a TPE sampler attached — on ASHA or, when
/// `delayed` is set, on D-ASHA. Exercises the sampling plane's durability:
/// snapshots must carry the sampler's model cursor, and recovery must
/// resume the model warm.
fn tpe_meta(name: &str, seed: u64, delayed: bool) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let config = AshaConfig::new(1.0, 27.0, 3.0);
    let initial = if delayed {
        SchedulerState::DAsha(dasha_tpe(space.clone(), config).export_state())
    } else {
        SchedulerState::Asha(bohb_asha(space.clone(), config).export_state())
    };
    ExperimentMeta {
        name: name.to_owned(),
        space,
        initial,
        sampler: Some("tpe".to_owned()),
        seed,
        sim: SimConfig::new(6, 50.0)
            .with_stragglers(0.4)
            .with_drops(0.02),
        bench: spec,
    }
}

fn opts(snapshot_jobs: usize) -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(16),
        snapshot_jobs,
        ..RunOptions::default()
    }
}

/// The same knobs in the `jsonl-v1` dialect with deltas disabled — the
/// exact on-disk behavior of pre-codec-redesign stores.
fn v1_opts(snapshot_jobs: usize) -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(16),
        snapshot_jobs,
        format: StoreFormat::JsonlV1,
        delta_chain: 0,
    }
}

fn assert_results_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.distinct_trials, b.distinct_trials);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.scheduler_finished, b.scheduler_finished);
    assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    assert_eq!(
        a.trace, b.trace,
        "completion traces must match event-for-event"
    );
    match (&a.best_config, &b.best_config) {
        (Some((ca, la, ra)), Some((cb, lb, rb))) => {
            assert_eq!(ca, cb);
            assert_eq!(
                la.to_bits(),
                lb.to_bits(),
                "incumbent loss must be bitwise equal"
            );
            assert_eq!(ra.to_bits(), rb.to_bits());
        }
        (None, None) => {}
        other => panic!("incumbent mismatch: {other:?}"),
    }
}

fn uninterrupted_result(meta: &ExperimentMeta, dir: &Path, o: RunOptions) -> SimResult {
    let bench = meta.bench.build().unwrap();
    DurableRun::create(dir, meta, &bench, o)
        .unwrap()
        .run_to_completion()
        .unwrap()
}

#[test]
fn recovery_after_hard_kill_matches_uninterrupted_run() {
    // Both dialects, including the pre-redesign on-disk shape (jsonl-v1,
    // no delta chain): recovery must be bit-identical under each.
    for (tag, o) in [("bin", opts(30)), ("v1", v1_opts(30))] {
        recovery_after_hard_kill(tag, o);
    }
}

fn recovery_after_hard_kill(tag: &str, o: RunOptions) {
    let root = tmpdir(&format!("kill-{tag}"));
    let meta = chaos_meta("kill", 42);
    let reference = uninterrupted_result(&meta, &root.join("ref"), o);

    // Kill at several points: before the first snapshot-after-0, right
    // around cadence boundaries, and deep into the run.
    for &kill_after in &[1usize, 17, 30, 31, 95, 200] {
        let dir = root.join(format!("kill-{kill_after}"));
        let bench = meta.bench.build().unwrap();
        let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
        let alive = run.run_until_jobs(kill_after).unwrap();
        if alive {
            // Die without destructors: buffered WAL lines are lost, exactly
            // as in a SIGKILL. (The leaked file handle closes at process
            // exit without flushing the BufWriter.)
            std::mem::forget(run);
        } else {
            drop(run);
        }

        let recovered_meta = read_meta(&dir).unwrap();
        let bench2 = recovered_meta.bench.build().unwrap();
        let resumed = DurableRun::resume(&dir, &recovered_meta, &bench2, o).unwrap();
        let result = resumed.run_to_completion().unwrap();
        assert_results_identical(&reference, &result);
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The sampling plane's crash-recovery guarantee: a killed-and-recovered
/// run with a model-based sampler finishes bitwise identical to an
/// uninterrupted one — which can only happen if the snapshot carried the
/// sampler's observation buffer and resume restored it exactly (a sampler
/// silently reset to cold would propose different configurations within a
/// few suggests of the model threshold).
#[test]
fn recovery_with_model_sampler_matches_uninterrupted_run() {
    for (tag, delayed) in [("asha-tpe", false), ("dasha-tpe", true)] {
        let root = tmpdir(tag);
        let o = opts(30);
        let meta = tpe_meta(tag, 42, delayed);
        let ref_dir = root.join("ref");
        let reference = uninterrupted_result(&meta, &ref_dir, o);

        // Kill points straddle the sampler's model threshold (d + 3
        // observations) and the snapshot cadence.
        for &kill_after in &[1usize, 17, 31, 95, 200] {
            let dir = root.join(format!("kill-{kill_after}"));
            let bench = meta.bench.build().unwrap();
            let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
            let alive = run.run_until_jobs(kill_after).unwrap();
            if alive {
                std::mem::forget(run);
            } else {
                drop(run);
            }

            let recovered_meta = read_meta(&dir).unwrap();
            assert_eq!(
                recovered_meta.sampler.as_deref(),
                Some("tpe"),
                "sampler kind must survive the meta roundtrip"
            );
            let bench2 = recovered_meta.bench.build().unwrap();
            let resumed = DurableRun::resume(&dir, &recovered_meta, &bench2, o).unwrap();
            let result = resumed.run_to_completion().unwrap();
            assert_results_identical(&reference, &result);

            // Telemetry byte-identity, not just result equality: the
            // recovered run regenerated the exact events the crash lost.
            let tele = |d: &Path| -> Vec<_> {
                read_wal(&d.join(WAL_FILE))
                    .unwrap()
                    .telemetry()
                    .copied()
                    .collect()
            };
            assert_eq!(tele(&ref_dir), tele(&dir));
        }
        std::fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn recovery_tolerates_torn_wal_tail() {
    let root = tmpdir("torn");
    let o = opts(25);
    let meta = chaos_meta("torn", 7);
    let reference = uninterrupted_result(&meta, &root.join("ref"), o);

    let dir = root.join("torn");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(60).unwrap();
    std::mem::forget(run);

    // Simulate a crash mid-append: a partial final line on top of whatever
    // the kill already left.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    f.write_all(b"{\"seq\":999999,\"t\":3.2,\"ev\":\"job_en")
        .unwrap();
    drop(f);

    let resumed = DurableRun::resume(&dir, &meta, &bench, o).unwrap();
    let result = resumed.run_to_completion().unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn double_crash_during_recovery_still_recovers() {
    let root = tmpdir("double");
    let o = opts(20);
    let meta = chaos_meta("double", 13);
    let reference = uninterrupted_result(&meta, &root.join("ref"), o);

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(50).unwrap();
    std::mem::forget(run);

    // First recovery crashes again almost immediately.
    let mut resumed = DurableRun::resume(&dir, &meta, &bench, o).unwrap();
    resumed
        .run_until_jobs(resumed.jobs_completed() + 5)
        .unwrap();
    std::mem::forget(resumed);

    // Second recovery runs to the end.
    let resumed = DurableRun::resume(&dir, &meta, &bench, o).unwrap();
    let result = resumed.run_to_completion().unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

/// Scheduler-level WAL replay (the executor's recovery path): restore a
/// scheduler from an earlier state, replay the WAL suffix into it, and its
/// next decisions must match a scheduler that never stopped.
#[test]
fn wal_suffix_replay_reconstructs_scheduler_decisions() {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let mut live = StoredScheduler::Asha(Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0)));
    let mut rng = StdRng::seed_from_u64(99);
    let mut pending: VecDeque<asha_core::Job> = VecDeque::new();
    let mut records = Vec::new();
    let mut seq = 0u64;
    let mut snapshot: Option<(SchedulerState, [u64; 4], u64)> = None;

    use asha_core::telemetry::{Event, EventKind};
    use asha_store::WalRecord;
    for step in 0..300 {
        if step == 120 {
            snapshot = Some((live.export_state(), rng.state(), seq));
        }
        if step % 3 == 2 {
            if let Some(job) = pending.pop_front() {
                let loss = (job.trial.0 as f64 * 0.29).cos();
                live.observe(Observation::for_job(&job, loss));
                records.push(WalRecord::telemetry(Event {
                    seq,
                    time: step as f64,
                    kind: EventKind::JobEnd {
                        trial: job.trial.0,
                        rung: job.rung,
                        resource: job.resource,
                        loss,
                    },
                }));
                seq += 1;
            }
        }
        let d = live.suggest(&mut rng);
        records.push(WalRecord::telemetry(Event {
            seq,
            time: step as f64,
            kind: EventKind::of_decision(&d),
        }));
        seq += 1;
        if let Decision::Run(job) = d {
            pending.push_back(job);
        }
    }

    let (state, rng_words, skip) = snapshot.expect("snapshot point reached");
    let mut restored = StoredScheduler::from_state(space, state);
    let mut replay_rng = StdRng::from_state(rng_words);
    let replayed = replay_scheduler(&mut restored, &mut replay_rng, &records, skip).unwrap();
    assert!(replayed > 0, "suffix must contain events to replay");

    // Both schedulers (and RNGs) must now agree on the future.
    let words = rng.state();
    let mut rng_a = StdRng::from_state(words);
    let mut rng_b = StdRng::from_state(words);
    let mut pending_b = pending.clone();
    for step in 0..80 {
        if step % 3 == 2 {
            if let (Some(ja), Some(jb)) = (pending.pop_front(), pending_b.pop_front()) {
                assert_eq!(ja, jb);
                let loss = (ja.trial.0 as f64 * 0.29).cos();
                live.observe(Observation::for_job(&ja, loss));
                restored.observe(Observation::for_job(&jb, loss));
            }
        }
        let da = live.suggest(&mut rng_a);
        let db = restored.suggest(&mut rng_b);
        assert_eq!(da, db, "post-replay decisions diverged at step {step}");
        if let Decision::Run(job) = da {
            pending.push_back(job.clone());
            pending_b.push_back(job);
        }
    }
}

#[test]
fn replay_detects_log_state_mismatch() {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let mut scheduler =
        StoredScheduler::Asha(Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0)));
    let mut rng = StdRng::seed_from_u64(5);
    let d = scheduler.suggest(&mut rng);
    let trial = match &d {
        Decision::Run(job) => job.trial.0,
        other => panic!("fresh ASHA must issue work, got {other:?}"),
    };

    // A log claiming a different trial was grown must be rejected.
    use asha_core::telemetry::{Event, EventKind};
    use asha_store::WalRecord;
    let bogus = vec![WalRecord::telemetry(Event {
        seq: 0,
        time: 0.0,
        kind: EventKind::GrowBottom {
            trial: trial + 1000,
            bracket: 0,
            resource: 1.0,
        },
    })];
    let mut fresh = StoredScheduler::Asha(Asha::new(space, AshaConfig::new(1.0, 27.0, 3.0)));
    let mut rng2 = StdRng::seed_from_u64(5);
    let err = replay_scheduler(&mut fresh, &mut rng2, &bogus, 0).unwrap_err();
    assert!(err.to_string().contains("mismatch"), "got: {err}");
}

#[test]
fn supervisor_runs_concurrent_experiments_with_independent_pause() {
    let root = tmpdir("supervisor");
    let o = opts(40);
    let meta_a = chaos_meta("exp-a", 1);
    let meta_b = chaos_meta("exp-b", 2);
    let ref_a = uninterrupted_result(&meta_a, &root.join("ref-a"), o);
    let ref_b = uninterrupted_result(&meta_b, &root.join("ref-b"), o);

    let sup_root = root.join("sup");
    let mut sup = ExperimentSupervisor::open(&sup_root).unwrap();
    sup.create(&meta_a, o).unwrap();
    sup.create(&meta_b, o).unwrap();
    assert_eq!(sup.status("exp-a"), Some(ExperimentStatus::Created));

    sup.start("exp-a", o).unwrap();
    sup.start("exp-b", o).unwrap();
    assert_eq!(sup.active(), vec!["exp-a".to_owned(), "exp-b".to_owned()]);

    // Pause A; B keeps running to completion regardless.
    sup.pause("exp-a").unwrap();
    assert_eq!(sup.status("exp-a"), Some(ExperimentStatus::Paused));
    let result_b = sup.join("exp-b").unwrap().expect("B ran to completion");
    assert_results_identical(&ref_b, &result_b);
    assert_eq!(sup.status("exp-b"), Some(ExperimentStatus::Finished));

    // Resume A in place and let it finish: the pause must not change its
    // trajectory.
    sup.resume("exp-a").unwrap();
    let result_a = sup.join("exp-a").unwrap().expect("A ran to completion");
    assert_results_identical(&ref_a, &result_a);
    assert_eq!(sup.status("exp-a"), Some(ExperimentStatus::Finished));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn supervisor_abort_leaves_resumable_store_and_manifest_survives_reopen() {
    let root = tmpdir("abort");
    let o = opts(25);
    let meta = chaos_meta("exp", 3);
    let reference = uninterrupted_result(&meta, &root.join("ref"), o);

    let sup_root = root.join("sup");
    {
        let mut sup = ExperimentSupervisor::open(&sup_root).unwrap();
        sup.create(&meta, o).unwrap();
        sup.start("exp", o).unwrap();
        sup.abort("exp").unwrap();
        assert_eq!(sup.status("exp"), Some(ExperimentStatus::Aborted));
    }

    // A new supervisor (fresh process, conceptually) sees the manifest and
    // can restart the aborted experiment; the result is unchanged.
    let mut sup = ExperimentSupervisor::open(&sup_root).unwrap();
    assert_eq!(sup.status("exp"), Some(ExperimentStatus::Aborted));
    sup.start("exp", o).unwrap();
    let result = sup.join("exp").unwrap().expect("ran to completion");
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn wal_of_recovered_run_equals_uninterrupted_telemetry() {
    for (tag, o) in [("bin", opts(20)), ("v1", v1_opts(20))] {
        wal_of_recovered_run_equals(tag, o);
    }
}

fn wal_of_recovered_run_equals(tag: &str, o: RunOptions) {
    let root = tmpdir(&format!("wal-eq-{tag}"));
    let meta = chaos_meta("wal", 21);
    let ref_dir = root.join("ref");
    uninterrupted_result(&meta, &ref_dir, o);

    let dir = root.join("crashed");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(45).unwrap();
    std::mem::forget(run);
    DurableRun::resume(&dir, &meta, &bench, o)
        .unwrap()
        .run_to_completion()
        .unwrap();

    // The telemetry stream (store markers aside) must be identical — the
    // recovered run regenerated exactly the events the crash destroyed.
    let tele = |d: &Path| -> Vec<_> {
        read_wal(&d.join(WAL_FILE))
            .unwrap()
            .telemetry()
            .copied()
            .collect()
    };
    assert_eq!(tele(&ref_dir), tele(&dir));
    std::fs::remove_dir_all(&root).ok();
}

//! Mixed-format recovery: the codec redesign's compatibility guarantees.
//!
//! A store written in one dialect must open, resume, and stay recoverable
//! under the other — `jsonl-v1` WALs appended in place while new
//! checkpoints land as `binary-v2`, binary delta chains patched on top of
//! a v1 full snapshot, and the committed pre-redesign fixture opening
//! unchanged. Alongside the integration tests, property tests pin the
//! binary codec's record roundtrip and the delta diff/patch algebra, and
//! byte-surgery tests distinguish a torn tail (truncate and continue)
//! from mid-file corruption (hard error).

use std::path::{Path, PathBuf};

use asha_core::telemetry::{DropCause, Event, EventKind, IdleKind};
use asha_core::{Asha, AshaConfig};
use asha_metrics::JsonValue;
use asha_sim::{SimConfig, SimResult};
use asha_store::binary::json_eq;
use asha_store::delta::{apply, diff, is_unchanged};
use asha_store::{
    delta_file_name, read_meta, read_wal, BenchSpec, DecodeStep, Durability, DurableRun, EncodeBuf,
    ExperimentMeta, RunOptions, SchedulerState, SnapMarker, Snapshot, StoreEvent, StoreFormat,
    WalRecord, WAL_FILE,
};
use asha_surrogate::BenchmarkModel;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asha-store-mixed-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small chaos experiment (stragglers + drops) over a real surrogate —
/// the same shape the crash-recovery suite uses.
fn chaos_meta(name: &str, seed: u64) -> ExperimentMeta {
    let spec = BenchSpec {
        preset: "svm_vehicle".to_owned(),
        seed: 11,
    };
    let bench = spec.build().unwrap();
    let space = bench.space().clone();
    let asha = Asha::new(space.clone(), AshaConfig::new(1.0, 27.0, 3.0));
    ExperimentMeta {
        name: name.to_owned(),
        space,
        initial: SchedulerState::Asha(asha.export_state()),
        sampler: None,
        seed,
        sim: SimConfig::new(6, 50.0)
            .with_stragglers(0.4)
            .with_drops(0.02),
        bench: spec,
    }
}

fn bin_opts(snapshot_jobs: usize) -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(16),
        snapshot_jobs,
        ..RunOptions::default()
    }
}

/// The exact on-disk behavior of pre-codec-redesign stores: `jsonl-v1`
/// everywhere, no delta chains.
fn v1_opts(snapshot_jobs: usize) -> RunOptions {
    RunOptions {
        sync: Durability::EveryN(16),
        snapshot_jobs,
        format: StoreFormat::JsonlV1,
        delta_chain: 0,
    }
}

fn assert_results_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.jobs_completed, b.jobs_completed);
    assert_eq!(a.distinct_trials, b.distinct_trials);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.scheduler_finished, b.scheduler_finished);
    assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    assert_eq!(a.trace, b.trace, "completion traces must match");
    match (&a.best_config, &b.best_config) {
        (Some((ca, la, ra)), Some((cb, lb, rb))) => {
            assert_eq!(ca, cb);
            assert_eq!(la.to_bits(), lb.to_bits());
            assert_eq!(ra.to_bits(), rb.to_bits());
        }
        (None, None) => {}
        other => panic!("incumbent mismatch: {other:?}"),
    }
}

fn uninterrupted(meta: &ExperimentMeta, dir: &Path, o: RunOptions) -> SimResult {
    let bench = meta.bench.build().unwrap();
    DurableRun::create(dir, meta, &bench, o)
        .unwrap()
        .run_to_completion()
        .unwrap()
}

/// Every file in `dir` with the given extension.
fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut found: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    found.sort();
    found
}

// ---------------------------------------------------------------------------
// Cross-dialect stores
// ---------------------------------------------------------------------------

/// A pre-redesign (`jsonl-v1`) store killed mid-run and resumed under the
/// binary codec finishes bit-identical — and the directory it leaves
/// behind is genuinely mixed: the WAL keeps its original dialect (appends
/// continue in place), while checkpoints written after the switch are
/// `binary-v2` files.
#[test]
fn v1_store_resumed_under_binary_options_finishes_identical() {
    let root = tmpdir("v1-under-bin");
    let meta = chaos_meta("mixed", 19);
    let reference = uninterrupted(&meta, &root.join("ref"), v1_opts(30));

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, v1_opts(30)).unwrap();
    run.run_until_jobs(45).unwrap();
    std::mem::forget(run);

    let resumed = DurableRun::resume(&dir, &meta, &bench, bin_opts(30)).unwrap();
    let result = resumed.run_to_completion().unwrap();
    assert_results_identical(&reference, &result);

    let contents = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert_eq!(contents.format, StoreFormat::JsonlV1, "WAL dialect sticks");
    assert!(
        !files_with_ext(&dir, "json").is_empty(),
        "the v1 checkpoints written before the switch remain"
    );
    assert!(
        !files_with_ext(&dir, "bin").is_empty(),
        "checkpoints written after the switch must be binary"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Binary deltas chained on top of a `jsonl-v1` full snapshot: resume a
/// v1 store under binary options with a live delta chain, crash again
/// mid-chain, and recovery must patch `.bin` deltas onto the `.json`
/// base — then finish identical to an uninterrupted run.
#[test]
fn binary_delta_chain_atop_v1_full_snapshot_recovers() {
    let root = tmpdir("delta-on-v1");
    let meta = chaos_meta("delta-on-v1", 23);
    let reference = uninterrupted(&meta, &root.join("ref"), v1_opts(25));

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, v1_opts(25)).unwrap();
    run.run_until_jobs(40).unwrap();
    std::mem::forget(run);

    // Resume under a tight binary checkpoint cadence so the reopened chain
    // grows several deltas, then die again mid-chain.
    let tight = RunOptions {
        snapshot_jobs: 10,
        ..bin_opts(10)
    };
    let mut resumed = DurableRun::resume(&dir, &meta, &bench, tight).unwrap();
    resumed.run_until_jobs(80).unwrap();
    std::mem::forget(resumed);

    let marker = read_wal(&dir.join(WAL_FILE))
        .unwrap()
        .last_snapshot_marker()
        .expect("store has checkpoint markers");
    assert!(marker.delta > 0, "the crash must land mid-delta-chain");
    let base = Snapshot::find(&dir, marker.snap).expect("base snapshot exists");
    assert_eq!(
        base.extension().unwrap(),
        "json",
        "the chain's base full snapshot is still the v1 file"
    );
    for k in 1..=marker.delta {
        assert!(
            dir.join(delta_file_name(marker.snap, k, StoreFormat::BinaryV2))
                .exists(),
            "delta {k} of the chain must be a binary file"
        );
    }

    let result = DurableRun::resume(&dir, &meta, &bench, tight)
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

/// The committed pre-redesign fixture — a `jsonl-v1` store generated
/// before the codec API existed and killed at 100 jobs — must open under
/// today's defaults and resume to the same result as a fresh run of its
/// own metadata. This is the backward-compatibility contract in file form:
/// if this test fails, an on-disk format change broke real stores.
#[test]
fn pre_redesign_fixture_opens_and_resumes() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("v1-demo-store");
    let root = tmpdir("fixture");
    let dir = root.join("exp");
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(&fixture).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }

    let meta = read_meta(&dir).expect("fixture metadata parses");
    let reference = uninterrupted(&meta, &root.join("ref"), RunOptions::default());

    let bench = meta.bench.build().unwrap();
    let resumed = DurableRun::resume(&dir, &meta, &bench, RunOptions::default()).unwrap();
    assert!(
        resumed.jobs_completed() > 0,
        "fixture must restore mid-run state, not restart from scratch"
    );
    let result = resumed.run_to_completion().unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Byte surgery on binary WALs
// ---------------------------------------------------------------------------

/// A partial binary frame at the tail (the bytes a crash left mid-append)
/// is discarded as torn, and the resumed run still finishes identical.
#[test]
fn torn_binary_tail_is_discarded_on_resume() {
    let root = tmpdir("torn-bin");
    let meta = chaos_meta("torn-bin", 7);
    let o = bin_opts(25);
    let reference = uninterrupted(&meta, &root.join("ref"), o);

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(60).unwrap();
    std::mem::forget(run);

    // A frame promising 64 payload bytes but delivering only a few: exactly
    // what a power cut mid-`write` leaves behind.
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    f.write_all(&[0x40, 0x05, 0x17, 0x2a]).unwrap();
    drop(f);

    let contents = read_wal(&dir.join(WAL_FILE)).unwrap();
    assert!(contents.torn_tail, "the partial frame reads as torn");

    let result = DurableRun::resume(&dir, &meta, &bench, o)
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

/// A CRC failure on the *final* frame is indistinguishable from a torn
/// append (the crash may have written only part of the record's bytes), so
/// the reader truncates it rather than failing the store.
#[test]
fn tail_crc_flip_truncates_like_a_torn_append() {
    let root = tmpdir("tail-crc");
    let meta = chaos_meta("tail-crc", 31);
    let o = bin_opts(25);
    let reference = uninterrupted(&meta, &root.join("ref"), o);

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(50).unwrap();
    drop(run); // clean flush: the file ends exactly at a frame boundary

    let wal_path = dir.join(WAL_FILE);
    let intact = read_wal(&wal_path).unwrap();
    assert!(!intact.torn_tail);

    let mut bytes = std::fs::read(&wal_path).unwrap();
    *bytes.last_mut().unwrap() ^= 0xff; // the last CRC byte of the final frame
    std::fs::write(&wal_path, &bytes).unwrap();

    let damaged = read_wal(&wal_path).unwrap();
    assert!(damaged.torn_tail, "tail CRC mismatch reads as torn");
    assert_eq!(damaged.records.len(), intact.records.len() - 1);

    let result = DurableRun::resume(&dir, &meta, &bench, o)
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_results_identical(&reference, &result);
    std::fs::remove_dir_all(&root).ok();
}

/// A CRC failure *before* well-formed records is not a torn append — it is
/// data damage, and pretending otherwise would silently drop acknowledged
/// history. The reader must refuse the file.
#[test]
fn mid_file_crc_flip_is_reported_as_corruption() {
    let root = tmpdir("mid-crc");
    let meta = chaos_meta("mid-crc", 37);
    let o = bin_opts(25);

    let dir = root.join("exp");
    let bench = meta.bench.build().unwrap();
    let mut run = DurableRun::create(&dir, &meta, &bench, o).unwrap();
    run.run_until_jobs(40).unwrap();
    drop(run);

    // Locate the first frame after the magic and flip its final CRC byte.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let codec = StoreFormat::BinaryV2.wal_codec();
    let magic = codec.magic().len();
    let DecodeStep::Record { consumed, .. } = codec.decode_step(&bytes[magic..]) else {
        panic!("WAL must start with a well-formed record");
    };
    bytes[magic + consumed - 1] ^= 0xff;
    std::fs::write(&wal_path, &bytes).unwrap();

    let err = read_wal(&wal_path).unwrap_err();
    assert!(
        err.to_string().contains("CRC mismatch"),
        "corruption must name the failed check, got: {err}"
    );
    let err = match DurableRun::resume(&dir, &meta, &bench, o) {
        Err(e) => e,
        Ok(_) => panic!("resume must refuse a corrupted WAL"),
    };
    assert!(err.to_string().contains("CRC mismatch"), "got: {err}");
    std::fs::remove_dir_all(&root).ok();
}

// ---------------------------------------------------------------------------
// Property tests: the binary record codec and the delta algebra
// ---------------------------------------------------------------------------

/// An `f64` that is never NaN (so derived `PartialEq` on records is exact)
/// but otherwise covers the full bit range, infinities and subnormals
/// included — much wilder than the finite-only `any::<f64>()`.
fn wild_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let f = f64::from_bits(bits);
        if f.is_nan() {
            f64::INFINITY
        } else {
            f
        }
    })
}

/// A short printable name.
fn name() -> impl Strategy<Value = String> {
    any::<u64>().prop_map(|n| format!("exp-{}", n % 10_000))
}

fn event_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        prop_oneof![Just(IdleKind::Wait), Just(IdleKind::Finished)]
            .prop_map(|decision| EventKind::Suggest { decision }),
        (any::<u64>(), 0usize..64, 0usize..32, 0usize..32, wild_f64()).prop_map(
            |(trial, bracket, from, to, resource)| EventKind::Promote {
                trial,
                bracket,
                from,
                to,
                resource,
            }
        ),
        (any::<u64>(), 0usize..64, wild_f64()).prop_map(|(trial, bracket, resource)| {
            EventKind::GrowBottom {
                trial,
                bracket,
                resource,
            }
        }),
        (any::<u64>(), 0usize..64, 0usize..32, wild_f64()).prop_map(
            |(trial, bracket, rung, resource)| EventKind::JobStart {
                trial,
                bracket,
                rung,
                resource,
            }
        ),
        (any::<u64>(), 0usize..32, wild_f64(), wild_f64()).prop_map(
            |(trial, rung, resource, loss)| EventKind::JobEnd {
                trial,
                rung,
                resource,
                loss,
            }
        ),
        (
            any::<u64>(),
            0usize..32,
            prop_oneof![Just(DropCause::Dropped), Just(DropCause::Timeout)]
        )
            .prop_map(|(trial, rung, cause)| EventKind::Drop { trial, rung, cause }),
        (any::<u64>(), 0usize..32).prop_map(|(trial, rung)| EventKind::Retry { trial, rung }),
        (0usize..4096).prop_map(|idle| EventKind::WorkerIdle { idle }),
    ]
}

fn wal_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), wild_f64(), event_kind())
            .prop_map(|(seq, time, kind)| WalRecord::telemetry(Event { seq, time, kind })),
        (wild_f64(), any::<u64>(), any::<u64>()).prop_map(|(time, snap, events)| {
            WalRecord::SnapshotMarker {
                time,
                marker: SnapMarker::Full { snap, events },
            }
        }),
        (wild_f64(), any::<u64>(), 1u64..64, any::<u64>()).prop_map(
            |(time, snap, delta, events)| WalRecord::SnapshotMarker {
                time,
                marker: SnapMarker::Delta {
                    snap,
                    delta,
                    events
                },
            }
        ),
        (wild_f64(), name()).prop_map(|(time, name)| WalRecord::Meta {
            time,
            event: StoreEvent::ExperimentCreated { name },
        }),
        wild_f64().prop_map(|time| WalRecord::Meta {
            time,
            event: StoreEvent::Paused,
        }),
        wild_f64().prop_map(|time| WalRecord::Meta {
            time,
            event: StoreEvent::Resumed,
        }),
        wild_f64().prop_map(|time| WalRecord::Meta {
            time,
            event: StoreEvent::ExperimentFinished,
        }),
    ]
}

/// A JSON value nested up to `depth` levels, with unique object keys and
/// the full numeric range in the leaves — the shape snapshots use.
fn json_value(depth: u32) -> BoxedStrategy<JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<u64>().prop_map(JsonValue::Int),
        wild_f64().prop_map(JsonValue::Num),
        name().prop_map(JsonValue::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = json_value(depth - 1);
    prop_oneof![
        leaf,
        prop::collection::vec(json_value(depth - 1), 0..5).prop_map(JsonValue::Arr),
        prop::collection::vec(inner, 0..5).prop_map(|vals| {
            JsonValue::Obj(
                vals.into_iter()
                    .enumerate()
                    .map(|(i, v)| (format!("k{i}"), v))
                    .collect(),
            )
        }),
    ]
    .boxed()
}

fn json_doc() -> impl Strategy<Value = JsonValue> {
    json_value(3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record the binary codec can write, it reads back exactly —
    /// one frame, fully consumed, structurally equal.
    #[test]
    fn binary_wal_records_roundtrip(record in wal_record()) {
        let codec = StoreFormat::BinaryV2.wal_codec();
        let mut buf = EncodeBuf::default();
        codec.encode_record(&record, &mut buf);
        match codec.decode_step(&buf.bytes) {
            DecodeStep::Record { consumed, record: decoded } => {
                prop_assert_eq!(consumed, buf.bytes.len(), "one frame, no slack");
                prop_assert_eq!(decoded, record);
            }
            other => prop_assert!(false, "expected a record, got {:?}", other),
        }
    }

    /// Truncating a binary frame at any interior point reads as Incomplete
    /// (a torn append), never as a bogus record or a hard error.
    #[test]
    fn truncated_binary_frames_read_as_incomplete(record in wal_record(), cut in any::<usize>()) {
        let codec = StoreFormat::BinaryV2.wal_codec();
        let mut buf = EncodeBuf::default();
        codec.encode_record(&record, &mut buf);
        let cut = cut % buf.bytes.len(); // 0..len, always a strict prefix
        prop_assert!(matches!(
            codec.decode_step(&buf.bytes[..cut]),
            DecodeStep::Incomplete
        ));
    }

    /// The delta algebra: `apply(base, diff(base, new))` reconstructs `new`
    /// bit-for-bit, and diffing a document against itself is a no-op patch.
    #[test]
    fn delta_diff_apply_roundtrips(base in json_doc(), new in json_doc()) {
        let patch = diff(&base, &new);
        let rebuilt = apply(&base, &patch)?;
        prop_assert!(json_eq(&rebuilt, &new), "patched document must equal the target");

        let noop = diff(&base, &base);
        prop_assert!(is_unchanged(&noop), "self-diff must be the no-op patch");
        let same = apply(&base, &noop)?;
        prop_assert!(json_eq(&same, &base));
    }
}

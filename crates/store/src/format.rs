//! The versioned storage codec API: [`StoreFormat`] and the
//! [`WalCodec`] / [`SnapshotCodec`] trait pair behind it.
//!
//! The store speaks two on-disk dialects:
//!
//! * **`jsonl-v1`** — the original human-greppable format: one JSON object
//!   per WAL line (exact `asha-obs` schema for telemetry), snapshots as a
//!   single compact-rendered JSON document. Kept fully writable so
//!   pre-redesign stores keep working and debugging stays cheap.
//! * **`binary-v2`** — compact length-prefixed records with a per-record
//!   CRC32 and varint-packed fields; snapshot documents as CRC-guarded
//!   binvalue trees (see [`crate::binary`]).
//!
//! Readers never need to be told which dialect a file is in:
//! [`StoreFormat::detect_wal`] / [`StoreFormat::detect_document`] sniff the
//! 8-byte magic (`binary-v2` files start with one; JSON text cannot).
//!
//! ## `binary-v2` WAL layout
//!
//! ```text
//! file   := magic record*            magic  = "ASHAWAL2" (8 bytes)
//! record := len payload crc          len    = LEB128 varint of payload size
//!                                    crc    = CRC32(payload), u32 LE
//! payload:= tag fields               tag    = 1 byte (record kind)
//! ```
//!
//! Torn tails stay recognizable: a crash mid-append leaves a record whose
//! `len`/payload/`crc` is merely *short* ([`DecodeStep::Incomplete`]),
//! while flipped bits inside an intact frame fail the CRC
//! ([`DecodeStep::Invalid`]). The reader applies the same policy as v1:
//! damage at the very end of the file is a discarded torn tail, damage
//! followed by more valid records is corruption.

use asha_core::telemetry::{DropCause, EventKind, IdleKind};
use asha_metrics::JsonValue;
use asha_obs::Event;

use crate::binary::{
    self, crc32, get_varint, put_f64, put_str, put_varint, read_f64, read_str, read_u8,
    read_varint, VarintRead,
};
use crate::wal::{SnapMarker, StoreEvent, WalRecord};

/// Magic prefix of a `binary-v2` WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"ASHAWAL2";
/// Magic prefix of a `binary-v2` snapshot / delta document.
pub const DOC_MAGIC: &[u8; 8] = b"ASHADOC2";

/// Upper bound on a single binary record's payload (sanity check: a length
/// beyond this means framing was destroyed, not that a huge record exists).
const MAX_RECORD_LEN: u64 = 64 << 20;

/// On-disk dialect of a store (WAL + snapshot + delta files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// One JSON object per WAL line; snapshots as JSON text.
    JsonlV1,
    /// Length-prefixed CRC-guarded binary records; binvalue snapshots.
    #[default]
    BinaryV2,
}

impl StoreFormat {
    /// Stable codec name (`"jsonl-v1"` / `"binary-v2"`).
    pub fn name(&self) -> &'static str {
        match self {
            StoreFormat::JsonlV1 => "jsonl-v1",
            StoreFormat::BinaryV2 => "binary-v2",
        }
    }

    /// Parse a codec name; accepts the full name and common short forms
    /// (`jsonl`, `v1`, `binary`, `v2`).
    pub fn from_name(name: &str) -> Option<StoreFormat> {
        match name {
            "jsonl-v1" | "jsonl" | "v1" | "json" => Some(StoreFormat::JsonlV1),
            "binary-v2" | "binary" | "v2" | "bin" => Some(StoreFormat::BinaryV2),
            _ => None,
        }
    }

    /// The WAL codec for this format.
    pub fn wal_codec(&self) -> &'static dyn WalCodec {
        match self {
            StoreFormat::JsonlV1 => &JsonlV1Wal,
            StoreFormat::BinaryV2 => &BinaryV2Wal,
        }
    }

    /// The snapshot-document codec for this format.
    pub fn snapshot_codec(&self) -> &'static dyn SnapshotCodec {
        match self {
            StoreFormat::JsonlV1 => &JsonlV1Snapshot,
            StoreFormat::BinaryV2 => &BinaryV2Snapshot,
        }
    }

    /// Sniff a WAL file's dialect from its first bytes. JSON text can
    /// never start with the binary magic, so this is unambiguous; an empty
    /// file reads as (an empty) `jsonl-v1` WAL.
    pub fn detect_wal(bytes: &[u8]) -> StoreFormat {
        if bytes.starts_with(WAL_MAGIC) {
            StoreFormat::BinaryV2
        } else {
            StoreFormat::JsonlV1
        }
    }

    /// Sniff a snapshot / delta document's dialect from its first bytes.
    pub fn detect_document(bytes: &[u8]) -> StoreFormat {
        if bytes.starts_with(DOC_MAGIC) {
            StoreFormat::BinaryV2
        } else {
            StoreFormat::JsonlV1
        }
    }
}

/// Reusable encode scratch shared by a writer and its codec, so steady-state
/// appends allocate nothing. `bytes` receives the finished on-disk frame.
#[derive(Debug, Default)]
pub struct EncodeBuf {
    /// The encoded frame, exactly as written to disk.
    pub bytes: Vec<u8>,
    /// Text scratch used by the JSONL codec.
    pub text: String,
    /// Payload scratch used by the binary codec (the frame prefixes the
    /// payload with its length, so it is built separately first).
    payload: Vec<u8>,
}

/// One step of incremental WAL decoding: what the front of `buf` holds.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeStep {
    /// The buffer ends before a complete record: a torn tail if at EOF,
    /// otherwise feed more bytes.
    Incomplete,
    /// A complete, valid record.
    Record {
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
        /// The decoded record.
        record: WalRecord,
    },
    /// A skippable non-record (a blank JSONL line).
    Blank {
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
    },
    /// A complete frame whose content is damaged (CRC mismatch, unparseable
    /// JSON). Framing survives: decoding can continue past it, which is how
    /// the reader distinguishes a torn tail from mid-file corruption.
    Invalid {
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
        /// What was wrong.
        why: String,
    },
    /// Framing itself is destroyed (impossible length prefix); nothing
    /// after this point can be decoded.
    Lost(String),
}

/// A versioned WAL record codec.
pub trait WalCodec: Send + Sync {
    /// Stable codec name (matches [`StoreFormat::name`]).
    fn name(&self) -> &'static str;

    /// File magic written at creation; empty for magic-less formats.
    fn magic(&self) -> &'static [u8];

    /// Encode one record into `buf.bytes` (cleared first): the exact bytes
    /// appended to the file.
    fn encode_record(&self, record: &WalRecord, buf: &mut EncodeBuf);

    /// Decode one record from the front of `buf` (the magic already
    /// stripped).
    fn decode_step(&self, buf: &[u8]) -> DecodeStep;
}

/// A versioned snapshot-document codec. Both dialects carry the same
/// [`JsonValue`] document tree; only the bytes differ.
pub trait SnapshotCodec: Send + Sync {
    /// Stable codec name (matches [`StoreFormat::name`]).
    fn name(&self) -> &'static str;

    /// File extension for documents in this dialect (`"json"` / `"bin"`).
    fn extension(&self) -> &'static str;

    /// Encode a document into `out` (cleared first).
    fn encode_document(&self, doc: &JsonValue, out: &mut Vec<u8>);

    /// Decode a document previously written by `encode_document`.
    fn decode_document(&self, bytes: &[u8]) -> Result<JsonValue, String>;
}

/// Decode a snapshot / delta document of either dialect (sniffed by magic).
pub fn decode_any_document(bytes: &[u8]) -> Result<JsonValue, String> {
    StoreFormat::detect_document(bytes)
        .snapshot_codec()
        .decode_document(bytes)
}

// ---------------------------------------------------------------------------
// jsonl-v1
// ---------------------------------------------------------------------------

struct JsonlV1Wal;

impl WalCodec for JsonlV1Wal {
    fn name(&self) -> &'static str {
        "jsonl-v1"
    }

    fn magic(&self) -> &'static [u8] {
        b""
    }

    fn encode_record(&self, record: &WalRecord, buf: &mut EncodeBuf) {
        buf.bytes.clear();
        buf.text.clear();
        crate::wal::render_record_jsonl(record, &mut buf.text);
        buf.bytes.extend_from_slice(buf.text.as_bytes());
        buf.bytes.push(b'\n');
    }

    fn decode_step(&self, buf: &[u8]) -> DecodeStep {
        if buf.is_empty() {
            return DecodeStep::Incomplete;
        }
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            // A final line without its newline is by definition torn: the
            // writer terminates every record before flushing.
            return DecodeStep::Incomplete;
        };
        let consumed = nl + 1;
        let line = match std::str::from_utf8(&buf[..nl]) {
            Ok(line) => line.trim_end_matches('\r'),
            Err(_) => {
                return DecodeStep::Invalid {
                    consumed,
                    why: "invalid UTF-8".to_owned(),
                }
            }
        };
        if line.trim().is_empty() {
            return DecodeStep::Blank { consumed };
        }
        match crate::wal::parse_record_jsonl(line) {
            Ok(record) => DecodeStep::Record { consumed, record },
            Err(why) => DecodeStep::Invalid { consumed, why },
        }
    }
}

struct JsonlV1Snapshot;

impl SnapshotCodec for JsonlV1Snapshot {
    fn name(&self) -> &'static str {
        "jsonl-v1"
    }

    fn extension(&self) -> &'static str {
        "json"
    }

    fn encode_document(&self, doc: &JsonValue, out: &mut Vec<u8>) {
        out.clear();
        // Compact rendering: snapshots are machine-read only and can reach
        // megabytes mid-run, so pretty indentation would roughly double
        // both the bytes fsynced and the render time for nothing.
        let mut text = String::new();
        doc.render_compact_into(&mut text);
        text.push('\n');
        out.extend_from_slice(text.as_bytes());
    }

    fn decode_document(&self, bytes: &[u8]) -> Result<JsonValue, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8".to_owned())?;
        JsonValue::parse(text).map_err(|e| e.to_string())
    }
}

// ---------------------------------------------------------------------------
// binary-v2 record tags
// ---------------------------------------------------------------------------

// Telemetry payloads: tag, varint seq, f64 time, kind fields.
const TAG_SUGGEST: u8 = 0x01;
const TAG_PROMOTE: u8 = 0x02;
const TAG_GROW_BOTTOM: u8 = 0x03;
const TAG_JOB_START: u8 = 0x04;
const TAG_JOB_END: u8 = 0x05;
const TAG_DROP: u8 = 0x06;
const TAG_RETRY: u8 = 0x07;
const TAG_WORKER_IDLE: u8 = 0x08;

// Store payloads: tag, f64 time, fields.
const TAG_EXPERIMENT_CREATED: u8 = 0x10;
const TAG_SNAPSHOT_FULL: u8 = 0x11;
const TAG_PAUSED: u8 = 0x12;
const TAG_RESUMED: u8 = 0x13;
const TAG_EXPERIMENT_FINISHED: u8 = 0x14;
const TAG_SNAPSHOT_DELTA: u8 = 0x15;

struct BinaryV2Wal;

fn put_event(out: &mut Vec<u8>, event: &Event) {
    let (tag, push_fields): (u8, fn(&mut Vec<u8>, &EventKind)) = match event.kind {
        EventKind::Suggest { .. } => (TAG_SUGGEST, |out, kind| {
            if let EventKind::Suggest { decision } = kind {
                out.push(match decision {
                    IdleKind::Wait => 0,
                    IdleKind::Finished => 1,
                });
            }
        }),
        EventKind::Promote { .. } => (TAG_PROMOTE, |out, kind| {
            if let EventKind::Promote {
                trial,
                bracket,
                from,
                to,
                resource,
            } = kind
            {
                put_varint(out, *trial);
                put_varint(out, *bracket as u64);
                put_varint(out, *from as u64);
                put_varint(out, *to as u64);
                put_f64(out, *resource);
            }
        }),
        EventKind::GrowBottom { .. } => (TAG_GROW_BOTTOM, |out, kind| {
            if let EventKind::GrowBottom {
                trial,
                bracket,
                resource,
            } = kind
            {
                put_varint(out, *trial);
                put_varint(out, *bracket as u64);
                put_f64(out, *resource);
            }
        }),
        EventKind::JobStart { .. } => (TAG_JOB_START, |out, kind| {
            if let EventKind::JobStart {
                trial,
                bracket,
                rung,
                resource,
            } = kind
            {
                put_varint(out, *trial);
                put_varint(out, *bracket as u64);
                put_varint(out, *rung as u64);
                put_f64(out, *resource);
            }
        }),
        EventKind::JobEnd { .. } => (TAG_JOB_END, |out, kind| {
            if let EventKind::JobEnd {
                trial,
                rung,
                resource,
                loss,
            } = kind
            {
                put_varint(out, *trial);
                put_varint(out, *rung as u64);
                put_f64(out, *resource);
                put_f64(out, *loss);
            }
        }),
        EventKind::Drop { .. } => (TAG_DROP, |out, kind| {
            if let EventKind::Drop { trial, rung, cause } = kind {
                put_varint(out, *trial);
                put_varint(out, *rung as u64);
                out.push(match cause {
                    DropCause::Dropped => 0,
                    DropCause::Timeout => 1,
                });
            }
        }),
        EventKind::Retry { .. } => (TAG_RETRY, |out, kind| {
            if let EventKind::Retry { trial, rung } = kind {
                put_varint(out, *trial);
                put_varint(out, *rung as u64);
            }
        }),
        EventKind::WorkerIdle { .. } => (TAG_WORKER_IDLE, |out, kind| {
            if let EventKind::WorkerIdle { idle } = kind {
                put_varint(out, *idle as u64);
            }
        }),
    };
    out.push(tag);
    put_varint(out, event.seq);
    put_f64(out, event.time);
    push_fields(out, &event.kind);
}

fn get_event(tag: u8, payload: &[u8], pos: &mut usize) -> Result<Event, String> {
    let seq = read_varint(payload, pos)?;
    let time = read_f64(payload, pos)?;
    let kind = match tag {
        TAG_SUGGEST => EventKind::Suggest {
            decision: match read_u8(payload, pos)? {
                0 => IdleKind::Wait,
                1 => IdleKind::Finished,
                other => return Err(format!("unknown idle kind {other}")),
            },
        },
        TAG_PROMOTE => EventKind::Promote {
            trial: read_varint(payload, pos)?,
            bracket: read_varint(payload, pos)? as usize,
            from: read_varint(payload, pos)? as usize,
            to: read_varint(payload, pos)? as usize,
            resource: read_f64(payload, pos)?,
        },
        TAG_GROW_BOTTOM => EventKind::GrowBottom {
            trial: read_varint(payload, pos)?,
            bracket: read_varint(payload, pos)? as usize,
            resource: read_f64(payload, pos)?,
        },
        TAG_JOB_START => EventKind::JobStart {
            trial: read_varint(payload, pos)?,
            bracket: read_varint(payload, pos)? as usize,
            rung: read_varint(payload, pos)? as usize,
            resource: read_f64(payload, pos)?,
        },
        TAG_JOB_END => EventKind::JobEnd {
            trial: read_varint(payload, pos)?,
            rung: read_varint(payload, pos)? as usize,
            resource: read_f64(payload, pos)?,
            loss: read_f64(payload, pos)?,
        },
        TAG_DROP => EventKind::Drop {
            trial: read_varint(payload, pos)?,
            rung: read_varint(payload, pos)? as usize,
            cause: match read_u8(payload, pos)? {
                0 => DropCause::Dropped,
                1 => DropCause::Timeout,
                other => return Err(format!("unknown drop cause {other}")),
            },
        },
        TAG_RETRY => EventKind::Retry {
            trial: read_varint(payload, pos)?,
            rung: read_varint(payload, pos)? as usize,
        },
        TAG_WORKER_IDLE => EventKind::WorkerIdle {
            idle: read_varint(payload, pos)? as usize,
        },
        other => return Err(format!("unknown record tag {other:#04x}")),
    };
    Ok(Event { seq, time, kind })
}

fn encode_payload(record: &WalRecord, out: &mut Vec<u8>) {
    match record {
        WalRecord::Decision(event) | WalRecord::Job(event) => put_event(out, event),
        WalRecord::SnapshotMarker { time, marker } => match marker {
            SnapMarker::Full { snap, events } => {
                out.push(TAG_SNAPSHOT_FULL);
                put_f64(out, *time);
                put_varint(out, *snap);
                put_varint(out, *events);
            }
            SnapMarker::Delta {
                snap,
                delta,
                events,
            } => {
                out.push(TAG_SNAPSHOT_DELTA);
                put_f64(out, *time);
                put_varint(out, *snap);
                put_varint(out, *delta);
                put_varint(out, *events);
            }
        },
        WalRecord::Meta { time, event } => match event {
            StoreEvent::ExperimentCreated { name } => {
                out.push(TAG_EXPERIMENT_CREATED);
                put_f64(out, *time);
                put_str(out, name);
            }
            StoreEvent::Paused => {
                out.push(TAG_PAUSED);
                put_f64(out, *time);
            }
            StoreEvent::Resumed => {
                out.push(TAG_RESUMED);
                put_f64(out, *time);
            }
            StoreEvent::ExperimentFinished => {
                out.push(TAG_EXPERIMENT_FINISHED);
                put_f64(out, *time);
            }
        },
    }
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let mut pos = 0;
    let tag = read_u8(payload, &mut pos)?;
    let record = match tag {
        TAG_SUGGEST..=TAG_WORKER_IDLE => {
            let event = get_event(tag, payload, &mut pos)?;
            WalRecord::telemetry(event)
        }
        TAG_EXPERIMENT_CREATED => {
            let time = read_f64(payload, &mut pos)?;
            let name = read_str(payload, &mut pos)?;
            WalRecord::Meta {
                time,
                event: StoreEvent::ExperimentCreated { name },
            }
        }
        TAG_SNAPSHOT_FULL => {
            let time = read_f64(payload, &mut pos)?;
            WalRecord::SnapshotMarker {
                time,
                marker: SnapMarker::Full {
                    snap: read_varint(payload, &mut pos)?,
                    events: read_varint(payload, &mut pos)?,
                },
            }
        }
        TAG_SNAPSHOT_DELTA => {
            let time = read_f64(payload, &mut pos)?;
            WalRecord::SnapshotMarker {
                time,
                marker: SnapMarker::Delta {
                    snap: read_varint(payload, &mut pos)?,
                    delta: read_varint(payload, &mut pos)?,
                    events: read_varint(payload, &mut pos)?,
                },
            }
        }
        TAG_PAUSED => WalRecord::Meta {
            time: read_f64(payload, &mut pos)?,
            event: StoreEvent::Paused,
        },
        TAG_RESUMED => WalRecord::Meta {
            time: read_f64(payload, &mut pos)?,
            event: StoreEvent::Resumed,
        },
        TAG_EXPERIMENT_FINISHED => WalRecord::Meta {
            time: read_f64(payload, &mut pos)?,
            event: StoreEvent::ExperimentFinished,
        },
        other => return Err(format!("unknown record tag {other:#04x}")),
    };
    if pos != payload.len() {
        return Err(format!("record has {} trailing bytes", payload.len() - pos));
    }
    Ok(record)
}

impl WalCodec for BinaryV2Wal {
    fn name(&self) -> &'static str {
        "binary-v2"
    }

    fn magic(&self) -> &'static [u8] {
        WAL_MAGIC
    }

    fn encode_record(&self, record: &WalRecord, buf: &mut EncodeBuf) {
        buf.bytes.clear();
        buf.payload.clear();
        encode_payload(record, &mut buf.payload);
        put_varint(&mut buf.bytes, buf.payload.len() as u64);
        buf.bytes.extend_from_slice(&buf.payload);
        buf.bytes
            .extend_from_slice(&crc32(&buf.payload).to_le_bytes());
    }

    fn decode_step(&self, buf: &[u8]) -> DecodeStep {
        if buf.is_empty() {
            return DecodeStep::Incomplete;
        }
        let (len, len_bytes) = match get_varint(buf) {
            VarintRead::Done(len, n) => (len, n),
            VarintRead::Short => return DecodeStep::Incomplete,
            VarintRead::Malformed => return DecodeStep::Lost("malformed record length".to_owned()),
        };
        if len > MAX_RECORD_LEN {
            return DecodeStep::Lost(format!("implausible record length {len}"));
        }
        let len = len as usize;
        let total = len_bytes + len + 4;
        if buf.len() < total {
            return DecodeStep::Incomplete;
        }
        let payload = &buf[len_bytes..len_bytes + len];
        let mut crc_raw = [0u8; 4];
        crc_raw.copy_from_slice(&buf[len_bytes + len..total]);
        let stored = u32::from_le_bytes(crc_raw);
        let actual = crc32(payload);
        if stored != actual {
            return DecodeStep::Invalid {
                consumed: total,
                why: format!("CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"),
            };
        }
        match decode_payload(payload) {
            Ok(record) => DecodeStep::Record {
                consumed: total,
                record,
            },
            Err(why) => DecodeStep::Invalid {
                consumed: total,
                why,
            },
        }
    }
}

struct BinaryV2Snapshot;

impl SnapshotCodec for BinaryV2Snapshot {
    fn name(&self) -> &'static str {
        "binary-v2"
    }

    fn extension(&self) -> &'static str {
        "bin"
    }

    fn encode_document(&self, doc: &JsonValue, out: &mut Vec<u8>) {
        out.clear();
        let mut payload = Vec::new();
        binary::put_value(&mut payload, doc);
        out.extend_from_slice(DOC_MAGIC);
        put_varint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
    }

    fn decode_document(&self, bytes: &[u8]) -> Result<JsonValue, String> {
        let rest = bytes
            .strip_prefix(DOC_MAGIC.as_slice())
            .ok_or("missing binary document magic")?;
        let (len, len_bytes) = match get_varint(rest) {
            VarintRead::Done(len, n) => (len, n),
            _ => return Err("truncated document length".to_owned()),
        };
        let len = len as usize;
        let total = len_bytes
            .checked_add(len)
            .and_then(|t| t.checked_add(4))
            .ok_or("implausible document length")?;
        if rest.len() < total {
            return Err("truncated document".to_owned());
        }
        if rest.len() > total {
            return Err(format!(
                "document has {} trailing bytes",
                rest.len() - total
            ));
        }
        let payload = &rest[len_bytes..len_bytes + len];
        let mut crc_raw = [0u8; 4];
        crc_raw.copy_from_slice(&rest[len_bytes + len..total]);
        let stored = u32::from_le_bytes(crc_raw);
        let actual = crc32(payload);
        if stored != actual {
            return Err(format!(
                "document CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
            ));
        }
        let mut pos = 0;
        let doc = binary::get_value(payload, &mut pos)?;
        if pos != payload.len() {
            return Err("document payload has trailing bytes".to_owned());
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Meta {
                time: 0.0,
                event: StoreEvent::ExperimentCreated {
                    name: "exp-α".to_owned(),
                },
            },
            WalRecord::telemetry(Event {
                seq: 0,
                time: 0.0,
                kind: EventKind::GrowBottom {
                    trial: 0,
                    bracket: 0,
                    resource: 1.0,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 1,
                time: 0.25,
                kind: EventKind::JobStart {
                    trial: 0,
                    bracket: 0,
                    rung: 0,
                    resource: 1.0,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 2,
                time: 1.5,
                kind: EventKind::JobEnd {
                    trial: 0,
                    rung: 0,
                    resource: 1.0,
                    loss: f64::INFINITY,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 3,
                time: 1.5,
                kind: EventKind::Suggest {
                    decision: IdleKind::Wait,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 4,
                time: 2.0,
                kind: EventKind::Promote {
                    trial: 0,
                    bracket: 0,
                    from: 0,
                    to: 1,
                    resource: 4.0,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 5,
                time: 2.5,
                kind: EventKind::Drop {
                    trial: 9,
                    rung: 1,
                    cause: DropCause::Timeout,
                },
            }),
            WalRecord::telemetry(Event {
                seq: 6,
                time: 2.75,
                kind: EventKind::Retry { trial: 9, rung: 1 },
            }),
            WalRecord::telemetry(Event {
                seq: 7,
                time: 3.0,
                kind: EventKind::WorkerIdle { idle: 3 },
            }),
            WalRecord::SnapshotMarker {
                time: 3.0,
                marker: SnapMarker::Full { snap: 0, events: 8 },
            },
            WalRecord::SnapshotMarker {
                time: 4.0,
                marker: SnapMarker::Delta {
                    snap: 0,
                    delta: 2,
                    events: 8,
                },
            },
            WalRecord::Meta {
                time: 4.5,
                event: StoreEvent::Paused,
            },
            WalRecord::Meta {
                time: 5.0,
                event: StoreEvent::Resumed,
            },
            WalRecord::Meta {
                time: 6.0,
                event: StoreEvent::ExperimentFinished,
            },
        ]
    }

    #[test]
    fn both_codecs_round_trip_every_record_kind() {
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            let codec = format.wal_codec();
            let mut buf = EncodeBuf::default();
            let mut stream = Vec::new();
            let records = sample_records();
            for record in &records {
                codec.encode_record(record, &mut buf);
                stream.extend_from_slice(&buf.bytes);
            }
            let mut decoded = Vec::new();
            let mut pos = 0;
            while pos < stream.len() {
                match codec.decode_step(&stream[pos..]) {
                    DecodeStep::Record { consumed, record } => {
                        decoded.push(record);
                        pos += consumed;
                    }
                    other => panic!("{}: unexpected step {other:?}", format.name()),
                }
            }
            assert_eq!(decoded, records, "{}", format.name());
        }
    }

    #[test]
    fn binary_frames_are_smaller_than_jsonl() {
        let records = sample_records();
        let mut buf = EncodeBuf::default();
        let mut size = |format: StoreFormat| -> usize {
            records
                .iter()
                .map(|r| {
                    format.wal_codec().encode_record(r, &mut buf);
                    buf.bytes.len()
                })
                .sum()
        };
        let jsonl = size(StoreFormat::JsonlV1);
        let binary = size(StoreFormat::BinaryV2);
        assert!(
            binary * 2 < jsonl,
            "binary ({binary}B) should be under half of jsonl ({jsonl}B)"
        );
    }

    #[test]
    fn binary_torn_prefixes_read_incomplete_not_invalid() {
        let codec = StoreFormat::BinaryV2.wal_codec();
        let mut buf = EncodeBuf::default();
        codec.encode_record(&sample_records()[1], &mut buf);
        let frame = buf.bytes.clone();
        for cut in 0..frame.len() {
            assert_eq!(
                codec.decode_step(&frame[..cut]),
                DecodeStep::Incomplete,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn binary_bitflips_fail_crc() {
        let codec = StoreFormat::BinaryV2.wal_codec();
        let mut buf = EncodeBuf::default();
        codec.encode_record(&sample_records()[2], &mut buf);
        // Flip a payload bit (past the 1-byte length prefix).
        let mut frame = buf.bytes.clone();
        frame[2] ^= 0x40;
        match codec.decode_step(&frame) {
            DecodeStep::Invalid { consumed, why } => {
                assert_eq!(consumed, frame.len());
                assert!(why.contains("CRC"), "{why}");
            }
            other => panic!("unexpected step {other:?}"),
        }
    }

    #[test]
    fn format_detection_and_names() {
        assert_eq!(
            StoreFormat::detect_wal(b"ASHAWAL2rest"),
            StoreFormat::BinaryV2
        );
        assert_eq!(
            StoreFormat::detect_wal(b"{\"ev\":..."),
            StoreFormat::JsonlV1
        );
        assert_eq!(StoreFormat::detect_wal(b""), StoreFormat::JsonlV1);
        assert_eq!(
            StoreFormat::from_name("binary-v2"),
            Some(StoreFormat::BinaryV2)
        );
        assert_eq!(StoreFormat::from_name("jsonl"), Some(StoreFormat::JsonlV1));
        assert_eq!(StoreFormat::from_name("parquet"), None);
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            assert_eq!(StoreFormat::from_name(format.name()), Some(format));
            assert_eq!(format.wal_codec().name(), format.name());
            assert_eq!(format.snapshot_codec().name(), format.name());
        }
    }

    #[test]
    fn snapshot_documents_round_trip_in_both_dialects() {
        let doc = JsonValue::obj([
            ("schema", JsonValue::Str("x".to_owned())),
            ("seq", JsonValue::Int(3)),
            ("loss", JsonValue::Num(0.125)),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
        ]);
        for format in [StoreFormat::JsonlV1, StoreFormat::BinaryV2] {
            let codec = format.snapshot_codec();
            let mut bytes = Vec::new();
            codec.encode_document(&doc, &mut bytes);
            assert_eq!(StoreFormat::detect_document(&bytes), format);
            let back = decode_any_document(&bytes).unwrap();
            assert!(crate::binary::json_eq(&doc, &back), "{}", format.name());
        }
        // A flipped payload bit in a binary document is caught by its CRC.
        let codec = StoreFormat::BinaryV2.snapshot_codec();
        let mut bytes = Vec::new();
        codec.encode_document(&doc, &mut bytes);
        let flip = bytes.len() - 6;
        bytes[flip] ^= 0x01;
        assert!(decode_any_document(&bytes).unwrap_err().contains("CRC"));
    }
}

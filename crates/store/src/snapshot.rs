//! Versioned full-state snapshots, delta documents, and the scheduler
//! wrapper they restore.
//!
//! A snapshot is everything needed to continue a run bit-for-bit: the
//! scheduler's exported state, the raw RNG state words, and (for simulated
//! runs) the simulator's [`SimRunState`]. Between full snapshots the store
//! may write *delta* documents — structural diffs (see [`crate::delta`])
//! against the previous checkpoint — so steady-state checkpoint cost is
//! proportional to change. All checkpoint files are written crash-safely —
//! encoded to a temp file, fsynced, renamed into place, directory fsynced —
//! so a crash mid-write never damages the previous checkpoint, and
//! recovery can always fall back along the chain. Bytes on disk are
//! whatever the [`SnapshotCodec`](crate::format::SnapshotCodec) produces;
//! readers sniff the dialect per file, so chains may mix dialects (e.g.
//! binary deltas atop a v1 JSON full snapshot).

use std::fs::File;
use std::path::{Path, PathBuf};

use asha_baselines::{GpSampler, GpSamplerConfig, TpeConfig, TpeSampler};
use asha_core::{
    Asha, AsyncHyperband, ConfigSampler, DAsha, Decision, Observation, Scheduler, SyncSha,
};
use asha_metrics::JsonValue;
use asha_sim::SimRunState;
use asha_space::SearchSpace;

use crate::codec;
use crate::error::{Error, StoreError};
use crate::format::{decode_any_document, StoreFormat};

/// Schema tag written into every snapshot file.
pub const SNAPSHOT_SCHEMA: &str = "asha-store-snapshot-v1";

/// Schema tag written into every delta-snapshot file.
pub const DELTA_SCHEMA: &str = "asha-store-delta-v1";

/// Exported state of any supported scheduler, tagged by kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerState {
    /// An [`Asha`] scheduler.
    Asha(asha_core::AshaState),
    /// A [`DAsha`] scheduler (delayed promotion; same state shape as ASHA —
    /// the promotion rule is re-established by the kind tag on restore).
    DAsha(asha_core::AshaState),
    /// A [`SyncSha`] scheduler.
    SyncSha(asha_core::SyncShaState),
    /// An [`AsyncHyperband`] scheduler.
    AsyncHyperband(asha_core::AsyncHyperbandState),
}

impl SchedulerState {
    /// Stable kind tag used in snapshot files and experiment metadata.
    pub fn kind(&self) -> &'static str {
        match self {
            SchedulerState::Asha(_) => "asha",
            SchedulerState::DAsha(_) => "dasha",
            SchedulerState::SyncSha(_) => "sync_sha",
            SchedulerState::AsyncHyperband(_) => "async_hyperband",
        }
    }

    /// Encode as tagged JSON.
    pub fn to_json(&self) -> JsonValue {
        let state = match self {
            SchedulerState::Asha(s) | SchedulerState::DAsha(s) => codec::asha_state_to_json(s),
            SchedulerState::SyncSha(s) => codec::sync_sha_state_to_json(s),
            SchedulerState::AsyncHyperband(s) => codec::hyperband_state_to_json(s),
        };
        JsonValue::obj([
            ("kind", JsonValue::Str(self.kind().to_owned())),
            ("state", state),
        ])
    }

    /// Decode from tagged JSON written by [`SchedulerState::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or("scheduler state missing kind")?;
        let state = v.get("state").ok_or("scheduler state missing state")?;
        match kind {
            "asha" => Ok(SchedulerState::Asha(codec::asha_state_from_json(state)?)),
            "dasha" => Ok(SchedulerState::DAsha(codec::asha_state_from_json(state)?)),
            "sync_sha" => Ok(SchedulerState::SyncSha(codec::sync_sha_state_from_json(
                state,
            )?)),
            "async_hyperband" => Ok(SchedulerState::AsyncHyperband(
                codec::hyperband_state_from_json(state)?,
            )),
            other => Err(Error::codec(format!("unknown scheduler kind {other:?}"))),
        }
    }
}

/// The sampling-plane half of a snapshot: which [`ConfigSampler`] kind the
/// scheduler runs and each sampler instance's serialized model cursor.
///
/// `cursors` holds one entry per sampler instance — a single element for
/// `Asha`/`DAsha`/`SyncSha`, one per bracket for `AsyncHyperband`. A `None`
/// entry means that instance keeps no cursor (stateless sampler).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerSpec {
    /// Sampler kind tag: `"tpe"` or `"gp"` (the random sampler is encoded
    /// as the *absence* of a spec, keeping random-run snapshots
    /// byte-identical to earlier store versions).
    pub kind: String,
    /// Per-instance serialized cursors.
    pub cursors: Vec<Option<String>>,
}

impl SamplerSpec {
    /// Encode as JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("kind", JsonValue::Str(self.kind.clone())),
            (
                "cursors",
                JsonValue::Arr(
                    self.cursors
                        .iter()
                        .map(|c| match c {
                            Some(s) => JsonValue::Str(s.clone()),
                            None => JsonValue::Null,
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from JSON written by [`SamplerSpec::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or("sampler spec missing kind")?
            .to_owned();
        let cursors = match v.get("cursors") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|c| match c {
                    JsonValue::Null => Ok(None),
                    JsonValue::Str(s) => Ok(Some(s.clone())),
                    _ => Err(Error::codec("sampler cursor must be string or null")),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(Error::codec("sampler spec missing cursors")),
        };
        Ok(SamplerSpec { kind, cursors })
    }
}

/// Build a fresh sampler of the named kind over `space`. Fails on an
/// unknown kind (e.g. a store written by a newer version).
pub fn make_sampler(kind: &str, space: &SearchSpace) -> Result<Box<dyn ConfigSampler>, Error> {
    Ok(match kind {
        "random" => Box::new(asha_core::RandomSampler::new()),
        "tpe" => Box::new(TpeSampler::new(space.clone(), TpeConfig::default())),
        "gp" => Box::new(GpSampler::new(space.clone(), GpSamplerConfig::default())),
        other => return Err(Error::codec(format!("unknown sampler kind {other:?}"))),
    })
}

/// A scheduler of any supported kind, restorable from a [`SchedulerState`].
///
/// The store cannot be generic over the scheduler type (the kind is data,
/// read from a file), so this enum dispatches the [`Scheduler`] trait over
/// the durable kinds.
#[derive(Debug)]
pub enum StoredScheduler {
    /// Algorithm 2 (ASHA).
    Asha(Asha),
    /// ASHA with Hyper-Tune's delayed promotion rule.
    DAsha(DAsha),
    /// Algorithm 1 (synchronous SHA).
    SyncSha(SyncSha),
    /// Asynchronous Hyperband (looping ASHA brackets).
    AsyncHyperband(AsyncHyperband),
}

impl StoredScheduler {
    /// Export the wrapped scheduler's full state.
    pub fn export_state(&self) -> SchedulerState {
        match self {
            StoredScheduler::Asha(s) => SchedulerState::Asha(s.export_state()),
            StoredScheduler::DAsha(s) => SchedulerState::DAsha(s.export_state()),
            StoredScheduler::SyncSha(s) => SchedulerState::SyncSha(s.export_state()),
            StoredScheduler::AsyncHyperband(s) => SchedulerState::AsyncHyperband(s.export_state()),
        }
    }

    /// Rebuild a scheduler from an exported state, with uniform random
    /// sampling (see [`StoredScheduler::from_state_with_sampler`] for
    /// model-based samplers).
    pub fn from_state(space: SearchSpace, state: SchedulerState) -> Self {
        match state {
            SchedulerState::Asha(s) => StoredScheduler::Asha(Asha::from_state(space, s)),
            SchedulerState::DAsha(s) => StoredScheduler::DAsha(DAsha::from_state(space, s)),
            SchedulerState::SyncSha(s) => StoredScheduler::SyncSha(SyncSha::from_state(space, s)),
            SchedulerState::AsyncHyperband(s) => {
                StoredScheduler::AsyncHyperband(AsyncHyperband::from_state(space, s))
            }
        }
    }

    /// Rebuild a scheduler from an exported state with a fresh sampler of
    /// the named kind attached (`"random"`, `"tpe"`, or `"gp"`). The
    /// sampler starts cold; restore its model with
    /// [`StoredScheduler::restore_sampler_spec`].
    ///
    /// Fails on an unknown sampler kind.
    pub fn from_state_with_sampler(
        space: SearchSpace,
        state: SchedulerState,
        sampler_kind: &str,
    ) -> Result<Self, Error> {
        if sampler_kind == "random" {
            return Ok(StoredScheduler::from_state(space, state));
        }
        // Validate the kind up front so the hyperband factory below (which
        // must be infallible) cannot hit an unknown name.
        make_sampler(sampler_kind, &space)?;
        Ok(match state {
            SchedulerState::Asha(s) => {
                let sampler = make_sampler(sampler_kind, &space)?;
                StoredScheduler::Asha(Asha::from_state_with_sampler(space, s, sampler))
            }
            SchedulerState::DAsha(s) => {
                let sampler = make_sampler(sampler_kind, &space)?;
                StoredScheduler::DAsha(DAsha::from_state_with_sampler(space, s, sampler))
            }
            SchedulerState::SyncSha(s) => {
                let sampler = make_sampler(sampler_kind, &space)?;
                StoredScheduler::SyncSha(SyncSha::from_state_with_sampler(space, s, sampler))
            }
            SchedulerState::AsyncHyperband(s) => {
                let kind = sampler_kind.to_owned();
                let factory_space = space.clone();
                StoredScheduler::AsyncHyperband(AsyncHyperband::from_state_with_sampler_factory(
                    space,
                    s,
                    move |_| {
                        make_sampler(&kind, &factory_space).expect("sampler kind validated above")
                    },
                ))
            }
        })
    }

    /// The attached sampler's kind tag (`"random"` for the default).
    pub fn sampler_kind(&self) -> &str {
        match self {
            StoredScheduler::Asha(s) => s.sampler_name(),
            StoredScheduler::DAsha(s) => s.sampler_name(),
            StoredScheduler::SyncSha(s) => s.sampler_name(),
            StoredScheduler::AsyncHyperband(s) => s.sampler_name(),
        }
    }

    /// Export the sampling plane's state for a snapshot. `None` for the
    /// random sampler (nothing to persist — and random-run snapshot bytes
    /// stay identical to earlier store versions).
    pub fn export_sampler_spec(&self) -> Option<SamplerSpec> {
        let kind = self.sampler_kind();
        if kind == "random" {
            return None;
        }
        let kind = kind.to_owned();
        let cursors = match self {
            StoredScheduler::Asha(s) => vec![s.export_sampler_cursor()],
            StoredScheduler::DAsha(s) => vec![s.export_sampler_cursor()],
            StoredScheduler::SyncSha(s) => vec![s.export_sampler_cursor()],
            StoredScheduler::AsyncHyperband(s) => s.export_sampler_cursors(),
        };
        Some(SamplerSpec { kind, cursors })
    }

    /// Restore the sampling plane from a snapshot's [`SamplerSpec`]:
    /// rehydrates each sampler instance's model cursor. A kind mismatch or
    /// malformed cursor leaves the affected sampler cold (samplers reject
    /// foreign cursors atomically) rather than failing recovery.
    pub fn restore_sampler_spec(&mut self, spec: &SamplerSpec) {
        match self {
            StoredScheduler::Asha(s) => {
                if let Some(Some(cursor)) = spec.cursors.first() {
                    s.restore_sampler_cursor(cursor);
                }
            }
            StoredScheduler::DAsha(s) => {
                if let Some(Some(cursor)) = spec.cursors.first() {
                    s.restore_sampler_cursor(cursor);
                }
            }
            StoredScheduler::SyncSha(s) => {
                if let Some(Some(cursor)) = spec.cursors.first() {
                    s.restore_sampler_cursor(cursor);
                }
            }
            StoredScheduler::AsyncHyperband(s) => s.restore_sampler_cursors(&spec.cursors),
        }
    }

    /// Stable kind tag (matches [`SchedulerState::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            StoredScheduler::Asha(_) => "asha",
            StoredScheduler::DAsha(_) => "dasha",
            StoredScheduler::SyncSha(_) => "sync_sha",
            StoredScheduler::AsyncHyperband(_) => "async_hyperband",
        }
    }
}

impl Scheduler for StoredScheduler {
    fn suggest(&mut self, rng: &mut dyn rand::RngCore) -> Decision {
        match self {
            StoredScheduler::Asha(s) => s.suggest(rng),
            StoredScheduler::DAsha(s) => s.suggest(rng),
            StoredScheduler::SyncSha(s) => s.suggest(rng),
            StoredScheduler::AsyncHyperband(s) => s.suggest(rng),
        }
    }

    fn observe(&mut self, obs: Observation) {
        match self {
            StoredScheduler::Asha(s) => s.observe(obs),
            StoredScheduler::DAsha(s) => s.observe(obs),
            StoredScheduler::SyncSha(s) => s.observe(obs),
            StoredScheduler::AsyncHyperband(s) => s.observe(obs),
        }
    }

    fn name(&self) -> &str {
        match self {
            StoredScheduler::Asha(s) => s.name(),
            StoredScheduler::DAsha(s) => s.name(),
            StoredScheduler::SyncSha(s) => s.name(),
            StoredScheduler::AsyncHyperband(s) => s.name(),
        }
    }

    fn wait_is_stable(&self) -> bool {
        match self {
            StoredScheduler::Asha(s) => s.wait_is_stable(),
            StoredScheduler::DAsha(s) => s.wait_is_stable(),
            StoredScheduler::SyncSha(s) => s.wait_is_stable(),
            StoredScheduler::AsyncHyperband(s) => s.wait_is_stable(),
        }
    }
}

/// A full durable checkpoint of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The snapshot's sequence number (monotone per experiment).
    pub seq: u64,
    /// Number of telemetry events the WAL held when this snapshot was
    /// taken; recovery replays the WAL from this position.
    pub events: u64,
    /// The scheduler's exported state.
    pub scheduler: SchedulerState,
    /// The sampling plane's state: sampler kind + model cursors. `None`
    /// for the default random sampler — the field is then omitted from the
    /// file entirely, so random-run snapshots are byte-identical to
    /// earlier store versions (and old snapshots decode as `None`).
    pub sampler: Option<SamplerSpec>,
    /// Raw xoshiro256++ state words of the run's RNG.
    pub rng: [u64; 4],
    /// The simulator's loop state (absent for executor-driven runs).
    pub sim: Option<SimRunState>,
}

impl Snapshot {
    /// The file name for snapshot `seq` in `format` (zero-padded so
    /// lexicographic and numeric order agree).
    pub fn file_name(seq: u64, format: StoreFormat) -> String {
        format!("snap-{seq:08}.{}", format.snapshot_codec().extension())
    }

    /// Locate snapshot `seq` in `dir`, whichever dialect it was written in.
    pub fn find(dir: &Path, seq: u64) -> Option<PathBuf> {
        [StoreFormat::BinaryV2, StoreFormat::JsonlV1]
            .into_iter()
            .map(|format| dir.join(Self::file_name(seq, format)))
            .find(|path| path.exists())
    }

    /// Encode as JSON. The `sampler` key is present only when the run has
    /// a model-based sampler attached.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("schema", JsonValue::Str(SNAPSHOT_SCHEMA.to_owned())),
            ("seq", JsonValue::Int(self.seq)),
            ("events", JsonValue::Int(self.events)),
            ("scheduler", self.scheduler.to_json()),
        ];
        if let Some(spec) = &self.sampler {
            fields.push(("sampler", spec.to_json()));
        }
        fields.push(("rng", codec::rng_state_to_json(self.rng)));
        fields.push((
            "sim",
            match &self.sim {
                Some(s) => codec::sim_run_state_to_json(s),
                None => JsonValue::Null,
            },
        ));
        JsonValue::obj(fields)
    }

    /// Decode a snapshot, verifying the schema tag.
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("snapshot missing schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(Error::codec(format!(
                "unsupported snapshot schema {schema:?} (expected {SNAPSHOT_SCHEMA:?})"
            )));
        }
        let sim = {
            let s = v.get("sim").ok_or("snapshot missing sim")?;
            if s.is_null() {
                None
            } else {
                Some(codec::sim_run_state_from_json(s)?)
            }
        };
        Ok(Snapshot {
            seq: v
                .get("seq")
                .and_then(|s| s.as_u64())
                .ok_or("snapshot missing seq")?,
            events: v
                .get("events")
                .and_then(|s| s.as_u64())
                .ok_or("snapshot missing events")?,
            scheduler: SchedulerState::from_json(
                v.get("scheduler").ok_or("snapshot missing scheduler")?,
            )?,
            sampler: match v.get("sampler") {
                None => None,
                Some(JsonValue::Null) => None,
                Some(spec) => Some(SamplerSpec::from_json(spec)?),
            },
            rng: codec::rng_state_from_json(v.get("rng").ok_or("snapshot missing rng")?)?,
            sim,
        })
    }

    /// Write the snapshot crash-safely into `dir` in `format`. Returns the
    /// final path and the encoded size in bytes.
    pub fn write(&self, dir: &Path, format: StoreFormat) -> Result<(PathBuf, u64), StoreError> {
        write_document(
            dir,
            &Self::file_name(self.seq, format),
            &self.to_json(),
            format,
        )
    }
}

/// The file name for delta `delta` on top of full snapshot `snap`.
pub fn delta_file_name(snap: u64, delta: u64, format: StoreFormat) -> String {
    format!(
        "delta-{snap:08}-{delta:04}.{}",
        format.snapshot_codec().extension()
    )
}

/// A delta-snapshot document: a [`crate::delta`] patch plus enough chain
/// metadata to validate its position on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaDoc {
    /// The chain's base full-snapshot sequence number.
    pub snap: u64,
    /// Position in the chain (1-based).
    pub delta: u64,
    /// Telemetry events covered after applying this delta.
    pub events: u64,
    /// The structural patch against the previous checkpoint's document.
    pub patch: JsonValue,
}

impl DeltaDoc {
    /// Encode as JSON.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("schema", JsonValue::Str(DELTA_SCHEMA.to_owned())),
            ("snap", JsonValue::Int(self.snap)),
            ("delta", JsonValue::Int(self.delta)),
            ("events", JsonValue::Int(self.events)),
            ("patch", self.patch.clone()),
        ])
    }

    /// Decode, verifying the schema tag.
    pub fn from_json(v: &JsonValue) -> Result<Self, Error> {
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("delta missing schema")?;
        if schema != DELTA_SCHEMA {
            return Err(Error::codec(format!(
                "unsupported delta schema {schema:?} (expected {DELTA_SCHEMA:?})"
            )));
        }
        Ok(DeltaDoc {
            snap: v
                .get("snap")
                .and_then(|s| s.as_u64())
                .ok_or("delta missing snap")?,
            delta: v
                .get("delta")
                .and_then(|s| s.as_u64())
                .ok_or("delta missing delta")?,
            events: v
                .get("events")
                .and_then(|s| s.as_u64())
                .ok_or("delta missing events")?,
            patch: v.get("patch").ok_or("delta missing patch")?.clone(),
        })
    }

    /// Write crash-safely into `dir` in `format`. Returns the final path
    /// and the encoded size in bytes.
    pub fn write(&self, dir: &Path, format: StoreFormat) -> Result<(PathBuf, u64), StoreError> {
        write_document(
            dir,
            &delta_file_name(self.snap, self.delta, format),
            &self.to_json(),
            format,
        )
    }

    /// Load the delta `delta` of chain `snap` from `dir`, whichever
    /// dialect it was written in, verifying its chain position.
    pub fn load(dir: &Path, snap: u64, delta: u64) -> Result<DeltaDoc, StoreError> {
        let path = [StoreFormat::BinaryV2, StoreFormat::JsonlV1]
            .into_iter()
            .map(|format| dir.join(delta_file_name(snap, delta, format)))
            .find(|path| path.exists())
            .ok_or_else(|| {
                StoreError::corrupt(dir, format!("delta {delta} of snapshot {snap} is missing"))
            })?;
        let doc = read_document(&path)?;
        let parsed = DeltaDoc::from_json(&doc).map_err(|e| e.corrupt_at(&path))?;
        if parsed.snap != snap || parsed.delta != delta {
            return Err(StoreError::corrupt(
                &path,
                format!(
                    "delta chain mismatch: file says snap {} delta {}, expected snap {snap} delta {delta}",
                    parsed.snap, parsed.delta
                ),
            ));
        }
        Ok(parsed)
    }
}

/// Write a checkpoint document crash-safely into `dir`: encode with
/// `format`'s codec to a temp file, fsync, rename into place, fsync the
/// directory. Returns the final path and encoded size.
pub fn write_document(
    dir: &Path,
    file_name: &str,
    doc: &JsonValue,
    format: StoreFormat,
) -> Result<(PathBuf, u64), StoreError> {
    let final_path = dir.join(file_name);
    let tmp_path = dir.join(format!("{file_name}.tmp"));
    let mut bytes = Vec::new();
    format.snapshot_codec().encode_document(doc, &mut bytes);
    std::fs::write(&tmp_path, &bytes).map_err(|e| StoreError::io(&tmp_path, e))?;
    File::open(&tmp_path)
        .and_then(|f| f.sync_all())
        .map_err(|e| StoreError::io(&tmp_path, e))?;
    std::fs::rename(&tmp_path, &final_path).map_err(|e| StoreError::io(&final_path, e))?;
    fsync_dir(dir)?;
    Ok((final_path, bytes.len() as u64))
}

/// Read a checkpoint document of either dialect (sniffed by magic).
pub fn read_document(path: &Path) -> Result<JsonValue, StoreError> {
    let bytes = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    decode_any_document(&bytes).map_err(|msg| StoreError::corrupt(path, msg))
}

/// Fsync a directory so a just-renamed file's entry is durable (POSIX
/// requires syncing the containing directory, not just the file).
pub fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    // Opening a directory read-only for fsync works on Linux; on platforms
    // where it does not, durability degrades gracefully to writeback.
    if let Ok(f) = File::open(dir) {
        let _ = f.sync_all();
    }
    Ok(())
}

/// Every snapshot in `dir`, sorted by sequence number.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut snaps = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|rest| {
                rest.strip_suffix(".json")
                    .or_else(|| rest.strip_suffix(".bin"))
            })
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            snaps.push((seq, entry.path()));
        }
    }
    snaps.sort_by_key(|&(seq, _)| seq);
    Ok(snaps)
}

/// Load the newest parseable snapshot in `dir`, walking the chain backwards
/// past any unreadable file (a crash can only damage the newest one, and
/// only on filesystems that reorder the rename).
pub fn load_latest(dir: &Path) -> Result<Option<(Snapshot, PathBuf)>, StoreError> {
    let snaps = list_snapshots(dir)?;
    for (_, path) in snaps.iter().rev() {
        let parsed = read_document(path)
            .and_then(|doc| Snapshot::from_json(&doc).map_err(|e| e.corrupt_at(path)));
        if let Ok(snapshot) = parsed {
            return Ok(Some((snapshot, path.clone())));
        }
    }
    Ok(None)
}

//! Group commit: one fsync per commit window, shared across experiments.
//!
//! With many experiments under one [`crate::ExperimentSupervisor`], each
//! run's WAL issuing its own fsync cadence turns the process into an fsync
//! storm — the classic group-commit problem. A [`CommitPipeline`] owns a
//! background committer thread; each WAL registers a duplicated file handle
//! and, instead of fsyncing inline, marks itself dirty and (when it needs
//! durability, e.g. a snapshot marker) waits for the committer to cover its
//! request. The committer batches every request that arrives within one
//! *commit window*, then issues a single fsync per dirty file — so N
//! experiments syncing in the same window cost one fsync each per window,
//! not one per append batch.
//!
//! Guarantees:
//!
//! * **Bounded latency** — a request waits at most one commit window plus
//!   fsync time before its ack.
//! * **Per-experiment durability acks** — [`CommitHandle::wait`] returns
//!   only once an fsync issued *after* the handle's request completed on
//!   *its* file.
//! * **Graceful shutdown** — when the pipeline drops, unserved waiters fall
//!   back to a direct fsync on their own duplicated handle, so durability
//!   never regresses just because the supervisor is going away.

use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::StoreError;
use crate::metrics::StoreMetrics;

#[derive(Debug)]
struct Registered {
    file: Option<File>,
    dirty: bool,
}

#[derive(Debug)]
struct PipelineState {
    files: Vec<Registered>,
    /// Highest commit epoch requested by any handle.
    requested: u64,
    /// Highest epoch whose dirty files have all been fsynced.
    durable: u64,
    /// When the currently open batch received its first request.
    open_since: Option<Instant>,
    shutdown: bool,
}

#[derive(Debug)]
struct PipelineInner {
    state: Mutex<PipelineState>,
    /// Wakes the committer (new request or shutdown).
    work: Condvar,
    /// Wakes waiters (epoch advanced or shutdown).
    done: Condvar,
    window: Duration,
    metrics: Mutex<Option<Arc<StoreMetrics>>>,
    fsyncs_issued: AtomicU64,
    requests: AtomicU64,
}

/// Shared group-commit service; see the module docs.
#[derive(Debug)]
pub struct CommitPipeline {
    inner: Arc<PipelineInner>,
    committer: Option<std::thread::JoinHandle<()>>,
}

/// One WAL's registration with a [`CommitPipeline`].
#[derive(Debug)]
pub struct CommitHandle {
    inner: Arc<PipelineInner>,
    slot: usize,
    /// Duplicated handle kept for the shutdown fallback path.
    file: File,
}

impl CommitPipeline {
    /// Start a pipeline whose committer batches requests for `window`
    /// before issuing fsyncs. A zero window degenerates to "fsync as soon
    /// as the committer wakes" (maximal responsiveness, minimal batching).
    pub fn new(window: Duration) -> CommitPipeline {
        let inner = Arc::new(PipelineInner {
            state: Mutex::new(PipelineState {
                files: Vec::new(),
                requested: 0,
                durable: 0,
                open_since: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            window,
            metrics: Mutex::new(None),
            fsyncs_issued: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let committer = std::thread::Builder::new()
            .name("asha-commit".to_owned())
            .spawn(move || committer_loop(&thread_inner))
            .ok();
        CommitPipeline { inner, committer }
    }

    /// The configured commit window.
    pub fn window(&self) -> Duration {
        self.inner.window
    }

    /// Attach metrics: commit-window latency histogram plus request/fsync
    /// counters (their ratio is the fsyncs-saved amortization factor).
    pub fn set_metrics(&self, metrics: Arc<StoreMetrics>) {
        *self.inner.metrics.lock().expect("commit metrics poisoned") = Some(metrics);
    }

    /// Total durability requests received so far.
    pub fn requests(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Total fsync syscalls issued so far. With N writers sharing a window
    /// this is at most one per writer per window, however many requests
    /// arrived.
    pub fn fsyncs_issued(&self) -> u64 {
        self.inner.fsyncs_issued.load(Ordering::Relaxed)
    }

    /// Register a WAL file (a duplicated handle, e.g. `File::try_clone`).
    /// The handle's requests participate in group commit from now on.
    pub fn register(&self, file: File) -> Result<CommitHandle, StoreError> {
        let fallback = file
            .try_clone()
            .map_err(|e| StoreError::io(Path::new("<commit-pipeline>"), e))?;
        let mut state = self.inner.state.lock().expect("commit state poisoned");
        let slot = state.files.len();
        state.files.push(Registered {
            file: Some(file),
            dirty: false,
        });
        Ok(CommitHandle {
            inner: Arc::clone(&self.inner),
            slot,
            file: fallback,
        })
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("commit state poisoned");
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        self.inner.done.notify_all();
        if let Some(committer) = self.committer.take() {
            let _ = committer.join();
        }
    }
}

impl CommitHandle {
    /// Mark this WAL dirty and open (or join) the current commit window.
    /// Returns the epoch to pass to [`CommitHandle::wait`] for a durability
    /// ack; fire-and-forget callers just drop it.
    pub fn request(&self) -> u64 {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let mut state = self.inner.state.lock().expect("commit state poisoned");
        state.files[self.slot].dirty = true;
        state.requested += 1;
        if state.open_since.is_none() {
            state.open_since = Some(Instant::now());
        }
        let epoch = state.requested;
        drop(state);
        self.inner.work.notify_one();
        epoch
    }

    /// Block until `epoch` is durable. If the pipeline shut down first,
    /// falls back to a direct fsync on this handle's own file descriptor.
    pub fn wait(&self, epoch: u64) -> Result<(), StoreError> {
        let mut state = self.inner.state.lock().expect("commit state poisoned");
        while state.durable < epoch && !state.shutdown {
            state = self.inner.done.wait(state).expect("commit state poisoned");
        }
        let served = state.durable >= epoch;
        drop(state);
        if served {
            return Ok(());
        }
        self.file
            .sync_all()
            .map_err(|e| StoreError::io(Path::new("<commit-pipeline>"), e))
    }

    /// Convenience: request and wait in one call.
    pub fn commit(&self) -> Result<(), StoreError> {
        self.wait(self.request())
    }
}

impl Drop for CommitHandle {
    fn drop(&mut self) {
        if let Ok(mut state) = self.inner.state.lock() {
            if let Some(slot) = state.files.get_mut(self.slot) {
                // The committer only fsyncs what was dirty when it latched
                // the batch; dropping the registration after a final
                // WalWriter sync is safe because that sync already waited.
                slot.file = None;
                slot.dirty = false;
            }
        }
    }
}

fn committer_loop(inner: &PipelineInner) {
    loop {
        // Phase 1: wait for a batch to open (or shutdown).
        let open_since = {
            let mut state = inner.state.lock().expect("commit state poisoned");
            loop {
                if let Some(t0) = state.open_since {
                    break t0;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work.wait(state).expect("commit state poisoned");
            }
        };

        // Phase 2: let the window fill. Requests arriving in this span ride
        // the same batch — this sleep is the whole point of group commit.
        loop {
            let elapsed = open_since.elapsed();
            if elapsed >= inner.window {
                break;
            }
            let shutdown = {
                let state = inner.state.lock().expect("commit state poisoned");
                state.shutdown
            };
            if shutdown {
                break; // drain immediately
            }
            std::thread::sleep((inner.window - elapsed).min(Duration::from_millis(5)));
        }

        // Phase 3: latch the batch — epoch and dirty set — under the lock,
        // but fsync *outside* it so writers never stall behind the disk.
        let (epoch, to_sync) = {
            let mut state = inner.state.lock().expect("commit state poisoned");
            let epoch = state.requested;
            state.open_since = None;
            let mut to_sync = Vec::new();
            for slot in &mut state.files {
                if slot.dirty {
                    slot.dirty = false;
                    if let Some(file) = &slot.file {
                        if let Ok(dup) = file.try_clone() {
                            to_sync.push(dup);
                        }
                    }
                }
            }
            (epoch, to_sync)
        };
        for file in &to_sync {
            let _ = file.sync_all();
        }
        let fsyncs = to_sync.len() as u64;
        inner.fsyncs_issued.fetch_add(fsyncs, Ordering::Relaxed);

        {
            let mut state = inner.state.lock().expect("commit state poisoned");
            if state.durable < epoch {
                state.durable = epoch;
            }
            let finished = state.shutdown && state.open_since.is_none();
            drop(state);
            inner.done.notify_all();
            if let Some(metrics) = inner
                .metrics
                .lock()
                .expect("commit metrics poisoned")
                .as_ref()
            {
                metrics.commit_window.observe_duration(open_since.elapsed());
                metrics.group_commit_fsyncs.add(fsyncs);
            }
            if finished {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(tag: &str) -> (std::path::PathBuf, File) {
        let dir = std::env::temp_dir().join(format!("asha-commit-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal");
        let file = File::create(&path).unwrap();
        (dir, file)
    }

    #[test]
    fn acks_arrive_and_fsyncs_batch() {
        let pipeline = CommitPipeline::new(Duration::from_millis(10));
        let (dir, mut file) = tmpfile("ack");
        let handle = pipeline.register(file.try_clone().unwrap()).unwrap();
        file.write_all(b"hello").unwrap();
        // Many requests inside one window produce one fsync for this file.
        let mut last = 0;
        for _ in 0..50 {
            last = handle.request();
        }
        handle.wait(last).unwrap();
        assert_eq!(pipeline.requests(), 50);
        assert!(
            pipeline.fsyncs_issued() <= 2,
            "expected ~1 fsync, saw {}",
            pipeline.fsyncs_issued()
        );
        drop(pipeline);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn shutdown_falls_back_to_direct_fsync() {
        let pipeline = CommitPipeline::new(Duration::from_secs(3600));
        let (dir, mut file) = tmpfile("shutdown");
        let handle = pipeline.register(file.try_clone().unwrap()).unwrap();
        file.write_all(b"tail").unwrap();
        let epoch = handle.request();
        // Drop the pipeline before the (huge) window elapses: the waiter
        // must still get durability via its own descriptor.
        drop(pipeline);
        handle.wait(epoch).unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn multiple_writers_share_a_window() {
        let pipeline = CommitPipeline::new(Duration::from_millis(20));
        let mut dirs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let (dir, mut file) = tmpfile(&format!("multi{i}"));
            file.write_all(b"x").unwrap();
            handles.push(pipeline.register(file).unwrap());
            dirs.push(dir);
        }
        let epochs: Vec<u64> = handles.iter().map(|h| h.request()).collect();
        for (handle, epoch) in handles.iter().zip(epochs) {
            handle.wait(epoch).unwrap();
        }
        // 4 writers, 1 window: at most one fsync per writer (and the whole
        // batch counts as 4 syscalls instead of 4 * requests).
        assert!(pipeline.fsyncs_issued() <= 8);
        drop(pipeline);
        for dir in dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }
}

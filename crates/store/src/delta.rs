//! Structural diffs over snapshot documents: the delta-snapshot engine.
//!
//! A delta snapshot stores [`diff`]`(previous_doc, current_doc)` instead of
//! the full document, so steady-state checkpoint cost is proportional to
//! what changed (new rung records, promoted-set updates, appended trace
//! events, sampler cursors) rather than to total state size. Recovery
//! rebuilds the full document by [`apply`]ing each delta in chain order on
//! top of the newest full snapshot.
//!
//! The invariant everything rests on: for any two documents,
//! `apply(base, &diff(base, new))` reproduces `new` **exactly** — same key
//! order, same `Int`-vs-`Num` variants, bit-identical floats — so a run
//! recovered through a delta chain re-renders byte-identically to one
//! recovered from a full snapshot. Equality here is [`json_eq`]
//! (bit-exact on floats); derived `PartialEq` would break on NaN losses.
//!
//! ## Patch grammar
//!
//! A patch is itself a [`JsonValue`] (so it rides through either snapshot
//! codec unchanged):
//!
//! * `{"u":1}` — unchanged; keep the base value.
//! * `{"r":V}` — replace the base value with `V`.
//! * `{"o":[entry…]}` — rebuild an object. Entries are listed in the *new*
//!   object's key order (robust to key reordering): `["=",key]` copies the
//!   base's value, `["p",key,patch]` recurses, `["+",key,V]` inserts `V`.
//!   Base keys not listed are dropped.
//! * `{"a":[keep,[[i,patch]…],[tail…]]}` — rebuild an array: take the
//!   first `keep` base elements, patch the listed indexes, then append the
//!   tail. Covers the store's append-mostly arrays (trace, rungs) in
//!   O(appended) bytes.

use asha_metrics::JsonValue;

pub use crate::binary::json_eq;

/// The patch that is literally `{"u":1}` — the "nothing changed" diff.
pub fn unchanged() -> JsonValue {
    JsonValue::obj([("u", JsonValue::Int(1))])
}

/// Is this patch the [`unchanged`] marker?
pub fn is_unchanged(patch: &JsonValue) -> bool {
    matches!(patch.get("u"), Some(JsonValue::Int(1)))
}

/// Compute a patch transforming `base` into `new`.
pub fn diff(base: &JsonValue, new: &JsonValue) -> JsonValue {
    if json_eq(base, new) {
        return unchanged();
    }
    match (base, new) {
        (JsonValue::Obj(base_fields), JsonValue::Obj(new_fields)) => {
            let mut entries = Vec::with_capacity(new_fields.len());
            // `cursor` exploits the common case: the same codec wrote both
            // documents, so keys almost always line up positionally and the
            // lookup is O(1) instead of a scan.
            let mut cursor = 0usize;
            for (key, new_val) in new_fields {
                let found = if base_fields.get(cursor).is_some_and(|(k, _)| k == key) {
                    Some(cursor)
                } else {
                    base_fields.iter().position(|(k, _)| k == key)
                };
                match found {
                    Some(idx) => {
                        cursor = idx + 1;
                        let base_val = &base_fields[idx].1;
                        if json_eq(base_val, new_val) {
                            entries.push(JsonValue::Arr(vec![
                                JsonValue::Str("=".to_owned()),
                                JsonValue::Str(key.clone()),
                            ]));
                        } else {
                            entries.push(JsonValue::Arr(vec![
                                JsonValue::Str("p".to_owned()),
                                JsonValue::Str(key.clone()),
                                diff(base_val, new_val),
                            ]));
                        }
                    }
                    None => entries.push(JsonValue::Arr(vec![
                        JsonValue::Str("+".to_owned()),
                        JsonValue::Str(key.clone()),
                        new_val.clone(),
                    ])),
                }
            }
            JsonValue::obj([("o", JsonValue::Arr(entries))])
        }
        (JsonValue::Arr(base_items), JsonValue::Arr(new_items)) => {
            let keep = base_items.len().min(new_items.len());
            let mut patches = Vec::new();
            for i in 0..keep {
                if !json_eq(&base_items[i], &new_items[i]) {
                    patches.push(JsonValue::Arr(vec![
                        JsonValue::Int(i as u64),
                        diff(&base_items[i], &new_items[i]),
                    ]));
                }
            }
            let tail: Vec<JsonValue> = new_items[keep..].to_vec();
            JsonValue::obj([(
                "a",
                JsonValue::Arr(vec![
                    JsonValue::Int(keep as u64),
                    JsonValue::Arr(patches),
                    JsonValue::Arr(tail),
                ]),
            )])
        }
        _ => JsonValue::obj([("r", new.clone())]),
    }
}

/// Apply a patch produced by [`diff`]: `apply(base, &diff(base, new))`
/// reproduces `new` exactly. Fails on a malformed patch or one computed
/// against a different base shape.
pub fn apply(base: &JsonValue, patch: &JsonValue) -> Result<JsonValue, String> {
    let JsonValue::Obj(fields) = patch else {
        return Err("patch must be an object".to_owned());
    };
    let [(op, arg)] = fields.as_slice() else {
        return Err("patch must hold exactly one operation".to_owned());
    };
    match op.as_str() {
        "u" => Ok(base.clone()),
        "r" => Ok(arg.clone()),
        "o" => {
            let JsonValue::Obj(base_fields) = base else {
                return Err("object patch applied to non-object".to_owned());
            };
            let JsonValue::Arr(entries) = arg else {
                return Err("object patch entries must be an array".to_owned());
            };
            let mut out = Vec::with_capacity(entries.len());
            let mut cursor = 0usize;
            let lookup = |key: &str, cursor: &mut usize| -> Result<&JsonValue, String> {
                let found = if base_fields.get(*cursor).is_some_and(|(k, _)| k == key) {
                    Some(*cursor)
                } else {
                    base_fields.iter().position(|(k, _)| k == key)
                };
                let idx = found.ok_or_else(|| format!("patch references missing key {key:?}"))?;
                *cursor = idx + 1;
                Ok(&base_fields[idx].1)
            };
            for entry in entries {
                let JsonValue::Arr(parts) = entry else {
                    return Err("object patch entry must be an array".to_owned());
                };
                let tag = parts
                    .first()
                    .and_then(|t| t.as_str())
                    .ok_or("object patch entry missing tag")?;
                let key = parts
                    .get(1)
                    .and_then(|k| k.as_str())
                    .ok_or("object patch entry missing key")?;
                let value = match (tag, parts.get(2)) {
                    ("=", None) => lookup(key, &mut cursor)?.clone(),
                    ("p", Some(subpatch)) => apply(lookup(key, &mut cursor)?, subpatch)?,
                    ("+", Some(value)) => value.clone(),
                    _ => return Err(format!("malformed object patch entry tag {tag:?}")),
                };
                out.push((key.to_owned(), value));
            }
            Ok(JsonValue::Obj(out))
        }
        "a" => {
            let JsonValue::Arr(base_items) = base else {
                return Err("array patch applied to non-array".to_owned());
            };
            let JsonValue::Arr(parts) = arg else {
                return Err("array patch must be an array".to_owned());
            };
            let [keep, patches, tail] = parts.as_slice() else {
                return Err("array patch must be [keep, patches, tail]".to_owned());
            };
            let keep = keep.as_u64().ok_or("array patch keep must be an integer")? as usize;
            if keep > base_items.len() {
                return Err(format!(
                    "array patch keeps {keep} of {} elements",
                    base_items.len()
                ));
            }
            let mut out: Vec<JsonValue> = base_items[..keep].to_vec();
            let JsonValue::Arr(patches) = patches else {
                return Err("array patch patches must be an array".to_owned());
            };
            for entry in patches {
                let JsonValue::Arr(pair) = entry else {
                    return Err("array patch entry must be [index, patch]".to_owned());
                };
                let [idx, subpatch] = pair.as_slice() else {
                    return Err("array patch entry must be [index, patch]".to_owned());
                };
                let idx = idx.as_u64().ok_or("array patch index must be an integer")? as usize;
                let slot = out
                    .get(idx)
                    .ok_or_else(|| format!("array patch index {idx} out of range"))?;
                out[idx] = apply(slot, subpatch)?;
            }
            let JsonValue::Arr(tail) = tail else {
                return Err("array patch tail must be an array".to_owned());
            };
            out.extend(tail.iter().cloned());
            Ok(JsonValue::Arr(out))
        }
        other => Err(format!("unknown patch operation {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(base: &JsonValue, new: &JsonValue) -> JsonValue {
        let patch = diff(base, new);
        let rebuilt = apply(base, &patch).expect("patch applies");
        assert!(
            json_eq(&rebuilt, new),
            "apply(diff) mismatch: {} vs {}",
            rebuilt.render_compact(),
            new.render_compact()
        );
        patch
    }

    #[test]
    fn identical_docs_diff_to_unchanged() {
        let doc = JsonValue::obj([
            ("a", JsonValue::Int(1)),
            ("b", JsonValue::Arr(vec![JsonValue::Num(f64::NAN)])),
        ]);
        let patch = roundtrip(&doc, &doc.clone());
        assert!(is_unchanged(&patch));
    }

    #[test]
    fn appended_array_tail_costs_only_the_tail() {
        let base = JsonValue::Arr((0..1000).map(JsonValue::Int).collect());
        let mut grown = (0..1000).map(JsonValue::Int).collect::<Vec<_>>();
        grown.push(JsonValue::Int(1000));
        grown.push(JsonValue::Int(1001));
        let new = JsonValue::Arr(grown);
        let patch = roundtrip(&base, &new);
        // The patch should not embed the 1000 shared elements.
        assert!(
            patch.render_compact().len() < 80,
            "{}",
            patch.render_compact()
        );
    }

    #[test]
    fn array_truncation_and_inplace_edits() {
        let base = JsonValue::Arr(vec![
            JsonValue::Int(0),
            JsonValue::Int(1),
            JsonValue::Int(2),
            JsonValue::Int(3),
        ]);
        let new = JsonValue::Arr(vec![JsonValue::Int(0), JsonValue::Int(9)]);
        roundtrip(&base, &new);
        roundtrip(&new, &base);
        roundtrip(&base, &JsonValue::Arr(vec![]));
    }

    #[test]
    fn object_insert_drop_reorder_and_nested_edit() {
        let base = JsonValue::obj([
            ("schema", JsonValue::Str("v1".to_owned())),
            ("jobs", JsonValue::Arr(vec![JsonValue::Int(1)])),
            ("dropped", JsonValue::Bool(true)),
            ("rng", JsonValue::Int(7)),
        ]);
        let new = JsonValue::obj([
            ("rng", JsonValue::Int(8)),
            ("schema", JsonValue::Str("v1".to_owned())),
            (
                "jobs",
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
            ("added", JsonValue::Null),
        ]);
        roundtrip(&base, &new);
    }

    #[test]
    fn type_changes_fall_back_to_replace() {
        let base = JsonValue::obj([("x", JsonValue::Arr(vec![]))]);
        let new = JsonValue::obj([("x", JsonValue::Int(3))]);
        roundtrip(&base, &new);
        roundtrip(&JsonValue::Null, &JsonValue::Str("s".to_owned()));
    }

    #[test]
    fn nan_payloads_survive_the_chain() {
        let base = JsonValue::obj([("loss", JsonValue::Num(0.5))]);
        let new = JsonValue::obj([("loss", JsonValue::Num(f64::NAN))]);
        let rebuilt = apply(&base, &diff(&base, &new)).unwrap();
        assert!(json_eq(&rebuilt, &new));
        // And the rebuilt doc renders identically to the original.
        assert_eq!(rebuilt.render_compact(), new.render_compact());
    }

    #[test]
    fn malformed_patches_are_rejected() {
        let base = JsonValue::obj([("a", JsonValue::Int(1))]);
        assert!(apply(&base, &JsonValue::Int(1)).is_err());
        assert!(apply(&base, &JsonValue::obj([("z", JsonValue::Null)])).is_err());
        // Patch computed against a different base shape.
        let patch = diff(
            &JsonValue::obj([("k", JsonValue::Int(1))]),
            &JsonValue::obj([("k", JsonValue::Int(2))]),
        );
        assert!(apply(&JsonValue::Arr(vec![]), &patch).is_err());
    }
}

//! A multi-experiment supervisor: many named durable experiments in one
//! process, each on its own worker thread, with independent pause / resume /
//! abort and a crash-safe manifest.
//!
//! On-disk layout under the supervisor's root:
//!
//! ```text
//! <root>/manifest.json      crash-safe registry: name + status per experiment
//! <root>/<name>/            one experiment store (see [`crate::experiment`])
//! ```
//!
//! The manifest is advisory metadata — each experiment directory is
//! self-contained and recoverable on its own — so a crash between a status
//! change and the manifest rewrite loses nothing: reopening the supervisor
//! downgrades any `running` entry to `interrupted`, and resuming it goes
//! through the same WAL/snapshot recovery as any other restart.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use asha_metrics::JsonValue;
use asha_sim::SimResult;

use crate::error::{Error, StoreError};
use crate::experiment::{read_meta, DurableRun, ExperimentMeta, RunOptions};
use crate::snapshot::fsync_dir;

/// Schema tag written into every `manifest.json`.
pub const MANIFEST_SCHEMA: &str = "asha-store-manifest-v1";
/// File name of the supervisor manifest.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Lifecycle state of one supervised experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentStatus {
    /// Directory initialized, never started.
    Created,
    /// A worker thread is driving the run.
    Running,
    /// Paused at a durable snapshot; resumable in-process or after restart.
    Paused,
    /// Ran to completion.
    Finished,
    /// Deliberately stopped before completion (still resumable from disk).
    Aborted,
    /// Was `running` when the supervising process died; resumable via
    /// crash recovery.
    Interrupted,
}

impl ExperimentStatus {
    /// Stable lowercase name used in the manifest.
    pub fn as_str(self) -> &'static str {
        match self {
            ExperimentStatus::Created => "created",
            ExperimentStatus::Running => "running",
            ExperimentStatus::Paused => "paused",
            ExperimentStatus::Finished => "finished",
            ExperimentStatus::Aborted => "aborted",
            ExperimentStatus::Interrupted => "interrupted",
        }
    }

    /// Parse a manifest status name.
    pub fn parse(s: &str) -> Result<Self, Error> {
        Ok(match s {
            "created" => ExperimentStatus::Created,
            "running" => ExperimentStatus::Running,
            "paused" => ExperimentStatus::Paused,
            "finished" => ExperimentStatus::Finished,
            "aborted" => ExperimentStatus::Aborted,
            "interrupted" => ExperimentStatus::Interrupted,
            other => return Err(Error::codec(format!("unknown experiment status {other:?}"))),
        })
    }
}

/// One manifest row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The experiment's name (also its directory name under the root).
    pub name: String,
    /// Last durably recorded status.
    pub status: ExperimentStatus,
}

/// Commands a worker thread obeys at its next step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Pause,
    Abort,
}

/// Shared control cell between the supervisor and one worker thread.
#[derive(Debug)]
struct Control {
    command: Mutex<Command>,
    signal: Condvar,
}

impl Control {
    fn new() -> Arc<Self> {
        Arc::new(Control {
            command: Mutex::new(Command::Run),
            signal: Condvar::new(),
        })
    }

    fn set(&self, cmd: Command) {
        *self.command.lock().unwrap() = cmd;
        self.signal.notify_all();
    }

    fn current(&self) -> Command {
        *self.command.lock().unwrap()
    }

    /// Block until the command is no longer `Pause`; returns the new one.
    fn wait_while_paused(&self) -> Command {
        let mut guard = self.command.lock().unwrap();
        while *guard == Command::Pause {
            guard = self.signal.wait(guard).unwrap();
        }
        *guard
    }
}

/// The outcome a worker thread reports: the run's result, or `None` when it
/// was aborted before finishing.
type WorkerOutcome = Result<Option<SimResult>, StoreError>;

struct Worker {
    control: Arc<Control>,
    thread: JoinHandle<WorkerOutcome>,
}

/// A callback the supervisor invokes after every durable status change
/// (create, start, pause, resume, abort, finish, reap). The service layer
/// hangs live status subscriptions off this hook; it is called *after* the
/// manifest rewrite, so observers never see a status the disk does not.
pub type StatusListener = Arc<dyn Fn(&str, ExperimentStatus) + Send + Sync>;

/// Manages many named durable experiments under one root directory.
///
/// Each started experiment runs on its own thread stepping a
/// [`DurableRun`]; the supervisor can pause, resume, or abort any of them
/// independently while the others keep running. All state transitions are
/// recorded in the crash-safe manifest, and every experiment directory
/// remains independently recoverable.
pub struct ExperimentSupervisor {
    root: PathBuf,
    entries: Vec<ManifestEntry>,
    workers: HashMap<String, Worker>,
    listener: Option<StatusListener>,
    metrics: Option<Arc<crate::StoreMetrics>>,
    pipeline: Option<Arc<crate::CommitPipeline>>,
}

impl std::fmt::Debug for ExperimentSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSupervisor")
            .field("root", &self.root)
            .field("entries", &self.entries)
            .field("active_workers", &self.workers.len())
            .finish()
    }
}

impl ExperimentSupervisor {
    /// Open (creating if needed) a supervisor root. Any experiment the
    /// manifest still marks `running` was interrupted by a crash and is
    /// downgraded to [`ExperimentStatus::Interrupted`].
    pub fn open(root: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(root).map_err(|e| StoreError::io(root, e))?;
        let manifest_path = root.join(MANIFEST_FILE);
        let mut entries = if manifest_path.exists() {
            read_manifest(&manifest_path)?
        } else {
            Vec::new()
        };
        let mut interrupted = false;
        for entry in &mut entries {
            if entry.status == ExperimentStatus::Running {
                entry.status = ExperimentStatus::Interrupted;
                interrupted = true;
            }
        }
        let sup = ExperimentSupervisor {
            root: root.to_owned(),
            entries,
            workers: HashMap::new(),
            listener: None,
            metrics: None,
            pipeline: None,
        };
        if interrupted {
            sup.write_manifest()?;
        }
        Ok(sup)
    }

    /// The supervisor's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Install a [`StatusListener`] notified after every durable status
    /// change. Replaces any previous listener.
    pub fn set_status_listener(&mut self, listener: StatusListener) {
        self.listener = Some(listener);
    }

    /// Attach durability-plane histograms ([`crate::StoreMetrics`]): every
    /// run this supervisor creates or starts records its WAL append/fsync
    /// and snapshot-write latency into the shared cells. Replaces any
    /// previous handle; workers already running keep the one they started
    /// with.
    pub fn set_metrics(&mut self, metrics: Arc<crate::StoreMetrics>) {
        if let Some(pipeline) = &self.pipeline {
            pipeline.set_metrics(Arc::clone(&metrics));
        }
        self.metrics = Some(metrics);
    }

    /// Turn on group commit: every experiment this supervisor creates or
    /// starts from now on routes its WAL fsyncs through one shared
    /// [`crate::CommitPipeline`], so N experiments fsyncing concurrently
    /// cost one fsync per WAL per commit `window` instead of one per
    /// durability point. Experiments already running keep their private
    /// fsync path. Returns the pipeline for callers that want its
    /// counters.
    pub fn enable_group_commit(
        &mut self,
        window: std::time::Duration,
    ) -> Arc<crate::CommitPipeline> {
        let pipeline = Arc::new(crate::CommitPipeline::new(window));
        if let Some(metrics) = &self.metrics {
            pipeline.set_metrics(Arc::clone(metrics));
        }
        self.pipeline = Some(Arc::clone(&pipeline));
        pipeline
    }

    /// Join any worker threads that have finished on their own, recording
    /// their terminal status. Non-blocking: running workers are untouched.
    /// Returns `(name, status)` for each reaped experiment.
    ///
    /// The blocking [`ExperimentSupervisor::join`] needs the caller to know
    /// which experiment to wait on; a daemon serving many clients instead
    /// polls this from a housekeeping loop.
    pub fn reap_finished(&mut self) -> Result<Vec<(String, ExperimentStatus)>, StoreError> {
        let done: Vec<String> = self
            .workers
            .iter()
            .filter(|(_, w)| w.thread.is_finished())
            .map(|(name, _)| name.clone())
            .collect();
        let mut reaped = Vec::with_capacity(done.len());
        for name in done {
            let worker = self.workers.remove(&name).expect("listed above");
            let outcome = worker
                .thread
                .join()
                .map_err(|_| Error::invalid(format!("worker thread for {name:?} panicked")))?;
            let status = match outcome? {
                Some(_) => ExperimentStatus::Finished,
                None => ExperimentStatus::Aborted,
            };
            self.set_status(&name, status)?;
            reaped.push((name, status));
        }
        Ok(reaped)
    }

    /// The directory of the named experiment.
    pub fn experiment_dir(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Current manifest rows.
    pub fn experiments(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Status of one experiment, if it exists.
    pub fn status(&self, name: &str) -> Option<ExperimentStatus> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.status)
    }

    /// Initialize a new experiment directory (meta, WAL, snapshot 0) and
    /// register it in the manifest. Does not start it.
    pub fn create(&mut self, meta: &ExperimentMeta, opts: RunOptions) -> Result<(), StoreError> {
        if self.entries.iter().any(|e| e.name == meta.name) {
            return Err(Error::invalid(format!(
                "experiment {:?} already exists",
                meta.name
            )));
        }
        let dir = self.experiment_dir(&meta.name);
        let bench = meta
            .bench
            .build()
            .map_err(|e| e.context(format!("benchmark for {:?}", meta.name)))?;
        // Creating and immediately dropping the run leaves a fully
        // recoverable directory: meta.json, WAL with the created event, and
        // snapshot 0 of the pristine state.
        let mut run = DurableRun::create(&dir, meta, &bench, opts)?;
        if let Some(m) = &self.metrics {
            run.set_metrics(Arc::clone(m));
        }
        if let Some(pipeline) = &self.pipeline {
            run.attach_commit_pipeline(pipeline)?;
        }
        drop(run);
        self.entries.push(ManifestEntry {
            name: meta.name.clone(),
            status: ExperimentStatus::Created,
        });
        self.write_manifest()?;
        if let Some(listener) = &self.listener {
            listener(&meta.name, ExperimentStatus::Created);
        }
        Ok(())
    }

    /// Start (or restart after a pause/abort/crash) the named experiment on
    /// a worker thread. The thread recovers from the experiment directory,
    /// so this is the same code path for a fresh start and a post-crash
    /// resume.
    pub fn start(&mut self, name: &str, opts: RunOptions) -> Result<(), StoreError> {
        if self.workers.contains_key(name) {
            return Err(Error::invalid(format!(
                "experiment {name:?} is already running"
            )));
        }
        self.set_status(name, ExperimentStatus::Running)?;
        let dir = self.experiment_dir(name);
        let control = Control::new();
        let thread_control = Arc::clone(&control);
        let metrics = self.metrics.clone();
        let pipeline = self.pipeline.clone();
        let thread =
            std::thread::spawn(move || worker_main(dir, opts, thread_control, metrics, pipeline));
        self.workers
            .insert(name.to_owned(), Worker { control, thread });
        Ok(())
    }

    /// Ask the named experiment to pause at its next step boundary. The
    /// worker persists a snapshot and a `paused` WAL marker, then idles.
    pub fn pause(&mut self, name: &str) -> Result<(), StoreError> {
        let worker = self
            .workers
            .get(name)
            .ok_or_else(|| Error::missing(format!("running worker for experiment {name:?}")))?;
        worker.control.set(Command::Pause);
        self.set_status(name, ExperimentStatus::Paused)
    }

    /// Resume a paused experiment in place (the worker thread wakes and
    /// continues; no recovery needed).
    pub fn resume(&mut self, name: &str) -> Result<(), StoreError> {
        let worker = self
            .workers
            .get(name)
            .ok_or_else(|| Error::missing(format!("running worker for experiment {name:?}")))?;
        worker.control.set(Command::Run);
        self.set_status(name, ExperimentStatus::Running)
    }

    /// Abort the named experiment: the worker snapshots and exits at its
    /// next step boundary. The directory remains resumable via
    /// [`ExperimentSupervisor::start`].
    pub fn abort(&mut self, name: &str) -> Result<(), StoreError> {
        let worker = self
            .workers
            .remove(name)
            .ok_or_else(|| Error::missing(format!("running worker for experiment {name:?}")))?;
        worker.control.set(Command::Abort);
        let outcome = worker
            .thread
            .join()
            .map_err(|_| Error::invalid(format!("worker thread for {name:?} panicked")))?;
        outcome?;
        self.set_status(name, ExperimentStatus::Aborted)
    }

    /// Wait for the named experiment's worker to finish and return its
    /// result (`None` if it was aborted before completing).
    pub fn join(&mut self, name: &str) -> Result<Option<SimResult>, StoreError> {
        let worker = self
            .workers
            .remove(name)
            .ok_or_else(|| Error::missing(format!("running worker for experiment {name:?}")))?;
        // Make sure a paused worker can actually finish being joined.
        worker.control.set(Command::Run);
        let outcome = worker
            .thread
            .join()
            .map_err(|_| Error::invalid(format!("worker thread for {name:?} panicked")))?;
        let result = outcome?;
        let status = if result.is_some() {
            ExperimentStatus::Finished
        } else {
            ExperimentStatus::Aborted
        };
        self.set_status(name, status)?;
        Ok(result)
    }

    /// Names of experiments with a live worker thread.
    pub fn active(&self) -> Vec<String> {
        let mut names: Vec<String> = self.workers.keys().cloned().collect();
        names.sort();
        names
    }

    fn set_status(&mut self, name: &str, status: ExperimentStatus) -> Result<(), StoreError> {
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.name == name)
            .ok_or_else(|| Error::missing(format!("experiment {name:?} in the manifest")))?;
        entry.status = status;
        self.write_manifest()?;
        if let Some(listener) = &self.listener {
            listener(name, status);
        }
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), StoreError> {
        let rows: Vec<JsonValue> = self
            .entries
            .iter()
            .map(|e| {
                JsonValue::obj([
                    ("name", JsonValue::Str(e.name.clone())),
                    ("status", JsonValue::Str(e.status.as_str().to_owned())),
                ])
            })
            .collect();
        let doc = JsonValue::obj([
            ("schema", JsonValue::Str(MANIFEST_SCHEMA.to_owned())),
            ("experiments", JsonValue::Arr(rows)),
        ]);
        let path = self.root.join(MANIFEST_FILE);
        let tmp = self.root.join(format!("{MANIFEST_FILE}.tmp"));
        std::fs::write(&tmp, doc.render()).map_err(|e| StoreError::io(&tmp, e))?;
        std::fs::File::open(&tmp)
            .and_then(|f| f.sync_all())
            .map_err(|e| StoreError::io(&tmp, e))?;
        std::fs::rename(&tmp, &path).map_err(|e| StoreError::io(&path, e))?;
        fsync_dir(&self.root)
    }
}

/// Read and decode a manifest file.
pub fn read_manifest(path: &Path) -> Result<Vec<ManifestEntry>, StoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::io(path, e))?;
    let parse = || -> Result<Vec<ManifestEntry>, Error> {
        let v = JsonValue::parse(&text).map_err(|e| e.to_string())?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("manifest missing schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(Error::codec(format!(
                "unsupported manifest schema {schema:?} (expected {MANIFEST_SCHEMA:?})"
            )));
        }
        let rows = v
            .get("experiments")
            .and_then(|e| e.as_array())
            .ok_or("manifest missing experiments array")?;
        rows.iter()
            .map(|row| {
                Ok(ManifestEntry {
                    name: row
                        .get("name")
                        .and_then(|n| n.as_str())
                        .ok_or("manifest row missing name")?
                        .to_owned(),
                    status: ExperimentStatus::parse(
                        row.get("status")
                            .and_then(|s| s.as_str())
                            .ok_or("manifest row missing status")?,
                    )?,
                })
            })
            .collect()
    };
    parse().map_err(|e| e.corrupt_at(path))
}

/// The body of one experiment's worker thread: recover the run from its
/// directory and step it until it finishes, obeying pause/abort commands at
/// step boundaries.
fn worker_main(
    dir: PathBuf,
    opts: RunOptions,
    control: Arc<Control>,
    metrics: Option<Arc<crate::StoreMetrics>>,
    pipeline: Option<Arc<crate::CommitPipeline>>,
) -> WorkerOutcome {
    let meta = read_meta(&dir)?;
    let bench = meta
        .bench
        .build()
        .map_err(|e| e.context(format!("benchmark for {:?}", meta.name)))?;
    let mut run = DurableRun::resume(&dir, &meta, &bench, opts)?;
    if let Some(m) = metrics {
        run.set_metrics(m);
    }
    if let Some(pipeline) = pipeline {
        run.attach_commit_pipeline(&pipeline)?;
    }
    loop {
        match control.current() {
            Command::Abort => {
                run.write_snapshot()?;
                return Ok(None);
            }
            Command::Pause => {
                run.mark_paused()?;
                if control.wait_while_paused() == Command::Abort {
                    run.write_snapshot()?;
                    return Ok(None);
                }
                run.mark_resumed()?;
            }
            Command::Run => {
                if !run.step()? {
                    return Ok(Some(run.into_result()));
                }
            }
        }
    }
}
